//! Executed data-parallel training with a ZeRO-1 sharded optimizer.
//!
//! Where [`crate::pretrain::Trainer`] advances one replica,
//! [`DataParallel`] runs **N worker replicas on OS threads**, each
//! holding a full [`ParamStore`] copy and computing gradients on a
//! disjoint micro-batch of the coordinator-sampled global batch. The
//! replicas synchronize with a hand-rolled **ring allreduce** over
//! in-process channels — chunked reduce-scatter followed by allgather,
//! exactly the schedule RCCL rings execute on Frontier, so the measured
//! per-worker traffic lands on the paper's `2(N−1)/N · M` closed form
//! ([`matgpt_frontier_sim::collectives::wire_bytes`]).
//!
//! Two synchronization modes:
//!
//! * **Replicated** ([`ParallelConfig::replicated`]) — classic DP:
//!   reduce-scatter the gradients, average, allgather them back, every
//!   worker applies the identical full optimizer step.
//! * **ZeRO-1** ([`ParallelConfig::zero1`]) — each worker owns a
//!   contiguous, tensor-aligned ~1/N shard of the flattened parameter
//!   space, keeps Adam/LAMB moments **only for its shard**
//!   ([`matgpt_optim::Optimizer::step_masked`]), and publishes updated parameters with
//!   an allgather. Optimizer-state memory per worker drops ~N×, at the
//!   same wire volume (reduce-scatter + allgather ≙ allreduce).
//!
//! # Determinism and equivalence
//!
//! f32 addition is not associative, so "DP equals single-worker
//! training on the concatenated batch" is only meaningful under a fixed
//! reduction order. The ring fixes one: chunk `c` accumulates
//! contributions in ring order starting from rank `c+1` (the rank that
//! injects chunk `c` first). [`ring_fold`] is that order as a pure
//! sequential function; [`DataParallel::train_reference`] is a
//! single-replica executor that uses it, and defines the equivalence
//! target. The guarantees, proven by `tests/parallelism.rs`:
//!
//! * threaded DP×N (replicated **and** ZeRO-1) is **bit-identical** to
//!   the sequential reference at the same N — thread scheduling never
//!   leaks into the numerics;
//! * DP×1 is **bit-identical** to [`crate::pretrain::Trainer`];
//! * replicated and ZeRO-1 are **bit-identical to each other** at any N
//!   (shard-aligned reduction buckets, whole-tensor LAMB trust ratios,
//!   and a tensor-order global-norm fold make the masked update exact);
//! * checkpoints are ordinary v2 MGPT images (ZeRO-1 shards are merged
//!   back with [`OptimizerState::merge_shards`]), so
//!   [`crate::pretrain::pretrain_resume`] composes with DP runs.
//!
//! # Fault tolerance
//!
//! The [`resilience`] submodule executes training under injected worker
//! failures: a seeded [`resilience::FaultPlan`] kills or stalls ranks at
//! specific steps, the ring detects the loss through bounded-timeout
//! collectives ([`CollectiveError`]) plus per-rank heartbeats, and
//! [`DataParallel::train_resilient`] recovers by rolling back to an
//! in-memory v2 snapshot — optionally **elastically re-sharding** from N
//! to N−1 survivors. See `PARALLELISM.md` for the state machine and the
//! determinism contract.

pub mod collective;
pub mod resilience;
pub mod topology;

use crate::pretrain::{
    build_model, build_optimizer, train_tokenizer, validation_loss_on, LossCurves, Pretrained,
    ResumeError, SEC_CURSOR, SEC_CURVES, SEC_LABEL, SEC_OPT, SEC_STEP,
};
use crate::recipes::PretrainConfig;
use crossbeam::channel::{unbounded, Receiver, Sender};
use matgpt_corpus::{Batch, TokenDataset};
use matgpt_frontier_sim::collectives::{wire_bytes, Collective as CollKind};
use matgpt_model::GptModel;
use matgpt_obs::{flight, pids, Histogram, Registry, Span};
use matgpt_optim::{CosineSchedule, LrSchedule, OptimizerState};
use matgpt_tensor::{checkpoint, ParamStore, Tape};
use resilience::{FaultKind, FaultPlan, Heartbeats};
use std::ops::Range;
use std::sync::Arc;
use std::time::{Duration, Instant};

pub use collective::{
    ring_allgather_rank_bytes, ring_allreduce_rank_bytes, ring_allreduce_sum,
    ring_reduce_scatter_rank_bytes, Collective, CollectiveError, PipeDir, PipeLink, RingComm,
};
pub(crate) use collective::{Ring, DEFAULT_RING_TIMEOUT};
/// Re-exported from `matgpt_tensor`, where the fold order now lives so
/// the tape's sequential-reference TP ops share it.
pub use matgpt_tensor::ring_fold;
pub use topology::{
    reference_topology, train_topology, MsgBin, Topology, TopologyError, TopologyOutcome,
    TopologyReport, WireAudit,
};

/// How many workers, and how they keep optimizer state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Worker replica count N (≥ 1). The global batch must divide by it.
    pub workers: usize,
    /// ZeRO-1: shard optimizer state across workers instead of
    /// replicating it.
    pub zero1: bool,
}

impl ParallelConfig {
    /// Classic replicated data parallelism over `workers` replicas.
    pub fn replicated(workers: usize) -> Self {
        Self {
            workers,
            zero1: false,
        }
    }

    /// Data parallelism with a ZeRO-1 sharded optimizer.
    pub fn zero1(workers: usize) -> Self {
        Self {
            workers,
            zero1: true,
        }
    }
}

/// Per-run accounting the executor reports next to the trained model.
#[derive(Clone, Debug)]
pub struct ParallelReport {
    /// Worker count the run used.
    pub workers: usize,
    /// Whether optimizer state was ZeRO-1 sharded.
    pub zero1: bool,
    /// Optimizer steps executed by this run.
    pub steps_run: usize,
    /// Flattened parameter count M (scalars).
    pub param_scalars: usize,
    /// Owned scalars per worker (the ZeRO-1 shard sizes; sums to
    /// `param_scalars`).
    pub shard_scalars: Vec<usize>,
    /// Measured gradient-sync traffic: mean bytes sent per worker per
    /// step (reduce-scatter + allgather, counted on the channels).
    pub measured_allreduce_bytes_per_step: f64,
    /// The analytic `2(N−1)/N · 4M` per-rank allreduce volume the paper
    /// profiles — the mean measured traffic must land on it exactly.
    pub formula_allreduce_bytes_per_step: f64,
    /// Σ over steps of the slowest worker's gradient-compute time — the
    /// bulk-synchronous critical path's compute term.
    pub critical_compute_ms: f64,
    /// Total gradient-compute time per worker.
    pub total_compute_ms: Vec<f64>,
    /// Synchronization cost: reduction/fold time (reference executor)
    /// or time blocked on ring channels (threaded workers), per worker.
    pub comm_ms: Vec<f64>,
    /// Per-step serial remainder (grad load, clip, optimizer update) on
    /// the critical path, summed over steps.
    pub post_ms: f64,
    /// Optimizer-state bytes held by each worker after training
    /// ([`matgpt_optim::Optimizer::state_bytes`] accounting).
    pub opt_state_bytes: Vec<usize>,
}

impl ParallelReport {
    /// The bulk-synchronous critical path: slowest-worker compute plus
    /// synchronization plus the serial per-step remainder. On a machine
    /// with ≥ N cores this is the step wall-clock; measuring the terms
    /// contention-free keeps the ratio portable to single-core CI.
    pub fn critical_path_ms(&self) -> f64 {
        let comm = self.comm_ms.iter().cloned().fold(0.0, f64::max);
        self.critical_compute_ms + comm + self.post_ms
    }

    /// Largest per-worker optimizer-state footprint in bytes.
    pub fn max_opt_state_bytes(&self) -> usize {
        self.opt_state_bytes.iter().copied().max().unwrap_or(0)
    }
}

/// What a data-parallel run returns.
pub struct ParallelOutcome {
    /// The trained bundle, identical in shape to [`fn@crate::pretrain::pretrain`]'s.
    pub pretrained: Pretrained,
    /// Executor accounting (traffic, timings, memory).
    pub report: ParallelReport,
    /// `(steps_completed, bytes)` checkpoints when periodic
    /// checkpointing was requested; empty otherwise.
    pub checkpoints: Vec<(usize, Vec<u8>)>,
}

// ---------------------------------------------------------------------------
// Shard plan: tensor-aligned contiguous partition of the flat space.
// ---------------------------------------------------------------------------

/// The partition both ring collectives and ZeRO-1 ownership use: rank
/// `r` owns a contiguous run of whole tensors, balanced by scalar
/// count. Using the same bounds for reduction chunks and optimizer
/// shards is what makes ZeRO-1 bit-identical to replicated DP.
#[derive(Clone, Debug)]
pub struct ShardPlan {
    /// Per-rank scalar ranges in the flat layout.
    pub flat: Vec<Range<usize>>,
    /// Per-rank tensor-index ranges.
    pub tensors: Vec<Range<usize>>,
    /// Flat offset of each tensor (prefix sums of the sizes).
    pub offsets: Vec<usize>,
    /// Total scalar count M.
    pub total: usize,
}

/// Typed failure for [`ShardPlan::try_new`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardPlanError {
    /// Zero ranks cannot partition anything.
    NoRanks,
}

impl std::fmt::Display for ShardPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardPlanError::NoRanks => write!(f, "shard plan needs at least one rank"),
        }
    }
}

impl std::error::Error for ShardPlanError {}

impl ShardPlan {
    /// Partition tensors of the given sizes across `n` ranks.
    ///
    /// Panics when `n == 0` ([`ShardPlan::try_new`] is the
    /// non-panicking form). Degenerate inputs are clamped, never
    /// implicit:
    /// * **more ranks than tensors** (or than scalars) leaves the
    ///   surplus ranks with empty shards — they own nothing and move
    ///   zero-length ring chunks;
    /// * **zero-length tensors** are owned by the rank whose tensor
    ///   range contains them (trailing ones by the last rank), so
    ///   [`ShardPlan::owners`] covers every tensor;
    /// * **`n == 1`** degenerates to one rank owning the whole flat
    ///   space.
    pub fn new(sizes: &[usize], n: usize) -> Self {
        Self::try_new(sizes, n).expect("need at least one rank")
    }

    /// As [`ShardPlan::new`], returning a typed error instead of
    /// panicking on a zero-rank request.
    pub fn try_new(sizes: &[usize], n: usize) -> Result<Self, ShardPlanError> {
        if n == 0 {
            return Err(ShardPlanError::NoRanks);
        }
        let mut offsets = Vec::with_capacity(sizes.len() + 1);
        let mut acc = 0usize;
        for &s in sizes {
            offsets.push(acc);
            acc += s;
        }
        let total = acc;
        // Snap the ideal equal cuts to tensor boundaries: shard r covers
        // tensors [b_r, b_{r+1}) where b_r is the boundary nearest to
        // r·M/n (rounding to the nearest boundary rather than always up
        // halves the worst-case skew a large tensor can induce). The
        // outer cuts are pinned so the partition always covers all
        // tensors, including zero-length ones at offset 0 or M.
        let cut = |i: usize| -> usize {
            if i == 0 {
                return 0;
            }
            if i >= n {
                return sizes.len();
            }
            let ideal = i * total / n;
            let hi = offsets.partition_point(|&off| off < ideal);
            if hi == 0 {
                return 0;
            }
            let hi_off = offsets.get(hi).copied().unwrap_or(total);
            let lo_off = offsets[hi - 1];
            if ideal - lo_off < hi_off - ideal {
                hi - 1
            } else {
                hi
            }
        };
        let mut tensors = Vec::with_capacity(n);
        let mut flat = Vec::with_capacity(n);
        let mut prev = 0usize;
        for r in 0..n {
            // clamp keeps the boundaries monotone when duplicate offsets
            // (zero-length tensors) make nearest-rounding ambiguous
            let a = prev;
            let b = cut(r + 1).clamp(a, sizes.len());
            prev = b;
            tensors.push(a..b);
            let start = offsets.get(a).copied().unwrap_or(total);
            let end = offsets.get(b).copied().unwrap_or(total);
            flat.push(start..end);
        }
        offsets.push(total);
        Ok(Self {
            flat,
            tensors,
            offsets,
            total,
        })
    }

    /// Ownership mask over tensors for `rank` (the
    /// [`matgpt_optim::Optimizer::step_masked`] argument).
    pub fn owned_mask(&self, rank: usize) -> Vec<bool> {
        let n_tensors = self.offsets.len() - 1;
        (0..n_tensors)
            .map(|t| self.tensors[rank].contains(&t))
            .collect()
    }

    /// For every tensor, the rank that owns it (the
    /// [`OptimizerState::merge_shards`] argument).
    pub fn owners(&self) -> Vec<usize> {
        let n_tensors = self.offsets.len() - 1;
        (0..n_tensors)
            .map(|t| {
                self.tensors
                    .iter()
                    .position(|r| r.contains(&t))
                    .expect("every tensor has an owner")
            })
            .collect()
    }

    /// Scalar count owned by each rank.
    pub fn shard_scalars(&self) -> Vec<usize> {
        self.flat.iter().map(|r| r.len()).collect()
    }
}

// ---------------------------------------------------------------------------
// Shared numerics (coordinator, workers and reference must agree bitwise).
// ---------------------------------------------------------------------------

/// Rank-order left-fold mean — the one loss-averaging order every
/// executor uses so recorded curves agree bitwise.
fn fold_mean(losses: &[f32]) -> f32 {
    losses.iter().copied().fold(0.0f32, |a, b| a + b) / losses.len() as f32
}

/// Split the coordinator's global batch into per-rank micro-batches of
/// `rows` rows each (contiguous row blocks, rank order).
fn split_batch(batch: &Batch, n: usize) -> Vec<Batch> {
    assert!(batch.batch.is_multiple_of(n), "batch divides over workers");
    let rows = batch.batch / n;
    let stride = rows * batch.seq;
    (0..n)
        .map(|r| Batch {
            inputs: batch.inputs[r * stride..(r + 1) * stride].to_vec(),
            targets: batch.targets[r * stride..(r + 1) * stride].to_vec(),
            batch: rows,
            seq: batch.seq,
        })
        .collect()
}

/// One replica's gradient computation for one micro-batch: zero grads,
/// (optionally) round weights to the mixed-precision grid, forward,
/// backward, restore masters. Returns the micro loss. Identical between
/// threaded workers and the sequential reference.
fn micro_grads(
    cfg: &PretrainConfig,
    model: &GptModel,
    store: &mut ParamStore,
    micro: &Batch,
) -> f32 {
    store.zero_grads();
    let masters = if cfg.precision != matgpt_tensor::Precision::F32 {
        let snap = matgpt_tensor::precision::snapshot_values(store);
        matgpt_tensor::precision::round_store(store, cfg.precision);
        Some(snap)
    } else {
        None
    };
    let mut tape = Tape::new();
    let loss = {
        let _s = Span::enter(pids::PARALLEL, "dp", "forward");
        model.loss(
            &mut tape,
            store,
            &micro.inputs,
            &micro.targets,
            micro.batch,
            micro.seq,
        )
    };
    let micro_loss = tape.value(loss).item();
    {
        let _s = Span::enter(pids::PARALLEL, "dp", "backward");
        tape.backward(loss);
        tape.accumulate_param_grads(store);
    }
    if let Some(snap) = masters {
        matgpt_tensor::precision::restore_values(store, &snap);
    }
    micro_loss
}

/// Scale `buf[own]` by 1/n — the gradient-averaging step, applied by
/// each chunk's owner right after the reduce-scatter so every element
/// is scaled exactly once. Skipped at n = 1 to keep DP×1 bit-identical
/// to the plain [`crate::pretrain::Trainer`] (which never averages).
fn scale_owned(buf: &mut [f32], own: &Range<usize>, n: usize) {
    if n > 1 {
        let inv = 1.0f32 / n as f32;
        for x in &mut buf[own.clone()] {
            *x *= inv;
        }
    }
}

/// Per-tensor squared gradient norms for the tensors in `tensors`,
/// read from the flat gradient buffer. Uses the same per-element
/// multiply-and-left-fold as [`matgpt_tensor::Tensor::sq_norm`], so the
/// ZeRO-1 global-norm clip matches `ParamStore::clip_grad_norm` bitwise.
fn owned_sq_norms(flat: &[f32], plan: &ShardPlan, tensors: &Range<usize>, out: &mut [f32]) {
    for t in tensors.clone() {
        let range = plan.offsets[t]..plan.offsets[t + 1];
        out[t] = flat[range].iter().map(|v| v * v).sum::<f32>();
    }
}

// ---------------------------------------------------------------------------
// Worker protocol.
// ---------------------------------------------------------------------------

#[derive(Debug)]
enum ToWorker {
    Step {
        step: usize,
        micro: Batch,
        lr: f32,
        eval: bool,
    },
    /// Export optimizer state (a shard under ZeRO-1) for consolidation.
    ExportOpt,
    /// Rank 0 only: wrap its weights and the prepared sections into a
    /// v2 checkpoint image.
    Assemble(Vec<(String, Vec<u8>)>),
    Finish,
}

#[derive(Debug)]
enum FromWorker {
    StepDone {
        rank: usize,
        micro_loss: f32,
        val_loss: Option<f32>,
        compute_ms: f64,
        comm_ms: f64,
        sent_bytes: u64,
        opt_bytes: usize,
    },
    /// A collective failed under this rank: it reports the typed error
    /// and exits — the coordinator decides who actually died.
    StepFailed {
        rank: usize,
        err: CollectiveError,
    },
    Opt(usize, OptimizerState),
    Image(Vec<u8>),
}

struct WorkerSeat {
    rank: usize,
    ring: Ring,
    rx: Receiver<ToWorker>,
    tx: Sender<FromWorker>,
    /// Injected faults this worker consults at each step.
    faults: Arc<FaultPlan>,
    /// Liveness board the coordinator reads for failure detection.
    beats: Arc<Heartbeats>,
}

#[allow(clippy::too_many_arguments)]
fn worker_main(
    seat: WorkerSeat,
    cfg: &PretrainConfig,
    zero1: bool,
    vocab: usize,
    plan: &ShardPlan,
    val_batches: &[Batch],
    opt_restore: Option<&OptimizerState>,
    weight_restore: Option<&ParamStore>,
) -> Option<(GptModel, ParamStore)> {
    let WorkerSeat {
        rank,
        mut ring,
        rx,
        tx,
        faults,
        beats,
    } = seat;
    let n = ring.n;
    let (model, mut store) = build_model(cfg, vocab);
    if let Some(weights) = weight_restore {
        let restored = checkpoint::restore_into(&mut store, weights);
        assert_eq!(restored, store.len(), "resume weights cover the model");
    }
    let mut opt = build_optimizer(cfg);
    let mask = plan.owned_mask(rank);
    if let Some(full) = opt_restore {
        opt.import_state(if zero1 {
            full.shard(&mask)
        } else {
            full.clone()
        });
    }

    // Identify this thread everywhere observability looks: the flight
    // ring (postmortems flag the victim by rank), and the global
    // recorder's track names (critical-path attribution parses them).
    flight::label_thread(format!("rank {rank}"), Some(rank as u64));
    matgpt_obs::Recorder::global().set_track_name(
        pids::PARALLEL,
        matgpt_obs::thread_tid(),
        format!("rank {rank}"),
    );

    let rank_label = rank.to_string();
    let reg = Registry::global();
    let labels = [("worker", rank_label.as_str())];
    let bytes_total = reg.counter_with(
        "parallel_allreduce_bytes_total",
        &labels,
        "gradient-sync bytes this worker sent on the ring",
    );
    let sync_wait = reg.histogram_with(
        "parallel_step_sync_wait_ms",
        &labels,
        "per-step time blocked on ring receives",
        &Histogram::LATENCY_MS_BOUNDS,
    );
    let steps_total = reg.counter_with(
        "parallel_steps_total",
        &labels,
        "data-parallel steps this worker executed",
    );

    let n_tensors = plan.offsets.len() - 1;
    // A vanished coordinator (failure teardown) ends the worker
    // gracefully instead of poisoning the thread scope.
    while let Ok(cmd) = rx.recv() {
        match cmd {
            ToWorker::Step {
                step,
                micro,
                lr,
                eval,
            } => {
                beats.beat(rank);
                ring.step = step as u64;
                let _step_span = Span::enter(pids::PARALLEL, "dp", "worker-step");
                match faults.take(rank, step) {
                    Some(FaultKind::Kill) => {
                        // Die mid-step: the gradients are computed but
                        // this rank's ring endpoints drop before its
                        // first send — peers observe exactly what a
                        // vanished node looks like.
                        let _ = micro_grads(cfg, &model, &mut store, &micro);
                        return None;
                    }
                    Some(FaultKind::Stall { ms }) => std::thread::sleep(Duration::from_millis(ms)),
                    None => {}
                }
                let bytes_before = ring.sent_bytes;
                let wait_before = ring.wait_ms;
                let t0 = Instant::now();
                let micro_loss = micro_grads(cfg, &model, &mut store, &micro);
                beats.beat(rank);
                let mut flat = store.flat_grads();

                let synced = (|| -> Result<(), CollectiveError> {
                    {
                        let _s = Span::enter(pids::PARALLEL, "dp", "reduce-scatter");
                        ring.reduce_scatter(&mut flat, &plan.flat)?;
                    }
                    beats.beat(rank);
                    scale_owned(&mut flat, &plan.flat[rank], n);

                    if zero1 {
                        // Global-norm clip from allgathered per-tensor norms,
                        // folded in tensor order like `ParamStore::grad_norm`.
                        let mut norms = vec![0.0f32; n_tensors];
                        owned_sq_norms(&flat, plan, &plan.tensors[rank], &mut norms);
                        {
                            let _s = Span::enter(pids::PARALLEL, "dp", "allgather-norms");
                            ring.allgather(&mut norms, &plan.tensors)?;
                        }
                        let norm = norms.iter().sum::<f32>().sqrt();
                        if norm > 1.0 {
                            let s = 1.0 / norm;
                            for x in &mut flat[plan.flat[rank].clone()] {
                                *x *= s;
                            }
                        }
                        store.load_flat_grads(&flat);
                        {
                            let _s = Span::enter(pids::PARALLEL, "dp", "optimizer");
                            opt.step_masked(&mut store, lr, &mask);
                        }
                        beats.beat(rank);
                        let mut vals = store.flat_values();
                        {
                            let _s = Span::enter(pids::PARALLEL, "dp", "allgather-params");
                            ring.allgather(&mut vals, &plan.flat)?;
                        }
                        store.load_flat_values(&vals);
                    } else {
                        {
                            let _s = Span::enter(pids::PARALLEL, "dp", "allgather-grads");
                            ring.allgather(&mut flat, &plan.flat)?;
                        }
                        store.load_flat_grads(&flat);
                        let _s = Span::enter(pids::PARALLEL, "dp", "optimizer");
                        store.clip_grad_norm(1.0);
                        opt.step(&mut store, lr);
                    }
                    Ok(())
                })();
                if let Err(err) = synced {
                    // Report the typed failure (best-effort: the
                    // coordinator may already be tearing down) and exit;
                    // dropping the ring wakes any peer still blocked.
                    let _ = tx.send(FromWorker::StepFailed { rank, err });
                    return None;
                }
                // Compute = wall time not blocked on ring receives.
                let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
                beats.beat(rank);

                // The training step proper ends here. Validation is
                // rank-0 bookkeeping no peer waits on within this step,
                // so it gets its own slice instead of padding the
                // step's critical path.
                drop(_step_span);
                let val_loss = (eval && rank == 0).then(|| {
                    let _s = Span::enter(pids::PARALLEL, "dp", "validation");
                    validation_loss_on(&model, &store, val_batches)
                });

                let sent = ring.sent_bytes - bytes_before;
                let waited = ring.wait_ms - wait_before;
                bytes_total.add(sent);
                sync_wait.observe(waited);
                steps_total.inc();
                let done = FromWorker::StepDone {
                    rank,
                    micro_loss,
                    val_loss,
                    compute_ms: (wall_ms - waited).max(0.0),
                    comm_ms: waited,
                    sent_bytes: sent,
                    opt_bytes: opt.state_bytes(),
                };
                if tx.send(done).is_err() {
                    break;
                }
            }
            ToWorker::ExportOpt => {
                if tx.send(FromWorker::Opt(rank, opt.export_state())).is_err() {
                    break;
                }
            }
            ToWorker::Assemble(sections) => {
                let _s = Span::enter(pids::PARALLEL, "dp", "checkpoint");
                let image = checkpoint::save_with_sections(&store, &sections).to_vec();
                if tx.send(FromWorker::Image(image)).is_err() {
                    break;
                }
            }
            ToWorker::Finish => break,
        }
    }
    (rank == 0).then_some((model, store))
}

// ---------------------------------------------------------------------------
// Coordinator.
// ---------------------------------------------------------------------------

/// The data-parallel training executor. See the module docs for the
/// synchronization modes and equivalence guarantees.
///
/// # Examples
///
/// ```
/// use matgpt_core::parallel::{DataParallel, ParallelConfig};
/// use matgpt_core::{OptChoice, PretrainConfig, SizeRole};
/// use matgpt_corpus::{build_corpus, CorpusConfig};
/// use matgpt_model::ArchKind;
/// use matgpt_tokenizer::TokenizerKind;
///
/// let documents = build_corpus(&CorpusConfig {
///     n_materials: 8,
///     total_docs: 24,
///     offtopic_fraction: 0.2,
///     seed: 5,
/// })
/// .documents;
/// let cfg = PretrainConfig {
///     steps: 2,
///     batch_seqs: 4,
///     seq: 16,
///     ..PretrainConfig::scaled(
///         ArchKind::Llama,
///         TokenizerKind::Hf,
///         300,
///         OptChoice::Adam,
///         SizeRole::Base,
///     )
/// };
///
/// // Two replicas with a ZeRO-1 sharded optimizer.
/// let outcome = DataParallel::new(ParallelConfig::zero1(2)).train(&documents, &cfg);
/// assert_eq!(outcome.report.workers, 2);
/// assert!(outcome.pretrained.curves.final_train().is_finite());
/// // Each worker held roughly half the optimizer state.
/// let max_shard = outcome.report.max_opt_state_bytes();
/// let replicated: usize = 8 + 2 * 4 * outcome.report.param_scalars;
/// assert!(max_shard < replicated);
/// ```
pub struct DataParallel {
    cfg: ParallelConfig,
}

impl DataParallel {
    /// An executor for the given worker/sharding configuration.
    pub fn new(cfg: ParallelConfig) -> Self {
        assert!(cfg.workers >= 1, "need at least one worker");
        Self { cfg }
    }

    /// Train `cfg` on `documents` across the configured workers.
    pub fn train(&self, documents: &[String], cfg: &PretrainConfig) -> ParallelOutcome {
        self.run(documents, cfg, None, None)
            .expect("fresh runs cannot fail to resume")
    }

    /// As [`DataParallel::train`], checkpointing every `every` steps
    /// (and at the final step). The images are ordinary v2 MGPT
    /// checkpoints: [`crate::pretrain::pretrain_resume`] accepts them.
    pub fn train_with_checkpoints(
        &self,
        documents: &[String],
        cfg: &PretrainConfig,
        every: usize,
    ) -> ParallelOutcome {
        self.run(documents, cfg, Some(every.max(1)), None)
            .expect("fresh runs cannot fail to resume")
    }

    /// Resume a checkpointed run (from [`DataParallel`] or a
    /// single-worker [`crate::pretrain::Trainer`]) and finish it under
    /// data parallelism.
    pub fn resume(
        &self,
        documents: &[String],
        cfg: &PretrainConfig,
        bytes: &[u8],
    ) -> Result<ParallelOutcome, ResumeError> {
        self.run(documents, cfg, None, Some(bytes))
    }

    /// The sequential reference executor: one replica, one thread,
    /// micro-batch gradients combined with [`ring_fold`] — the
    /// deterministic-reduction definition of "single-worker training on
    /// the concatenated batch" that the threaded executor must (and
    /// does) match bit-for-bit. Also the contention-free way to measure
    /// per-worker compute on machines with fewer cores than workers.
    pub fn train_reference(
        documents: &[String],
        cfg: &PretrainConfig,
        workers: usize,
    ) -> ParallelOutcome {
        assert!(workers >= 1, "need at least one worker");
        assert!(
            cfg.batch_seqs.is_multiple_of(workers),
            "global batch {} must divide across {workers} workers",
            cfg.batch_seqs
        );
        let tokenizer = train_tokenizer(cfg.tokenizer, cfg.vocab, documents);
        let vocab = tokenizer.vocab_size();
        let (model, mut store) = build_model(cfg, vocab);
        let mut dataset = TokenDataset::new(documents, tokenizer.as_ref(), 0.08, cfg.seed ^ 0xda7a);
        let val_batches = dataset.val_batches(2, cfg.seq);
        let mut opt = build_optimizer(cfg);
        let schedule = CosineSchedule::paper(cfg.lr, cfg.steps);
        let plan = ShardPlan::new(&store.tensor_sizes(), workers);
        let eval_every = (cfg.steps / 10).max(1);

        let mut train_curve = Vec::new();
        let mut val_curve = Vec::new();
        let mut critical_ms = 0.0f64;
        let mut total_compute = vec![0.0f64; workers];
        let mut fold_ms = 0.0f64;
        let mut post_ms = 0.0f64;

        for step in 0..cfg.steps {
            let batch = dataset.sample_batch(cfg.batch_seqs, cfg.seq);
            let micros = split_batch(&batch, workers);
            let mut losses = Vec::with_capacity(workers);
            let mut parts = Vec::with_capacity(workers);
            let mut slowest = 0.0f64;
            for (r, micro) in micros.iter().enumerate() {
                let t0 = Instant::now();
                losses.push(micro_grads(cfg, &model, &mut store, micro));
                parts.push(store.flat_grads());
                let ms = t0.elapsed().as_secs_f64() * 1e3;
                total_compute[r] += ms;
                slowest = slowest.max(ms);
            }
            critical_ms += slowest;

            let t1 = Instant::now();
            let mut reduced = if workers == 1 {
                parts.pop().expect("one part")
            } else {
                ring_fold(&parts, &plan.flat)
            };
            for r in 0..workers {
                scale_owned(&mut reduced, &plan.flat[r], workers);
            }
            fold_ms += t1.elapsed().as_secs_f64() * 1e3;

            let t2 = Instant::now();
            store.load_flat_grads(&reduced);
            let lr = schedule.lr(step);
            store.clip_grad_norm(1.0);
            opt.step(&mut store, lr);
            post_ms += t2.elapsed().as_secs_f64() * 1e3;

            if step.is_multiple_of(eval_every) || step + 1 == cfg.steps {
                train_curve.push((step, fold_mean(&losses)));
                val_curve.push((step, validation_loss_on(&model, &store, &val_batches)));
            }
        }

        let formula = wire_bytes(CollKind::AllReduce, (plan.total * 4) as f64, workers);
        let report = ParallelReport {
            workers,
            zero1: false,
            steps_run: cfg.steps,
            param_scalars: plan.total,
            shard_scalars: plan.shard_scalars(),
            measured_allreduce_bytes_per_step: formula,
            formula_allreduce_bytes_per_step: formula,
            critical_compute_ms: critical_ms,
            total_compute_ms: total_compute,
            comm_ms: vec![fold_ms],
            post_ms,
            opt_state_bytes: vec![opt.state_bytes()],
        };
        ParallelOutcome {
            pretrained: Pretrained {
                model,
                store,
                tokenizer,
                curves: LossCurves {
                    label: cfg.label(),
                    train: train_curve,
                    val: val_curve,
                },
                config: cfg.clone(),
            },
            report,
            checkpoints: Vec::new(),
        }
    }

    fn run(
        &self,
        documents: &[String],
        cfg: &PretrainConfig,
        checkpoint_every: Option<usize>,
        resume_from: Option<&[u8]>,
    ) -> Result<ParallelOutcome, ResumeError> {
        let n = self.cfg.workers;
        let zero1 = self.cfg.zero1;
        assert!(
            cfg.batch_seqs.is_multiple_of(n),
            "global batch {} must divide across {n} workers",
            cfg.batch_seqs
        );
        let tokenizer = train_tokenizer(cfg.tokenizer, cfg.vocab, documents);
        let vocab = tokenizer.vocab_size();
        let mut dataset = TokenDataset::new(documents, tokenizer.as_ref(), 0.08, cfg.seed ^ 0xda7a);

        // Decode and validate a resume image coordinator-side (same
        // checks as `Trainer::resume_with_tokenizer`).
        let restore = match resume_from {
            None => None,
            Some(bytes) => Some(decode_resume(cfg, bytes)?),
        };
        let (start_step, mut train_curve, mut val_curve) = match &restore {
            Some(r) => {
                dataset.seek(r.cursor);
                (r.step, r.train_curve.clone(), r.val_curve.clone())
            }
            None => (0, Vec::new(), Vec::new()),
        };

        // Probe replica: the tensor layout every worker will build.
        let sizes = {
            let (_, probe) = build_model(cfg, vocab);
            probe.tensor_sizes()
        };
        let plan = Arc::new(ShardPlan::new(&sizes, n));
        let val_batches = Arc::new(dataset.val_batches(2, cfg.seq));
        let schedule = CosineSchedule::paper(cfg.lr, cfg.steps);
        let eval_every = (cfg.steps / 10).max(1);

        let rings = Ring::build(n, DEFAULT_RING_TIMEOUT);
        let faults = Arc::new(FaultPlan::none());
        let beats = Arc::new(Heartbeats::new(n));
        let (tx_out, rx_out) = unbounded::<FromWorker>();
        let mut cmd_txs: Vec<Sender<ToWorker>> = Vec::with_capacity(n);
        let mut seats: Vec<WorkerSeat> = Vec::with_capacity(n);
        for (rank, ring) in rings.into_iter().enumerate() {
            let (tx_cmd, rx_cmd) = unbounded::<ToWorker>();
            cmd_txs.push(tx_cmd);
            seats.push(WorkerSeat {
                rank,
                ring,
                rx: rx_cmd,
                tx: tx_out.clone(),
                faults: Arc::clone(&faults),
                beats: Arc::clone(&beats),
            });
        }
        drop(tx_out);

        std::thread::scope(|scope| {
            let handles: Vec<_> = seats
                .into_iter()
                .map(|seat| {
                    let plan = Arc::clone(&plan);
                    let val_batches = Arc::clone(&val_batches);
                    let restore = restore.as_ref();
                    scope.spawn(move || {
                        worker_main(
                            seat,
                            cfg,
                            zero1,
                            vocab,
                            &plan,
                            &val_batches,
                            restore.map(|r| &r.opt_state),
                            restore.map(|r| &r.weights),
                        )
                    })
                })
                .collect();

            let mut critical_ms = 0.0f64;
            let mut total_compute = vec![0.0f64; n];
            let mut comm = vec![0.0f64; n];
            let mut opt_bytes = vec![0usize; n];
            let mut bytes_accum = 0u64;
            let mut checkpoints = Vec::new();
            let mut steps_run = 0usize;

            for step in start_step..cfg.steps {
                let lr = schedule.lr(step);
                let eval = step.is_multiple_of(eval_every) || step + 1 == cfg.steps;
                let batch = dataset.sample_batch(cfg.batch_seqs, cfg.seq);
                for (rank, micro) in split_batch(&batch, n).into_iter().enumerate() {
                    cmd_txs[rank]
                        .send(ToWorker::Step {
                            step,
                            micro,
                            lr,
                            eval,
                        })
                        .expect("worker alive");
                }
                let mut losses = vec![0.0f32; n];
                let mut val = None;
                let mut slowest = 0.0f64;
                for _ in 0..n {
                    match rx_out.recv().expect("worker alive") {
                        FromWorker::StepDone {
                            rank,
                            micro_loss,
                            val_loss,
                            compute_ms,
                            comm_ms,
                            sent_bytes,
                            opt_bytes: ob,
                        } => {
                            losses[rank] = micro_loss;
                            val = val.or(val_loss);
                            total_compute[rank] += compute_ms;
                            comm[rank] += comm_ms;
                            slowest = slowest.max(compute_ms);
                            bytes_accum += sent_bytes;
                            opt_bytes[rank] = ob;
                        }
                        FromWorker::StepFailed { rank, err } => {
                            unreachable!("rank {rank} failed a fault-free run: {err}")
                        }
                        _ => unreachable!("only StepDone during a step"),
                    }
                }
                critical_ms += slowest;
                steps_run += 1;
                if eval {
                    train_curve.push((step, fold_mean(&losses)));
                    val_curve.push((step, val.expect("rank 0 evaluated")));
                }

                let completed = step + 1;
                let at_checkpoint = checkpoint_every
                    .is_some_and(|every| completed.is_multiple_of(every) || completed == cfg.steps);
                if at_checkpoint {
                    let image = consolidate_checkpoint(
                        &cmd_txs,
                        &rx_out,
                        &plan,
                        zero1,
                        cfg,
                        completed,
                        dataset.cursor(),
                        &train_curve,
                        &val_curve,
                    );
                    checkpoints.push((completed, image));
                }
            }

            for tx in &cmd_txs {
                tx.send(ToWorker::Finish).expect("worker alive");
            }
            let mut rank0 = None;
            for h in handles {
                if let Some(bundle) = h.join().expect("worker thread") {
                    rank0 = Some(bundle);
                }
            }
            let (model, store) = rank0.expect("rank 0 returns its replica");

            let denom = (steps_run.max(1) * n) as f64;
            let formula = wire_bytes(CollKind::AllReduce, (plan.total * 4) as f64, n);
            let report = ParallelReport {
                workers: n,
                zero1,
                steps_run,
                param_scalars: plan.total,
                shard_scalars: plan.shard_scalars(),
                measured_allreduce_bytes_per_step: bytes_accum as f64 / denom,
                formula_allreduce_bytes_per_step: formula,
                critical_compute_ms: critical_ms,
                total_compute_ms: total_compute,
                comm_ms: comm,
                post_ms: 0.0,
                opt_state_bytes: opt_bytes,
            };
            Ok(ParallelOutcome {
                pretrained: Pretrained {
                    model,
                    store,
                    tokenizer,
                    curves: LossCurves {
                        label: cfg.label(),
                        train: train_curve,
                        val: val_curve,
                    },
                    config: cfg.clone(),
                },
                report,
                checkpoints,
            })
        })
    }
}

/// Ask every worker for its optimizer state, merge the shards, and have
/// rank 0 wrap its weights plus the training-state sections into a v2
/// checkpoint image — byte-compatible with [`crate::pretrain::Trainer`].
#[allow(clippy::too_many_arguments)]
fn consolidate_checkpoint(
    cmd_txs: &[Sender<ToWorker>],
    rx_out: &Receiver<FromWorker>,
    plan: &ShardPlan,
    zero1: bool,
    cfg: &PretrainConfig,
    completed: usize,
    cursor: u128,
    train_curve: &[(usize, f32)],
    val_curve: &[(usize, f32)],
) -> Vec<u8> {
    let n = cmd_txs.len();
    for tx in cmd_txs {
        tx.send(ToWorker::ExportOpt).expect("worker alive");
    }
    let mut shards: Vec<Option<OptimizerState>> = (0..n).map(|_| None).collect();
    for _ in 0..n {
        match rx_out.recv().expect("worker alive") {
            FromWorker::Opt(rank, state) => shards[rank] = Some(state),
            _ => unreachable!("only Opt replies during consolidation"),
        }
    }
    let shards: Vec<OptimizerState> = shards.into_iter().map(|s| s.expect("all ranks")).collect();
    let merged = if zero1 {
        OptimizerState::merge_shards(&shards, &plan.owners())
            .expect("shards cover every parameter consistently")
    } else {
        shards.into_iter().next().expect("rank 0 state")
    };
    let sections = vec![
        (SEC_LABEL.to_string(), cfg.label().into_bytes()),
        (SEC_OPT.to_string(), merged.to_bytes()),
        (
            SEC_STEP.to_string(),
            (completed as u64).to_le_bytes().to_vec(),
        ),
        (SEC_CURSOR.to_string(), cursor.to_le_bytes().to_vec()),
        (
            SEC_CURVES.to_string(),
            crate::pretrain::encode_curves(train_curve, val_curve),
        ),
    ];
    cmd_txs[0]
        .send(ToWorker::Assemble(sections))
        .expect("worker alive");
    match rx_out.recv().expect("worker alive") {
        FromWorker::Image(bytes) => bytes,
        _ => unreachable!("only an Image reply after Assemble"),
    }
}

/// Training state decoded from a v2 checkpoint for a DP resume.
struct ResumeState {
    weights: ParamStore,
    opt_state: OptimizerState,
    step: usize,
    cursor: u128,
    train_curve: Vec<(usize, f32)>,
    val_curve: Vec<(usize, f32)>,
}

fn decode_resume(cfg: &PretrainConfig, bytes: &[u8]) -> Result<ResumeState, ResumeError> {
    let ck = checkpoint::load_full(bytes).map_err(ResumeError::Checkpoint)?;
    let label = ck
        .section(SEC_LABEL)
        .ok_or(ResumeError::MissingSection(SEC_LABEL))?;
    let expected = cfg.label();
    if label != expected.as_bytes() {
        return Err(ResumeError::ConfigMismatch {
            expected,
            found: String::from_utf8_lossy(label).into_owned(),
        });
    }
    let opt_state = OptimizerState::from_bytes(
        ck.section(SEC_OPT)
            .ok_or(ResumeError::MissingSection(SEC_OPT))?,
    )
    .ok_or(ResumeError::Corrupt(SEC_OPT))?;
    let step = u64::from_le_bytes(
        ck.section(SEC_STEP)
            .ok_or(ResumeError::MissingSection(SEC_STEP))?
            .try_into()
            .map_err(|_| ResumeError::Corrupt(SEC_STEP))?,
    ) as usize;
    let cursor = u128::from_le_bytes(
        ck.section(SEC_CURSOR)
            .ok_or(ResumeError::MissingSection(SEC_CURSOR))?
            .try_into()
            .map_err(|_| ResumeError::Corrupt(SEC_CURSOR))?,
    );
    let (train_curve, val_curve) = crate::pretrain::decode_curves(
        ck.section(SEC_CURVES)
            .ok_or(ResumeError::MissingSection(SEC_CURVES))?,
    )
    .ok_or(ResumeError::Corrupt(SEC_CURVES))?;
    Ok(ResumeState {
        weights: ck.store,
        opt_state,
        step,
        cursor,
        train_curve,
        val_curve,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_plan_covers_and_aligns() {
        let sizes = vec![100, 3, 50, 50, 7, 90];
        for n in 1..=4 {
            let plan = ShardPlan::new(&sizes, n);
            assert_eq!(plan.total, 300);
            assert_eq!(plan.flat.len(), n);
            // contiguous cover of the flat space
            assert_eq!(plan.flat[0].start, 0);
            assert_eq!(plan.flat[n - 1].end, 300);
            for w in plan.flat.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
            // every bound is a tensor boundary
            for r in &plan.flat {
                assert!(plan.offsets.contains(&r.start));
                assert!(plan.offsets.contains(&r.end));
            }
            // ownership is a partition
            let owners = plan.owners();
            assert_eq!(owners.len(), sizes.len());
            for (t, &o) in owners.iter().enumerate() {
                assert!(plan.owned_mask(o)[t]);
            }
        }
    }

    #[test]
    fn shard_plan_more_ranks_than_tensors_leaves_empty_shards() {
        let sizes = vec![8, 4];
        let plan = ShardPlan::new(&sizes, 5);
        assert_eq!(plan.flat.len(), 5);
        assert_eq!(plan.shard_scalars().iter().sum::<usize>(), 12);
        // coverage is contiguous even through the empty shards
        assert_eq!(plan.flat[0].start, 0);
        assert_eq!(plan.flat[4].end, 12);
        for w in plan.flat.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
        let owners = plan.owners();
        assert_eq!(owners.len(), 2);
        for (t, &o) in owners.iter().enumerate() {
            assert!(plan.owned_mask(o)[t]);
        }
        assert!(
            plan.shard_scalars().contains(&0),
            "surplus ranks own nothing"
        );
    }

    #[test]
    fn shard_plan_zero_length_tensors_are_always_owned() {
        // zero-length tensors at the head, middle and tail — every one
        // must still have exactly one owner, whatever the rank count
        let sizes = vec![0, 5, 0, 7, 0, 0];
        for n in 1..=5 {
            let plan = ShardPlan::new(&sizes, n);
            assert_eq!(plan.total, 12);
            let owners = plan.owners();
            assert_eq!(owners.len(), sizes.len());
            for (t, &o) in owners.iter().enumerate() {
                assert!(plan.owned_mask(o)[t], "tensor {t} owned at n={n}");
            }
            assert_eq!(plan.flat[0].start, 0);
            assert_eq!(plan.flat[n - 1].end, 12);
        }
    }

    #[test]
    fn shard_plan_degenerate_all_zero_and_empty_inputs() {
        for sizes in [vec![], vec![0, 0, 0]] {
            for n in 1..=3 {
                let plan = ShardPlan::new(&sizes, n);
                assert_eq!(plan.total, 0);
                assert_eq!(plan.owners().len(), sizes.len());
                assert!(plan.flat.iter().all(|r| r.is_empty()));
            }
        }
    }

    #[test]
    fn shard_plan_single_worker_owns_everything() {
        let plan = ShardPlan::new(&[3, 0, 9], 1);
        assert_eq!(plan.flat, vec![0..12]);
        assert_eq!(plan.tensors, vec![0..3]);
        assert_eq!(plan.owners(), vec![0, 0, 0]);
    }

    #[test]
    fn shard_plan_zero_ranks_is_a_typed_error() {
        assert!(matches!(
            ShardPlan::try_new(&[4], 0),
            Err(ShardPlanError::NoRanks)
        ));
    }

    #[test]
    fn fold_mean_of_single_loss_is_identity() {
        let l = 2.3456789f32;
        assert_eq!(fold_mean(&[l]).to_bits(), l.to_bits());
    }

    #[test]
    fn split_batch_partitions_rows_in_rank_order() {
        let batch = Batch {
            inputs: (0..12).collect(),
            targets: (100..112).collect(),
            batch: 4,
            seq: 3,
        };
        let micros = split_batch(&batch, 2);
        assert_eq!(micros[0].inputs, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(micros[1].inputs, vec![6, 7, 8, 9, 10, 11]);
        assert_eq!(micros[1].targets, vec![106, 107, 108, 109, 110, 111]);
        assert_eq!(micros[0].batch, 2);
        assert_eq!(micros[0].seq, 3);
    }
}
