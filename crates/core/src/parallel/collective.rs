//! The executed communication layer every parallelism axis shares.
//!
//! Data, tensor and pipeline parallelism all speak through this module:
//!
//! * `Ring` (crate-private) — one worker's pair of directed ring
//!   links, executing the
//!   chunked reduce-scatter / allgather schedule RCCL rings run on
//!   Frontier, with bounded receives ([`CollectiveError`], never a
//!   hang) and per-endpoint wire-byte / wait-time accounting;
//! * [`Collective`] — the fallible trait surface (allreduce,
//!   reduce-scatter, allgather, deadline-bounded p2p send/recv)
//!   extracted from the DP-specific plumbing so TP groups, DP groups
//!   and the grad-norm group are all the same audited object;
//! * [`PipeLink`] — a bidirectional stage-boundary link for pipeline
//!   parallelism, built from a 2-ring, emitting `Domain::Pipe` flow
//!   arrows whose ids both endpoints derive without communicating;
//! * [`RingComm`] — the [`TapeComm`] adapter that lets autograd tape
//!   ops ([`Tape::sync_sum`], [`Tape::sync_grad`]) run ring allreduces
//!   mid-graph, latching the first failure instead of panicking inside
//!   the backward sweep.
//!
//! [`Tape::sync_sum`]: matgpt_tensor::Tape::sync_sum
//! [`Tape::sync_grad`]: matgpt_tensor::Tape::sync_grad

use crossbeam::channel::{unbounded, Receiver, Sender};
use matgpt_frontier_sim::collectives::Collective as CollKind;
use matgpt_obs::flow::{self, Domain, FlowScope};
use matgpt_obs::{pids, FlowPhase, Span};
use matgpt_tensor::{ring_chunks, TapeComm};
use std::cell::RefCell;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Ring-receive bound for fault-free runs: long enough that no healthy
/// worker can trip it, short enough that a genuinely wedged run turns
/// into a typed error instead of an eternal hang. Resilient runs use
/// the much tighter `ResilienceConfig::collective_timeout_ms`.
pub(crate) const DEFAULT_RING_TIMEOUT: Duration = Duration::from_secs(120);

/// Typed failure of a bounded collective — what a worker observes when
/// a peer dies or stalls instead of blocking forever.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CollectiveError {
    /// A link disconnected: the named peer dropped its endpoints (its
    /// thread exited or was killed mid-step).
    RankLost {
        /// The peer this rank lost contact with.
        rank: usize,
    },
    /// No traffic from the named peer within the bounded wait — a stall
    /// longer than the collective timeout is indistinguishable from a
    /// dead rank and is treated as one.
    Timeout {
        /// The peer that went silent.
        rank: usize,
        /// How long this rank waited before giving up, milliseconds.
        waited_ms: u64,
    },
}

impl std::fmt::Display for CollectiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CollectiveError::RankLost { rank } => write!(f, "ring peer {rank} lost (disconnected)"),
            CollectiveError::Timeout { rank, waited_ms } => {
                write!(f, "ring peer {rank} silent for {waited_ms} ms")
            }
        }
    }
}

impl std::error::Error for CollectiveError {}

/// The communication surface every executed parallelism axis uses: the
/// chunked ring collectives plus deadline-bounded point-to-point
/// transfers, all fallible ([`CollectiveError`], never a hang) and all
/// wire-byte audited ([`Collective::sent_bytes`]).
///
/// DP gradient sync, TP activation allreduces, the distributed
/// grad-norm allgather and PP boundary hops run through this one trait,
/// so a single accounting and failure model covers the whole
/// `Topology { dp, tp, pp }` executor.
pub trait Collective {
    /// This endpoint's rank within the group.
    fn rank(&self) -> usize;
    /// Group size.
    fn world(&self) -> usize;
    /// Chunked ring reduce-scatter over `bounds` (see the
    /// crate-private `Ring::reduce_scatter` for the schedule and fold
    /// order).
    fn reduce_scatter(
        &mut self,
        buf: &mut [f32],
        bounds: &[Range<usize>],
    ) -> Result<(), CollectiveError>;
    /// Chunked ring allgather over `bounds`.
    fn allgather(
        &mut self,
        buf: &mut [f32],
        bounds: &[Range<usize>],
    ) -> Result<(), CollectiveError>;
    /// Allreduce-sum: reduce-scatter then allgather — the ring
    /// decomposition whose per-rank wire volume is the paper's
    /// `2(N−1)/N · M` closed form.
    fn allreduce(
        &mut self,
        buf: &mut [f32],
        bounds: &[Range<usize>],
    ) -> Result<(), CollectiveError> {
        self.reduce_scatter(buf, bounds)?;
        self.allgather(buf, bounds)
    }
    /// Point-to-point send to this endpoint's successor.
    fn send(&mut self, buf: Vec<f32>) -> Result<(), CollectiveError>;
    /// Deadline-bounded point-to-point receive from the predecessor.
    fn recv(&mut self) -> Result<Vec<f32>, CollectiveError>;
    /// Total bytes this endpoint has sent.
    fn sent_bytes(&self) -> u64;
    /// Total milliseconds this endpoint has spent blocked on receives.
    fn wait_ms(&self) -> f64;
}

/// One worker's pair of ring links: it only ever sends to its successor
/// and receives from its predecessor, like one RCCL ring channel.
pub(crate) struct Ring {
    pub(crate) rank: usize,
    pub(crate) n: usize,
    tx_next: Sender<Vec<f32>>,
    rx_prev: Receiver<Vec<f32>>,
    timeout: Duration,
    pub(crate) sent_bytes: u64,
    pub(crate) wait_ms: f64,
    /// Collective sequence number for flow-id scoping. Every rank of a
    /// ring group runs the same collectives in the same order, so the
    /// counters stay in lockstep and both ends of a hop derive the
    /// same flow id without communicating.
    flow_seq: u64,
    /// Current training step, for tagging flow events (`u64::MAX` =
    /// outside a step).
    pub(crate) step: u64,
}

/// One directed ring link: the channel carrying rank r's sends to r+1.
type RingLink = (Sender<Vec<f32>>, Receiver<Vec<f32>>);

impl Ring {
    /// Build the n ring endpoints (rank r sends to rank (r+1) mod n),
    /// each bounding its receives by `timeout`.
    pub(crate) fn build(n: usize, timeout: Duration) -> Vec<Ring> {
        // Each ring group gets a disjoint block of collective sequence
        // numbers, so flow ids from different pools (reruns, elastic
        // re-shards, the many groups of a topology grid) never collide
        // in one process-wide trace.
        static RING_GROUP: AtomicU64 = AtomicU64::new(0);
        let seq_base = RING_GROUP.fetch_add(1, Ordering::Relaxed) << 20;
        let links: Vec<RingLink> = (0..n).map(|_| unbounded()).collect();
        let mut txs: Vec<Option<Sender<Vec<f32>>>> = Vec::new();
        let mut rxs: Vec<Option<Receiver<Vec<f32>>>> = Vec::new();
        for (tx, rx) in links {
            txs.push(Some(tx));
            rxs.push(Some(rx));
        }
        (0..n)
            .map(|r| Ring {
                rank: r,
                n,
                // link r carries r -> r+1 traffic
                tx_next: txs[r].take().expect("unique sender"),
                rx_prev: rxs[(r + n - 1) % n].take().expect("unique receiver"),
                timeout,
                sent_bytes: 0,
                wait_ms: 0.0,
                flow_seq: seq_base,
                step: u64::MAX,
            })
            .collect()
    }

    /// Open the next collective's flow scope (same number on every
    /// rank — see `flow_seq`).
    fn begin_collective(&mut self) -> FlowScope {
        let scope = FlowScope::new(Domain::Ring, self.flow_seq);
        self.flow_seq += 1;
        scope
    }

    fn prev_rank(&self) -> usize {
        (self.rank + self.n - 1) % self.n
    }

    pub(crate) fn send(&mut self, buf: Vec<f32>) -> Result<(), CollectiveError> {
        self.sent_bytes += 4 * buf.len() as u64;
        self.tx_next
            .send(buf)
            .map_err(|_| CollectiveError::RankLost {
                rank: (self.rank + 1) % self.n,
            })
    }

    pub(crate) fn recv(&mut self) -> Result<Vec<f32>, CollectiveError> {
        let t0 = Instant::now();
        let got = self.rx_prev.recv_timeout(self.timeout).map_err(|e| {
            use crossbeam::channel::RecvTimeoutError;
            match e {
                RecvTimeoutError::Disconnected => CollectiveError::RankLost {
                    rank: self.prev_rank(),
                },
                RecvTimeoutError::Timeout => CollectiveError::Timeout {
                    rank: self.prev_rank(),
                    waited_ms: self.timeout.as_millis() as u64,
                },
            }
        });
        self.wait_ms += t0.elapsed().as_secs_f64() * 1e3;
        got
    }

    /// Chunked ring reduce-scatter over `bounds`: after N−1 steps rank
    /// `r` holds the fully reduced chunk `bounds[r]`; other chunks hold
    /// partial sums. Each chunk's additions happen in ring order
    /// starting from rank `r+1` — the order
    /// [`matgpt_tensor::ring_fold`] replays.
    pub(crate) fn reduce_scatter(
        &mut self,
        buf: &mut [f32],
        bounds: &[Range<usize>],
    ) -> Result<(), CollectiveError> {
        let scope = self.begin_collective();
        let n = self.n;
        for s in 0..n.saturating_sub(1) {
            let send_idx = (self.rank + n - 1 - s) % n;
            let t_send = Instant::now();
            self.send(buf[bounds[send_idx].clone()].to_vec())?;
            flow::emit(
                FlowPhase::Start,
                pids::PARALLEL,
                "ring",
                "ring.send",
                scope.ring_edge(s as u64, self.rank as u64),
                t_send,
                self.step,
            );
            let recv_idx = (self.rank + 2 * n - 2 - s) % n;
            let t_recv = Instant::now();
            let incoming = self.recv()?;
            flow::emit(
                FlowPhase::Finish,
                pids::PARALLEL,
                "ring",
                "ring.recv",
                scope.ring_edge(s as u64, self.prev_rank() as u64),
                t_recv,
                self.step,
            );
            for (dst, src) in buf[bounds[recv_idx].clone()].iter_mut().zip(&incoming) {
                *dst += *src;
            }
        }
        Ok(())
    }

    /// Chunked ring allgather over `bounds`: rank `r` starts with the
    /// authoritative `bounds[r]` and after N−1 steps every rank holds
    /// every chunk.
    pub(crate) fn allgather(
        &mut self,
        buf: &mut [f32],
        bounds: &[Range<usize>],
    ) -> Result<(), CollectiveError> {
        let scope = self.begin_collective();
        let n = self.n;
        for s in 0..n.saturating_sub(1) {
            let send_idx = (self.rank + n - s) % n;
            let t_send = Instant::now();
            self.send(buf[bounds[send_idx].clone()].to_vec())?;
            flow::emit(
                FlowPhase::Start,
                pids::PARALLEL,
                "ring",
                "ring.send",
                scope.ring_edge(s as u64, self.rank as u64),
                t_send,
                self.step,
            );
            let recv_idx = (self.rank + n - 1 - s) % n;
            let t_recv = Instant::now();
            let incoming = self.recv()?;
            flow::emit(
                FlowPhase::Finish,
                pids::PARALLEL,
                "ring",
                "ring.recv",
                scope.ring_edge(s as u64, self.prev_rank() as u64),
                t_recv,
                self.step,
            );
            buf[bounds[recv_idx].clone()].copy_from_slice(&incoming);
        }
        Ok(())
    }
}

impl Collective for Ring {
    fn rank(&self) -> usize {
        self.rank
    }
    fn world(&self) -> usize {
        self.n
    }
    fn reduce_scatter(
        &mut self,
        buf: &mut [f32],
        bounds: &[Range<usize>],
    ) -> Result<(), CollectiveError> {
        Ring::reduce_scatter(self, buf, bounds)
    }
    fn allgather(
        &mut self,
        buf: &mut [f32],
        bounds: &[Range<usize>],
    ) -> Result<(), CollectiveError> {
        Ring::allgather(self, buf, bounds)
    }
    fn send(&mut self, buf: Vec<f32>) -> Result<(), CollectiveError> {
        Ring::send(self, buf)
    }
    fn recv(&mut self) -> Result<Vec<f32>, CollectiveError> {
        Ring::recv(self)
    }
    fn sent_bytes(&self) -> u64 {
        self.sent_bytes
    }
    fn wait_ms(&self) -> f64 {
        self.wait_ms
    }
}

// ---------------------------------------------------------------------------
// Per-rank wire-byte closed forms.
// ---------------------------------------------------------------------------

/// Exact bytes rank `rank` sends in one ring allreduce over `len` f32
/// scalars across `n` ranks: the reduce-scatter sends every chunk
/// except its own, the allgather every chunk except its successor's.
/// The rank-mean of this is the paper's `2(N−1)/N · 4·len` closed form.
pub fn ring_allreduce_rank_bytes(len: usize, n: usize, rank: usize) -> u64 {
    if n <= 1 {
        return 0;
    }
    let bounds = ring_chunks(len, n);
    let rs: usize = (0..n).filter(|&c| c != rank).map(|c| bounds[c].len()).sum();
    let ag: usize = (0..n)
        .filter(|&c| c != (rank + 1) % n)
        .map(|c| bounds[c].len())
        .sum();
    (4 * (rs + ag)) as u64
}

/// Exact bytes rank `rank` sends in one ring allgather over the given
/// per-rank chunk `bounds` (possibly unequal): every chunk except its
/// successor's.
pub fn ring_allgather_rank_bytes(bounds: &[Range<usize>], rank: usize) -> u64 {
    let n = bounds.len();
    if n <= 1 {
        return 0;
    }
    let sent: usize = (0..n)
        .filter(|&c| c != (rank + 1) % n)
        .map(|c| bounds[c].len())
        .sum();
    (4 * sent) as u64
}

/// Exact bytes rank `rank` sends in one ring reduce-scatter over the
/// given per-rank chunk `bounds` (possibly unequal): every chunk except
/// its own.
pub fn ring_reduce_scatter_rank_bytes(bounds: &[Range<usize>], rank: usize) -> u64 {
    let n = bounds.len();
    if n <= 1 {
        return 0;
    }
    let sent: usize = (0..n).filter(|&c| c != rank).map(|c| bounds[c].len()).sum();
    (4 * sent) as u64
}

/// Run a real threaded ring allreduce (sum) over the given per-rank
/// buffers and chunk bounds. Returns each rank's resulting buffer plus
/// the bytes each rank sent — the unit-testable surface of the ring.
///
/// Receives are bounded: a dead or wedged participant surfaces as a
/// typed [`CollectiveError`] instead of blocking the caller forever.
pub fn ring_allreduce_sum(
    parts: Vec<Vec<f32>>,
    bounds: &[Range<usize>],
) -> Result<(Vec<Vec<f32>>, Vec<u64>), CollectiveError> {
    let n = parts.len();
    assert!(n > 0, "need at least one rank");
    assert_eq!(bounds.len(), n, "one chunk per rank");
    let rings = Ring::build(n, DEFAULT_RING_TIMEOUT);
    std::thread::scope(|scope| {
        let handles: Vec<_> = rings
            .into_iter()
            .zip(parts)
            .map(|(mut ring, mut buf)| {
                scope.spawn(move || -> Result<(Vec<f32>, u64), CollectiveError> {
                    ring.reduce_scatter(&mut buf, bounds)?;
                    ring.allgather(&mut buf, bounds)?;
                    Ok((buf, ring.sent_bytes))
                })
            })
            .collect();
        let mut bufs = Vec::with_capacity(n);
        let mut bytes = Vec::with_capacity(n);
        for h in handles {
            let (b, sent) = h.join().expect("ring worker")?;
            bufs.push(b);
            bytes.push(sent);
        }
        Ok((bufs, bytes))
    })
}

// ---------------------------------------------------------------------------
// Pipeline-parallel stage boundary link.
// ---------------------------------------------------------------------------

/// Direction of a pipeline boundary transfer, for flow-id derivation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PipeDir {
    /// Activation hop, stage s → s+1.
    Forward,
    /// Boundary-gradient hop, stage s+1 → s.
    Backward,
}

/// One endpoint of a bidirectional stage-boundary link — built from a
/// 2-ring, whose single hop in each direction is exactly a p2p channel
/// with a deadline. Endpoint 0 is the earlier stage.
///
/// Flow arrows use `Domain::Pipe` ids derived from
/// `(link id, step, chunk, direction)` rather than lockstep sequence
/// counters: the two endpoints interleave their sends and receives
/// differently under 1F1B, so only coordinates both sides already know
/// can name the same hop.
pub struct PipeLink {
    ring: Ring,
    link_id: u64,
    /// Current training step, folded into flow-arrow ids.
    pub step: u64,
}

impl PipeLink {
    /// Build the two endpoints of one stage boundary; receives on
    /// either end are bounded by `timeout`.
    pub fn pair(timeout: Duration) -> (PipeLink, PipeLink) {
        static LINK_ID: AtomicU64 = AtomicU64::new(0);
        let link_id = LINK_ID.fetch_add(1, Ordering::Relaxed);
        let mut rings = Ring::build(2, timeout);
        let later = rings.pop().expect("endpoint 1");
        let earlier = rings.pop().expect("endpoint 0");
        (
            PipeLink {
                ring: earlier,
                link_id,
                step: u64::MAX,
            },
            PipeLink {
                ring: later,
                link_id,
                step: u64::MAX,
            },
        )
    }

    /// Both endpoints derive the id of a hop from coordinates they
    /// independently know. The scope packs link and step, the edge
    /// packs chunk and direction.
    fn flow_scope(&self) -> FlowScope {
        FlowScope::new(Domain::Pipe, (self.link_id << 16) | (self.step & 0xFFFF))
    }

    fn edge(chunk: usize, dir: PipeDir) -> u64 {
        ((chunk as u64 & 0x7FFF) << 1) | (dir == PipeDir::Backward) as u64
    }

    /// Send one boundary tensor (activation or gradient) for `chunk`.
    pub fn send(
        &mut self,
        buf: Vec<f32>,
        chunk: usize,
        dir: PipeDir,
    ) -> Result<(), CollectiveError> {
        let scope = self.flow_scope();
        let _s = Span::enter(pids::PARALLEL, "pp", "pipe.send");
        let t0 = Instant::now();
        self.ring.send(buf)?;
        flow::emit(
            FlowPhase::Start,
            pids::PARALLEL,
            "pp",
            "pipe.send",
            scope.edge(Self::edge(chunk, dir)),
            t0,
            self.step,
        );
        Ok(())
    }

    /// Receive the boundary tensor for `chunk`, bounded by the link
    /// timeout — a dead or stalled neighbour stage is a typed
    /// [`CollectiveError`], never a hang.
    pub fn recv(&mut self, chunk: usize, dir: PipeDir) -> Result<Vec<f32>, CollectiveError> {
        let scope = self.flow_scope();
        let _s = Span::enter(pids::PARALLEL, "pp", "pipe.recv");
        let t0 = Instant::now();
        let got = self.ring.recv()?;
        flow::emit(
            FlowPhase::Finish,
            pids::PARALLEL,
            "pp",
            "pipe.recv",
            scope.edge(Self::edge(chunk, dir)),
            t0,
            self.step,
        );
        Ok(got)
    }

    /// Map a neighbour-loss error to the neighbour's pipeline stage.
    /// (The inner 2-ring reports peer rank 0/1; callers know which
    /// stage sits at the other end.)
    pub fn sent_bytes(&self) -> u64 {
        self.ring.sent_bytes
    }

    /// Milliseconds this endpoint has spent blocked on receives.
    pub fn wait_ms(&self) -> f64 {
        self.ring.wait_ms
    }
}

// ---------------------------------------------------------------------------
// Tape-side adapter: ring allreduce as an autograd communication hook.
// ---------------------------------------------------------------------------

/// A ring endpoint wrapped for use inside autograd tape ops
/// ([`matgpt_tensor::TapeComm`]): interior-mutable, error-latching, and
/// message-logging.
///
/// Tape construction and the backward sweep cannot propagate `Result`s
/// mid-graph, so the first [`CollectiveError`] is latched, every later
/// allreduce becomes a no-op, and the executor calls
/// [`RingComm::take_failure`] after the sweep to turn the latch into a
/// typed step failure. Each completed allreduce is also appended to a
/// message log (`(kind, buffer bytes)`) — the measured side of the
/// Fig. 11 message-size histogram comparison.
pub struct RingComm {
    ring: RefCell<Ring>,
    error: RefCell<Option<CollectiveError>>,
    log: RefCell<Vec<(CollKind, u64)>>,
}

impl RingComm {
    /// Wrap a ring endpoint.
    pub(crate) fn new(ring: Ring) -> Self {
        Self {
            ring: RefCell::new(ring),
            error: RefCell::new(None),
            log: RefCell::new(Vec::new()),
        }
    }

    /// Tag subsequent collectives with the current training step.
    pub fn set_step(&self, step: u64) {
        self.ring.borrow_mut().step = step;
    }

    /// Take the first latched typed failure, clearing the latch.
    pub fn take_failure(&self) -> Option<CollectiveError> {
        self.error.borrow_mut().take()
    }

    /// Total bytes this endpoint has sent.
    pub fn sent_bytes(&self) -> u64 {
        self.ring.borrow().sent_bytes
    }

    /// Milliseconds spent blocked on ring receives.
    pub fn wait_ms(&self) -> f64 {
        self.ring.borrow().wait_ms
    }

    /// Drain the `(collective kind, buffer bytes)` message log.
    pub fn drain_log(&self) -> Vec<(CollKind, u64)> {
        std::mem::take(&mut *self.log.borrow_mut())
    }
}

impl TapeComm for RingComm {
    fn allreduce(&self, buf: &mut [f32]) {
        if self.error.borrow().is_some() {
            return; // latched: stay a no-op so the sweep can finish
        }
        let _s = Span::enter(pids::PARALLEL, "tp", "allreduce");
        let mut ring = self.ring.borrow_mut();
        let bounds = ring_chunks(buf.len(), ring.n);
        let res = ring
            .reduce_scatter(buf, &bounds)
            .and_then(|()| ring.allgather(buf, &bounds));
        match res {
            Ok(()) => self
                .log
                .borrow_mut()
                .push((CollKind::AllReduce, 4 * buf.len() as u64)),
            Err(e) => *self.error.borrow_mut() = Some(e),
        }
    }

    fn take_error(&self) -> Option<String> {
        self.take_failure().map(|e| e.to_string())
    }

    fn group(&self) -> usize {
        self.ring.borrow().n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matgpt_frontier_sim::collectives::wire_bytes;
    use matgpt_tensor::ring_fold;

    #[test]
    fn threaded_ring_matches_fold_bitwise() {
        let parts: Vec<Vec<f32>> = (0..3)
            .map(|r| {
                (0..11)
                    .map(|i| (0.1 + r as f32 * 0.37 + i as f32 * 0.013).sin())
                    .collect()
            })
            .collect();
        let bounds = ring_chunks(11, 3); // non-divisible remainder chunks
        let expect = ring_fold(&parts, &bounds);
        let (results, bytes) = ring_allreduce_sum(parts, &bounds).expect("healthy ring");
        for buf in &results {
            let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(buf), bits(&expect));
        }
        // Each rank sends 2(n-1) chunks; mean volume hits the closed
        // form, and each rank individually hits the exact schedule sum.
        let mean = bytes.iter().sum::<u64>() as f64 / bytes.len() as f64;
        let formula = wire_bytes(CollKind::AllReduce, 11.0 * 4.0, 3);
        assert!((mean - formula).abs() < 1e-9, "{mean} vs {formula}");
        for (rank, &sent) in bytes.iter().enumerate() {
            assert_eq!(sent, ring_allreduce_rank_bytes(11, 3, rank), "rank {rank}");
        }
    }

    #[test]
    fn rank_bytes_closed_forms_average_to_paper_formula() {
        for (len, n) in [(12usize, 4usize), (13, 4), (7, 3), (100, 8)] {
            let total: u64 = (0..n).map(|r| ring_allreduce_rank_bytes(len, n, r)).sum();
            let mean = total as f64 / n as f64;
            let formula = wire_bytes(CollKind::AllReduce, (len * 4) as f64, n);
            assert!(
                (mean - formula).abs() < 1e-9,
                "len={len} n={n}: {mean} vs {formula}"
            );
        }
        assert_eq!(ring_allreduce_rank_bytes(64, 1, 0), 0, "no wire at n=1");
    }

    #[test]
    fn ring_recv_from_dropped_peer_is_rank_lost_not_a_hang() {
        // rank 1's endpoints are dropped before it ever sends: rank 0's
        // reduce-scatter must come back with a typed RankLost, and rank
        // 1's vanishing must cascade to rank 2 rather than deadlock.
        let mut rings = Ring::build(3, Duration::from_secs(5));
        let r2 = rings.pop().expect("rank 2");
        let r1 = rings.pop().expect("rank 1");
        let r0 = rings.pop().expect("rank 0");
        drop(r1);
        let bounds = ring_chunks(9, 3);
        std::thread::scope(|scope| {
            for mut ring in [r0, r2] {
                let bounds = &bounds;
                scope.spawn(move || {
                    let mut buf = vec![1.0f32; 9];
                    let err = ring
                        .reduce_scatter(&mut buf, bounds)
                        .expect_err("peer is gone");
                    assert!(matches!(err, CollectiveError::RankLost { .. }), "{err}");
                });
            }
        });
    }

    #[test]
    fn ring_recv_from_silent_peer_times_out() {
        // rank 1 stays alive but never participates: rank 0 must give
        // up after the bounded wait and name the silent predecessor.
        let mut rings = Ring::build(2, Duration::from_millis(50));
        let _r1 = rings.pop().expect("rank 1 held alive, silent");
        let mut r0 = rings.pop().expect("rank 0");
        let bounds = ring_chunks(4, 2);
        let mut buf = vec![1.0f32; 4];
        let err = r0
            .reduce_scatter(&mut buf, &bounds)
            .expect_err("peer never sends");
        assert_eq!(
            err,
            CollectiveError::Timeout {
                rank: 1,
                waited_ms: 50
            }
        );
    }

    #[test]
    fn pipe_link_round_trips_and_counts_bytes() {
        let (mut a, mut b) = PipeLink::pair(Duration::from_secs(5));
        a.send(vec![1.0, 2.0, 3.0], 0, PipeDir::Forward).unwrap();
        assert_eq!(b.recv(0, PipeDir::Forward).unwrap(), vec![1.0, 2.0, 3.0]);
        b.send(vec![9.0], 0, PipeDir::Backward).unwrap();
        assert_eq!(a.recv(0, PipeDir::Backward).unwrap(), vec![9.0]);
        assert_eq!(a.sent_bytes(), 12);
        assert_eq!(b.sent_bytes(), 4);
    }

    #[test]
    fn pipe_link_deadline_expiry_is_typed_never_a_hang() {
        let (mut a, _b) = PipeLink::pair(Duration::from_millis(40));
        let err = a.recv(0, PipeDir::Forward).expect_err("silent peer");
        assert!(matches!(err, CollectiveError::Timeout { .. }), "{err}");
        let (mut a, b) = PipeLink::pair(Duration::from_millis(40));
        drop(b);
        let err = a.recv(0, PipeDir::Forward).expect_err("dropped peer");
        assert!(matches!(err, CollectiveError::RankLost { .. }), "{err}");
    }

    #[test]
    fn ring_comm_latches_errors_and_logs_messages() {
        let mut rings = Ring::build(2, Duration::from_millis(40));
        let r1 = rings.pop().expect("rank 1");
        let r0 = rings.pop().expect("rank 0");
        // healthy pair first: both sides allreduce concurrently
        let h = std::thread::spawn(move || {
            let comm = RingComm::new(r1);
            let mut buf = vec![1.0f32, 2.0];
            TapeComm::allreduce(&comm, &mut buf);
            (buf, comm.take_failure(), comm.drain_log())
        });
        let comm0 = RingComm::new(r0);
        let mut buf0 = vec![3.0f32, 4.0];
        TapeComm::allreduce(&comm0, &mut buf0);
        let (buf1, err1, log1) = h.join().unwrap();
        assert_eq!(buf0, vec![4.0, 6.0]);
        assert_eq!(buf1, vec![4.0, 6.0]);
        assert!(err1.is_none() && comm0.take_failure().is_none());
        assert_eq!(log1, vec![(CollKind::AllReduce, 8)]);

        // dead peer: first allreduce latches, later ones no-op
        let mut rings = Ring::build(2, Duration::from_millis(40));
        drop(rings.pop());
        let comm = RingComm::new(rings.pop().expect("rank 0"));
        let mut buf = vec![1.0f32; 4];
        TapeComm::allreduce(&comm, &mut buf);
        TapeComm::allreduce(&comm, &mut buf); // latched no-op
        assert!(comm.take_failure().is_some());
        assert!(comm.take_failure().is_none(), "latch cleared");
        assert!(comm.drain_log().is_empty(), "failed calls are not logged");
    }
}
