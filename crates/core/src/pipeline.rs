//! End-to-end orchestration: corpus → tokenizers → controlled pre-training
//! suite → BERT surrogate — everything the figure/table harnesses consume.

use crate::pretrain::{pretrain_with_tokenizer, train_tokenizer, Pretrained};
use crate::recipes::{OptChoice, PretrainConfig, SizeRole};
use matgpt_corpus::{build_corpus, Corpus, CorpusConfig};
use matgpt_model::{BertConfig, BertModel};
use matgpt_optim::{Adam, AdamConfig, Optimizer};
use matgpt_tensor::{init, ParamStore, Tape};
use matgpt_tokenizer::{Tokenizer, TokenizerKind};
use serde::{Deserialize, Serialize};

/// How big to run the whole reproduction.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SuiteScale {
    /// Materials in the universe.
    pub n_materials: usize,
    /// Corpus document budget.
    pub total_docs: usize,
    /// The "52K" vocabulary, scaled.
    pub vocab_large: usize,
    /// The "32K" vocabulary, scaled.
    pub vocab_small: usize,
    /// Pre-training steps per model.
    pub steps: usize,
    /// Sequence length.
    pub seq: usize,
    /// BERT MLM steps.
    pub bert_steps: usize,
    /// Master seed.
    pub seed: u64,
}

impl SuiteScale {
    /// Fast scale for tests (~seconds per model).
    pub fn smoke() -> Self {
        Self {
            n_materials: 60,
            total_docs: 200,
            vocab_large: 512,
            vocab_small: 384,
            steps: 25,
            seq: 32,
            bert_steps: 25,
            seed: 99,
        }
    }

    /// Default reproduction scale (~minutes for the full suite).
    pub fn standard() -> Self {
        Self {
            n_materials: 400,
            total_docs: 1500,
            vocab_large: 1024,
            vocab_small: 640,
            steps: 220,
            seq: 48,
            bert_steps: 200,
            seed: 42,
        }
    }
}

/// The seven controlled pre-training experiments of the loss study
/// (Fig. 13), in a fixed order.
pub fn experiment_matrix(scale: &SuiteScale) -> Vec<PretrainConfig> {
    use matgpt_model::ArchKind::{Llama, NeoX};
    use TokenizerKind::{Hf, Spm};
    let base = |arch, tok, vocab, opt, size| {
        let mut cfg = PretrainConfig::scaled(arch, tok, vocab, opt, size);
        cfg.steps = scale.steps;
        cfg.seq = scale.seq;
        cfg.seed = scale.seed;
        cfg
    };
    vec![
        base(
            Llama,
            Hf,
            scale.vocab_large,
            OptChoice::Adam,
            SizeRole::Base,
        ),
        base(
            Llama,
            Hf,
            scale.vocab_large,
            OptChoice::Lamb,
            SizeRole::Base,
        ),
        base(
            Llama,
            Spm,
            scale.vocab_large,
            OptChoice::Lamb,
            SizeRole::Base,
        ),
        base(
            Llama,
            Hf,
            scale.vocab_small,
            OptChoice::Lamb,
            SizeRole::Base,
        ),
        base(NeoX, Hf, scale.vocab_large, OptChoice::Lamb, SizeRole::Base),
        base(
            Llama,
            Hf,
            scale.vocab_large,
            OptChoice::Lamb,
            SizeRole::Large,
        ),
        base(
            NeoX,
            Hf,
            scale.vocab_large,
            OptChoice::Lamb,
            SizeRole::Large,
        ),
    ]
}

/// A trained BERT surrogate bundle.
pub struct TrainedBert {
    /// The encoder.
    pub model: BertModel,
    /// Weights.
    pub store: ParamStore,
    /// Final MLM loss.
    pub final_loss: f32,
}

/// Pre-train the MatSciBERT surrogate with masked-LM on the corpus.
pub fn pretrain_bert(
    documents: &[String],
    tokenizer: &dyn Tokenizer,
    steps: usize,
    seq: usize,
    seed: u64,
) -> TrainedBert {
    let cfg = BertConfig {
        max_seq: seq,
        ..BertConfig::tiny(tokenizer.vocab_size())
    };
    let mask_prob = cfg.mask_prob;
    let mut rng = init::rng(seed);
    let mut store = ParamStore::new();
    let model = BertModel::new(cfg, &mut store, &mut rng);
    let mut dataset = matgpt_corpus::TokenDataset::new(documents, tokenizer, 0.05, seed ^ 0xbe27);
    let mut opt = Adam::new(AdamConfig::paper_adam());
    let mut final_loss = f32::NAN;
    for step in 0..steps {
        let batch = dataset.sample_batch(4, seq);
        let (inputs, targets) = matgpt_model::mask_tokens(&batch.inputs, mask_prob, &mut rng);
        store.zero_grads();
        let mut tape = Tape::new();
        let loss = model.mlm_loss(&mut tape, &store, &inputs, &targets, batch.batch, batch.seq);
        final_loss = tape.value(loss).item();
        tape.backward(loss);
        tape.accumulate_param_grads(&mut store);
        store.clip_grad_norm(1.0);
        opt.step(&mut store, 3e-3);
        let _ = step;
    }
    TrainedBert {
        model,
        store,
        final_loss,
    }
}

/// Everything the downstream experiments need.
pub struct MatGptSuite {
    /// The corpus (with its material universe).
    pub corpus: Corpus,
    /// The controlled pre-training runs, in [`experiment_matrix`] order.
    pub models: Vec<Pretrained>,
    /// The MatSciBERT surrogate (trained with the large HF tokenizer).
    pub bert: TrainedBert,
    /// Tokenizer shared by the BERT model (HF, large vocab).
    pub bert_tokenizer: Box<dyn Tokenizer>,
}

/// Build the corpus and train the full suite.
pub fn train_suite(scale: &SuiteScale) -> MatGptSuite {
    let corpus = build_corpus(&CorpusConfig {
        n_materials: scale.n_materials,
        total_docs: scale.total_docs,
        offtopic_fraction: 0.3,
        seed: scale.seed,
    });
    // shared tokenizers per (kind, vocab) so controlled comparisons hold
    let hf_large = train_tokenizer(TokenizerKind::Hf, scale.vocab_large, &corpus.documents);
    let hf_small = train_tokenizer(TokenizerKind::Hf, scale.vocab_small, &corpus.documents);
    let spm_large = train_tokenizer(TokenizerKind::Spm, scale.vocab_large, &corpus.documents);

    let mut models = Vec::new();
    for cfg in experiment_matrix(scale) {
        let tok: Box<dyn Tokenizer> = match (cfg.tokenizer, cfg.vocab == scale.vocab_large) {
            (TokenizerKind::Hf, true) => {
                dyn_clone_hf(&corpus.documents, scale.vocab_large, &*hf_large)
            }
            (TokenizerKind::Hf, false) => {
                dyn_clone_hf(&corpus.documents, scale.vocab_small, &*hf_small)
            }
            (TokenizerKind::Spm, _) => {
                dyn_clone_spm(&corpus.documents, scale.vocab_large, &*spm_large)
            }
        };
        models.push(pretrain_with_tokenizer(&corpus.documents, &cfg, tok));
    }

    let bert = pretrain_bert(
        &corpus.documents,
        &*hf_large,
        scale.bert_steps,
        scale.seq,
        scale.seed ^ 0xbbbb,
    );
    MatGptSuite {
        corpus,
        models,
        bert,
        bert_tokenizer: hf_large,
    }
}

// Tokenizer trait objects aren't Clone; retraining is deterministic and
// cheap at these scales, so "cloning" is re-training with the same inputs.
fn dyn_clone_hf(docs: &[String], vocab: usize, _proto: &dyn Tokenizer) -> Box<dyn Tokenizer> {
    train_tokenizer(TokenizerKind::Hf, vocab, docs)
}

fn dyn_clone_spm(docs: &[String], vocab: usize, _proto: &dyn Tokenizer) -> Box<dyn Tokenizer> {
    train_tokenizer(TokenizerKind::Spm, vocab, docs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_matrix_covers_all_axes() {
        let m = experiment_matrix(&SuiteScale::smoke());
        assert_eq!(m.len(), 7);
        // axes present: optimizer, tokenizer, vocab, arch, size
        assert!(m.iter().any(|c| c.optimizer == OptChoice::Adam));
        assert!(m.iter().any(|c| c.tokenizer == TokenizerKind::Spm));
        assert!(m.iter().any(|c| c.vocab != m[0].vocab));
        assert!(m.iter().any(|c| c.arch == matgpt_model::ArchKind::NeoX));
        assert!(m.iter().any(|c| c.size == SizeRole::Large));
        // labels are unique
        let labels: std::collections::HashSet<String> = m.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), 7);
    }

    #[test]
    fn bert_mlm_pretraining_improves() {
        let corpus = build_corpus(&matgpt_corpus::CorpusConfig {
            n_materials: 40,
            total_docs: 120,
            offtopic_fraction: 0.2,
            seed: 3,
        });
        let tok = train_tokenizer(TokenizerKind::Hf, 400, &corpus.documents);
        let short = pretrain_bert(&corpus.documents, &*tok, 5, 32, 1);
        let long = pretrain_bert(&corpus.documents, &*tok, 60, 32, 1);
        assert!(
            long.final_loss < short.final_loss,
            "{} -> {}",
            short.final_loss,
            long.final_loss
        );
    }
}
