//! Property-based tests for the tensor kernels and tape invariants.

use matgpt_tensor::kernels::attention::{causal_attention_fwd, AttentionImpl};
use matgpt_tensor::kernels::matmul::matmul;
use matgpt_tensor::kernels::softmax::{logsumexp, softmax_rows};
use matgpt_tensor::{init, ParamStore, Tape, Tensor};
use proptest::prelude::*;

fn small_f32() -> impl Strategy<Value = f32> {
    (-4.0f32..4.0).prop_map(|x| (x * 100.0).round() / 100.0)
}

fn tensor_strategy(
    max_rows: usize,
    max_cols: usize,
) -> impl Strategy<Value = (usize, usize, Vec<f32>)> {
    (1..=max_rows, 1..=max_cols).prop_flat_map(|(r, c)| {
        proptest::collection::vec(small_f32(), r * c).prop_map(move |v| (r, c, v))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// matmul distributes over addition: (A + A') B == AB + A'B.
    #[test]
    fn matmul_is_linear((m, k, a) in tensor_strategy(6, 6), n in 1usize..6) {
        let a2: Vec<f32> = a.iter().map(|x| x * 0.5 + 0.1).collect();
        let b: Vec<f32> = (0..k * n).map(|i| ((i * 31 % 17) as f32 - 8.0) * 0.1).collect();
        let sum_a: Vec<f32> = a.iter().zip(&a2).map(|(x, y)| x + y).collect();
        let mut ab = vec![0.0; m * n];
        let mut a2b = vec![0.0; m * n];
        let mut sab = vec![0.0; m * n];
        matmul(&a, &b, &mut ab, m, k, n);
        matmul(&a2, &b, &mut a2b, m, k, n);
        matmul(&sum_a, &b, &mut sab, m, k, n);
        for i in 0..m * n {
            prop_assert!((sab[i] - (ab[i] + a2b[i])).abs() < 1e-3);
        }
    }

    /// Identity is a right unit for matmul.
    #[test]
    fn matmul_identity((m, k, a) in tensor_strategy(6, 6)) {
        let mut eye = vec![0.0f32; k * k];
        for i in 0..k { eye[i * k + i] = 1.0; }
        let mut c = vec![0.0; m * k];
        matmul(&a, &eye, &mut c, m, k, k);
        for i in 0..m * k {
            prop_assert!((c[i] - a[i]).abs() < 1e-5);
        }
    }

    /// Softmax rows are probability distributions invariant to shifts.
    #[test]
    fn softmax_shift_invariant((r, c, x) in tensor_strategy(5, 8), shift in -10.0f32..10.0) {
        let mut p1 = x.clone();
        softmax_rows(&mut p1, r, c);
        let mut p2: Vec<f32> = x.iter().map(|v| v + shift).collect();
        softmax_rows(&mut p2, r, c);
        for row in 0..r {
            let s: f32 = p1[row * c..(row + 1) * c].iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-4);
        }
        for i in 0..r * c {
            prop_assert!((p1[i] - p2[i]).abs() < 1e-4);
        }
    }

    /// logsumexp upper/lower bounds: max <= lse <= max + ln(n).
    #[test]
    fn logsumexp_bounds(xs in proptest::collection::vec(small_f32(), 1..16)) {
        let max = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let lse = logsumexp(&xs);
        prop_assert!(lse >= max - 1e-5);
        prop_assert!(lse <= max + (xs.len() as f32).ln() + 1e-5);
    }

    /// Flash attention equals naive attention on arbitrary inputs.
    #[test]
    fn flash_equals_naive(
        bh in 1usize..3,
        t in 1usize..8,
        d in 1usize..5,
        seed in 0u64..1000,
    ) {
        let n = bh * t * d;
        let mut rng = init::rng(seed);
        let q = init::randn(&[n], 1.0, &mut rng).into_vec();
        let k = init::randn(&[n], 1.0, &mut rng).into_vec();
        let v = init::randn(&[n], 1.0, &mut rng).into_vec();
        let (o1, _) = causal_attention_fwd(&q, &k, &v, bh, t, d, AttentionImpl::Naive);
        let (o2, _) = causal_attention_fwd(&q, &k, &v, bh, t, d, AttentionImpl::Flash);
        for (a, b) in o1.iter().zip(o2.iter()) {
            prop_assert!((a - b).abs() < 1e-4, "{} vs {}", a, b);
        }
    }

    /// Attention output rows are convex combinations of value rows: the
    /// output is bounded by the min/max of visible values per dimension.
    #[test]
    fn attention_output_within_value_hull(
        t in 1usize..8,
        d in 1usize..4,
        seed in 0u64..1000,
    ) {
        let n = t * d;
        let mut rng = init::rng(seed);
        let q = init::randn(&[n], 1.0, &mut rng).into_vec();
        let k = init::randn(&[n], 1.0, &mut rng).into_vec();
        let v = init::randn(&[n], 1.0, &mut rng).into_vec();
        let (o, _) = causal_attention_fwd(&q, &k, &v, 1, t, d, AttentionImpl::Flash);
        for i in 0..t {
            for x in 0..d {
                let visible: Vec<f32> = (0..=i).map(|j| v[j * d + x]).collect();
                let lo = visible.iter().copied().fold(f32::INFINITY, f32::min);
                let hi = visible.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                prop_assert!(o[i * d + x] >= lo - 1e-4 && o[i * d + x] <= hi + 1e-4);
            }
        }
    }

    /// Reverse-mode gradient of sum(x @ w) w.r.t. w equals column sums of x.
    #[test]
    fn matmul_grad_closed_form((m, k, xdata) in tensor_strategy(5, 5), n in 1usize..4) {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::zeros(&[k, n]));
        let x = Tensor::from_vec(&[m, k], xdata.clone());
        let mut tape = Tape::new();
        let xv = tape.input(x);
        let wv = tape.param(&store, w);
        let y = tape.matmul(xv, wv);
        let l = tape.sum(y);
        tape.backward(l);
        tape.accumulate_param_grads(&mut store);
        // d sum(XW) / dW[p, j] = sum_i X[i, p]
        for p in 0..k {
            let col_sum: f32 = (0..m).map(|i| xdata[i * k + p]).sum();
            for j in 0..n {
                let g = store.grad(w).data()[p * n + j];
                prop_assert!((g - col_sum).abs() < 1e-3, "{} vs {}", g, col_sum);
            }
        }
    }

    /// split_heads then merge_heads is the identity.
    #[test]
    fn head_split_roundtrip(b in 1usize..3, t in 1usize..5, h in 1usize..4, d in 1usize..4, seed in 0u64..100) {
        let mut rng = init::rng(seed);
        let x = init::randn(&[b, t, h * d], 1.0, &mut rng);
        let mut tape = Tape::new();
        let xv = tape.input(x.clone());
        let s = tape.split_heads(xv, b, t, h, d);
        let m = tape.merge_heads(s, b, t, h, d);
        prop_assert_eq!(tape.value(m).data(), x.data());
    }

    /// Rotary embedding preserves per-position vector norms (it is a
    /// rotation), and position 0 is unchanged.
    #[test]
    fn rotary_preserves_norm(t in 1usize..6, half in 1usize..4, seed in 0u64..100) {
        let d = half * 2;
        let mut rng = init::rng(seed);
        let x = init::randn(&[1, t, d], 1.0, &mut rng);
        let mut tape = Tape::new();
        let xv = tape.input(x.clone());
        let r = tape.rotary(xv, t, d, 10_000.0);
        let rd = tape.value(r).data();
        for ti in 0..t {
            let xin = &x.data()[ti * d..(ti + 1) * d];
            let xout = &rd[ti * d..(ti + 1) * d];
            let ni: f32 = xin.iter().map(|v| v * v).sum();
            let no: f32 = xout.iter().map(|v| v * v).sum();
            prop_assert!((ni - no).abs() < 1e-3);
            if ti == 0 {
                for (a, b) in xin.iter().zip(xout.iter()) {
                    prop_assert!((a - b).abs() < 1e-6);
                }
            }
        }
    }

    /// Cross-entropy is minimal when logits put all mass on the target.
    #[test]
    fn cross_entropy_ordering(v in 2usize..6, target in 0usize..6) {
        let target = target % v;
        let mut good = vec![0.0f32; v];
        good[target] = 10.0;
        let mut bad = vec![0.0f32; v];
        bad[(target + 1) % v] = 10.0;
        let mut tape = Tape::new();
        let gl = tape.input(Tensor::from_vec(&[1, v], good));
        let bl = tape.input(Tensor::from_vec(&[1, v], bad));
        let lg = tape.cross_entropy(gl, &[target as u32]);
        let lb = tape.cross_entropy(bl, &[target as u32]);
        prop_assert!(tape.value(lg).item() < tape.value(lb).item());
    }
}
