//! Corruption-robustness properties for the checkpoint codec: decoding
//! any truncated or byte-flipped checkpoint returns a
//! [`CheckpointError`] (or, for flips that only touch payload bytes, a
//! successfully decoded store) and never panics, over-allocates, or
//! loops — the fault-tolerance contract a restart path depends on.

use matgpt_tensor::checkpoint::{load, load_full, save_with_sections, CheckpointError};
use matgpt_tensor::{init, ParamStore, Tensor};
use proptest::prelude::*;

fn sample_store() -> ParamStore {
    let mut rng = init::rng(21);
    let mut s = ParamStore::new();
    s.add("wte", init::randn(&[5, 3], 0.3, &mut rng));
    s.add("ln.g", init::randn(&[3], 1.0, &mut rng));
    s.add("head", init::randn(&[3, 5], 0.3, &mut rng));
    s.add("step_scalar", Tensor::scalar(12.0));
    s
}

/// Sections shaped like the ones the trainer's resumable checkpoints
/// actually carry: a moment-vector blob, a step counter, a loader
/// cursor, and recorded loss curves.
fn sample_sections() -> Vec<(String, Vec<u8>)> {
    let opt_state: Vec<u8> = (0..256u32)
        .flat_map(|i| (i as f32 * 0.01).to_le_bytes())
        .collect();
    let curves: Vec<u8> = (0..24u32).flat_map(|i| (i as f32).to_le_bytes()).collect();
    vec![
        ("opt_state".to_string(), opt_state),
        ("step".to_string(), 12u64.to_le_bytes().to_vec()),
        ("data_cursor".to_string(), vec![9u8; 16]),
        ("curves".to_string(), curves),
    ]
}

fn sample_bytes() -> Vec<u8> {
    save_with_sections(&sample_store(), &sample_sections()).to_vec()
}

/// Byte offset where the v2 section table (the `n_sections` count)
/// begins: everything before it is the v1-compatible weight table.
fn sections_start(full_len: usize) -> usize {
    let trailer: usize = 4 + sample_sections()
        .iter()
        .map(|(n, b)| 12 + n.len() + b.len())
        .sum::<usize>();
    full_len - trailer
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every strict prefix of a checkpoint decodes to an error — the
    /// declared counts make any truncation detectable — and never
    /// panics.
    #[test]
    fn truncation_always_errors(frac in 0.0f64..1.0) {
        let bytes = sample_bytes();
        let cut = ((bytes.len() - 1) as f64 * frac) as usize;
        let err = load_full(&bytes[..cut]).err();
        prop_assert!(err.is_some(), "prefix of {cut} bytes decoded cleanly");
    }

    /// A single byte flip anywhere decodes without panicking: either a
    /// clean error, or (for flips confined to name/payload bytes) a
    /// structurally valid store.
    #[test]
    fn byte_flip_never_panics(pos_frac in 0.0f64..1.0, mask in 1u8..=255) {
        let mut bytes = sample_bytes();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= mask;
        match load_full(&bytes) {
            Ok(ck) => {
                // decoded stores stay internally consistent
                for id in ck.store.ids() {
                    let t = ck.store.value(id);
                    prop_assert_eq!(
                        t.shape().iter().product::<usize>(), t.data().len()
                    );
                }
            }
            Err(
                CheckpointError::BadMagic
                | CheckpointError::BadVersion(_)
                | CheckpointError::Truncated
                | CheckpointError::ShapeMismatch,
            ) => {}
        }
    }

    /// Flipping several bytes at once (burst corruption) is equally
    /// harmless.
    #[test]
    fn burst_corruption_never_panics(
        start_frac in 0.0f64..1.0,
        len in 1usize..24,
        mask in 1u8..=255,
    ) {
        let mut bytes = sample_bytes();
        let start = ((bytes.len() - 1) as f64 * start_frac) as usize;
        let end = (start + len).min(bytes.len());
        for b in &mut bytes[start..end] {
            *b ^= mask;
        }
        let _ = load(&bytes); // must return, not panic
    }

    /// Corruption confined to the v2 section region (names, lengths, or
    /// payload of `opt_state`/`step`/`data_cursor`/`curves`) can never
    /// damage the weights: decoding returns a typed error or a store
    /// that is bit-exact to the original — the property the resilience
    /// layer's rollback leans on when it replays a snapshot whose
    /// trailer went bad.
    #[test]
    fn section_region_corruption_cannot_touch_the_weights(
        pos_frac in 0.0f64..1.0,
        len in 1usize..32,
        mask in 1u8..=255,
    ) {
        let clean = sample_store();
        let mut bytes = sample_bytes();
        let start = sections_start(bytes.len());
        let pos = start + ((bytes.len() - start - 1) as f64 * pos_frac) as usize;
        let end = (pos + len).min(bytes.len());
        for b in &mut bytes[pos..end] {
            *b ^= mask;
        }
        match load_full(&bytes) {
            Ok(ck) => prop_assert_eq!(
                ck.store.flat_values(),
                clean.flat_values(),
                "section corruption leaked into the weight table"
            ),
            Err(
                CheckpointError::BadMagic
                | CheckpointError::BadVersion(_)
                | CheckpointError::Truncated
                | CheckpointError::ShapeMismatch,
            ) => {}
        }
    }

    /// Truncating anywhere inside the section region is a typed error
    /// (the section table is declared up front), never a panic, and the
    /// weight prefix stays recoverable via the v1 path below.
    #[test]
    fn section_region_truncation_is_a_typed_error(frac in 0.0f64..1.0) {
        let bytes = sample_bytes();
        let start = sections_start(bytes.len());
        let cut = start + ((bytes.len() - start - 1) as f64 * frac) as usize;
        prop_assert!(matches!(
            load_full(&bytes[..cut]),
            Err(CheckpointError::Truncated)
        ));
    }
}

/// The weight table of a v2 checkpoint IS a v1 checkpoint: cutting the
/// buffer at the section table and patching the version field back to 1
/// must load the store bit-exactly — forward-written images keep a
/// prefix that older readers can still use.
#[test]
fn v2_weight_prefix_is_v1_readable_bit_exact() {
    let clean = sample_store();
    let bytes = sample_bytes();
    let mut v1 = bytes[..sections_start(bytes.len())].to_vec();
    v1[4..8].copy_from_slice(&1u32.to_le_bytes());
    let store = load(&v1).expect("v1 prefix loads");
    assert_eq!(store.flat_values(), clean.flat_values());
    let full = load_full(&v1).expect("v1 prefix loads fully");
    assert!(full.sections.is_empty(), "v1 has no section table");
}

/// Deterministic regression: a dim flipped to a huge value must be
/// rejected, not allocated.
#[test]
fn oversized_declared_shape_is_rejected() {
    let bytes = sample_bytes();
    // first param header: magic(4) version(4) n_params(4) name_len(4)
    // name "wte"(3) rank(4) -> dims start at offset 23
    let mut bad = bytes.clone();
    for b in &mut bad[23..31] {
        *b = 0xff; // dim0 = u64::MAX
    }
    assert!(load(&bad).is_err());
    // and a rank flipped huge must be rejected before allocating dims
    let mut bad_rank = bytes;
    bad_rank[19] = 0xff;
    bad_rank[20] = 0xff;
    bad_rank[21] = 0xff;
    bad_rank[22] = 0x7f;
    assert!(matches!(
        load(&bad_rank),
        Err(CheckpointError::Truncated | CheckpointError::ShapeMismatch)
    ));
}
