//! Corruption-robustness properties for the checkpoint codec: decoding
//! any truncated or byte-flipped checkpoint returns a
//! [`CheckpointError`] (or, for flips that only touch payload bytes, a
//! successfully decoded store) and never panics, over-allocates, or
//! loops — the fault-tolerance contract a restart path depends on.

use matgpt_tensor::checkpoint::{load, load_full, save_with_sections, CheckpointError};
use matgpt_tensor::{init, ParamStore, Tensor};
use proptest::prelude::*;

fn sample_bytes() -> Vec<u8> {
    let mut rng = init::rng(21);
    let mut s = ParamStore::new();
    s.add("wte", init::randn(&[5, 3], 0.3, &mut rng));
    s.add("ln.g", init::randn(&[3], 1.0, &mut rng));
    s.add("head", init::randn(&[3, 5], 0.3, &mut rng));
    s.add("step_scalar", Tensor::scalar(12.0));
    let sections = vec![
        ("opt_state".to_string(), (0u8..32).collect::<Vec<u8>>()),
        ("data_cursor".to_string(), vec![9u8; 16]),
    ];
    save_with_sections(&s, &sections).to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every strict prefix of a checkpoint decodes to an error — the
    /// declared counts make any truncation detectable — and never
    /// panics.
    #[test]
    fn truncation_always_errors(frac in 0.0f64..1.0) {
        let bytes = sample_bytes();
        let cut = ((bytes.len() - 1) as f64 * frac) as usize;
        let err = load_full(&bytes[..cut]).err();
        prop_assert!(err.is_some(), "prefix of {cut} bytes decoded cleanly");
    }

    /// A single byte flip anywhere decodes without panicking: either a
    /// clean error, or (for flips confined to name/payload bytes) a
    /// structurally valid store.
    #[test]
    fn byte_flip_never_panics(pos_frac in 0.0f64..1.0, mask in 1u8..=255) {
        let mut bytes = sample_bytes();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= mask;
        match load_full(&bytes) {
            Ok(ck) => {
                // decoded stores stay internally consistent
                for id in ck.store.ids() {
                    let t = ck.store.value(id);
                    prop_assert_eq!(
                        t.shape().iter().product::<usize>(), t.data().len()
                    );
                }
            }
            Err(
                CheckpointError::BadMagic
                | CheckpointError::BadVersion(_)
                | CheckpointError::Truncated
                | CheckpointError::ShapeMismatch,
            ) => {}
        }
    }

    /// Flipping several bytes at once (burst corruption) is equally
    /// harmless.
    #[test]
    fn burst_corruption_never_panics(
        start_frac in 0.0f64..1.0,
        len in 1usize..24,
        mask in 1u8..=255,
    ) {
        let mut bytes = sample_bytes();
        let start = ((bytes.len() - 1) as f64 * start_frac) as usize;
        let end = (start + len).min(bytes.len());
        for b in &mut bytes[start..end] {
            *b ^= mask;
        }
        let _ = load(&bytes); // must return, not panic
    }
}

/// Deterministic regression: a dim flipped to a huge value must be
/// rejected, not allocated.
#[test]
fn oversized_declared_shape_is_rejected() {
    let bytes = sample_bytes();
    // first param header: magic(4) version(4) n_params(4) name_len(4)
    // name "wte"(3) rank(4) -> dims start at offset 23
    let mut bad = bytes.clone();
    for b in &mut bad[23..31] {
        *b = 0xff; // dim0 = u64::MAX
    }
    assert!(load(&bad).is_err());
    // and a rank flipped huge must be rejected before allocating dims
    let mut bad_rank = bytes;
    bad_rank[19] = 0xff;
    bad_rank[20] = 0xff;
    bad_rank[21] = 0xff;
    bad_rank[22] = 0x7f;
    assert!(matches!(
        load(&bad_rank),
        Err(CheckpointError::Truncated | CheckpointError::ShapeMismatch)
    ));
}
