//! End-to-end gradient checks through composed tape graphs.
//!
//! Each test builds a scalar objective from tape ops, takes analytic
//! gradients via `backward`, and compares against central finite
//! differences on the raw parameter buffers.

use matgpt_tensor::{init, ParamStore, Tape, Tensor, Var};

/// Finite-difference check: perturb every scalar of every param, compare
/// with the analytic gradient.
fn grad_check(store: &mut ParamStore, build: &dyn Fn(&mut Tape, &ParamStore) -> Var, tol: f32) {
    // analytic
    store.zero_grads();
    let mut tape = Tape::new();
    let loss = build(&mut tape, store);
    tape.backward(loss);
    tape.accumulate_param_grads(store);
    let analytic: Vec<Vec<f32>> = store
        .ids()
        .map(|id| store.grad(id).data().to_vec())
        .collect();

    let eval = |store: &ParamStore| -> f32 {
        let mut tape = Tape::new();
        let loss = build(&mut tape, store);
        tape.value(loss).item()
    };

    let h = 1e-2f32;
    #[allow(clippy::needless_range_loop)]
    for (pi, id) in store.ids().collect::<Vec<_>>().into_iter().enumerate() {
        for i in 0..store.value(id).numel() {
            let orig = store.value(id).data()[i];
            store.value_mut(id).data_mut()[i] = orig + h;
            let fp = eval(store);
            store.value_mut(id).data_mut()[i] = orig - h;
            let fm = eval(store);
            store.value_mut(id).data_mut()[i] = orig;
            let num = (fp - fm) / (2.0 * h);
            let ana = analytic[pi][i];
            assert!(
                (num - ana).abs() < tol,
                "param {pi} [{i}]: numeric {num} vs analytic {ana}"
            );
        }
    }
}

#[test]
fn linear_gelu_chain() {
    let mut rng = init::rng(1);
    let mut store = ParamStore::new();
    let w1 = store.add("w1", init::randn(&[3, 4], 0.5, &mut rng));
    let b1 = store.add("b1", init::randn(&[4], 0.2, &mut rng));
    let w2 = store.add("w2", init::randn(&[4, 2], 0.5, &mut rng));
    let x = init::randn(&[5, 3], 1.0, &mut rng);
    grad_check(
        &mut store,
        &move |tape, store| {
            let xv = tape.input(x.clone());
            let w1v = tape.param(store, w1);
            let b1v = tape.param(store, b1);
            let w2v = tape.param(store, w2);
            let h = tape.linear(xv, w1v, b1v);
            let h = tape.gelu(h);
            let y = tape.matmul(h, w2v);
            tape.mean(y)
        },
        2e-2,
    );
}

#[test]
fn layernorm_residual_block() {
    let mut rng = init::rng(2);
    let mut store = ParamStore::new();
    let g = store.add("g", init::randn(&[4], 0.3, &mut rng));
    let b = store.add("b", init::randn(&[4], 0.3, &mut rng));
    let w = store.add("w", init::randn(&[4, 4], 0.5, &mut rng));
    let x = init::randn(&[3, 4], 1.0, &mut rng);
    grad_check(
        &mut store,
        &move |tape, store| {
            let xv = tape.input(x.clone());
            let gv = tape.param(store, g);
            let bv = tape.param(store, b);
            let wv = tape.param(store, w);
            let n = tape.layernorm(xv, gv, bv, 1e-5);
            let h = tape.matmul(n, wv);
            let h = tape.silu(h);
            let r = tape.add(h, xv);
            tape.sum(r)
        },
        3e-2,
    );
}

#[test]
fn rmsnorm_swiglu_block() {
    let mut rng = init::rng(3);
    let mut store = ParamStore::new();
    let g = store.add("g", init::randn(&[4], 0.3, &mut rng));
    let w1 = store.add("w1", init::randn(&[4, 6], 0.4, &mut rng));
    let w3 = store.add("w3", init::randn(&[4, 6], 0.4, &mut rng));
    let w2 = store.add("w2", init::randn(&[6, 4], 0.4, &mut rng));
    let x = init::randn(&[2, 4], 1.0, &mut rng);
    grad_check(
        &mut store,
        &move |tape, store| {
            let xv = tape.input(x.clone());
            let gv = tape.param(store, g);
            let w1v = tape.param(store, w1);
            let w3v = tape.param(store, w3);
            let w2v = tape.param(store, w2);
            let n = tape.rmsnorm(xv, gv, 1e-6);
            let a = tape.matmul(n, w1v);
            let a = tape.silu(a);
            let bq = tape.matmul(n, w3v);
            let h = tape.mul(a, bq);
            let y = tape.matmul(h, w2v);
            tape.mean(y)
        },
        2e-2,
    );
}

#[test]
fn embedding_cross_entropy() {
    let mut rng = init::rng(4);
    let mut store = ParamStore::new();
    let table = store.add("emb", init::randn(&[7, 4], 0.5, &mut rng));
    let w = store.add("w", init::randn(&[4, 7], 0.5, &mut rng));
    let ids = vec![0u32, 3, 6, 3];
    let targets = vec![3u32, 6, 0, matgpt_tensor::IGNORE_INDEX];
    grad_check(
        &mut store,
        &move |tape, store| {
            let tv = tape.param(store, table);
            let wv = tape.param(store, w);
            let e = tape.embedding(tv, &ids);
            let logits = tape.matmul(e, wv);
            tape.cross_entropy(logits, &targets)
        },
        2e-2,
    );
}

#[test]
fn attention_through_tape_both_impls() {
    for imp in [
        matgpt_tensor::AttentionImpl::Naive,
        matgpt_tensor::AttentionImpl::Flash,
    ] {
        let mut rng = init::rng(5);
        let mut store = ParamStore::new();
        let wq = store.add("wq", init::randn(&[4, 4], 0.5, &mut rng));
        let wk = store.add("wk", init::randn(&[4, 4], 0.5, &mut rng));
        let wv = store.add("wv", init::randn(&[4, 4], 0.5, &mut rng));
        let x = init::randn(&[1, 6, 4], 1.0, &mut rng); // B=1, T=6, h=4
        grad_check(
            &mut store,
            &move |tape, store| {
                tape.attention_impl = Some(imp);
                let xv = tape.input(x.clone());
                let wqv = tape.param(store, wq);
                let wkv = tape.param(store, wk);
                let wvv = tape.param(store, wv);
                let q = tape.matmul(xv, wqv);
                let k = tape.matmul(xv, wkv);
                let v = tape.matmul(xv, wvv);
                // 2 heads of dim 2
                let q = tape.split_heads(q, 1, 6, 2, 2);
                let k = tape.split_heads(k, 1, 6, 2, 2);
                let v = tape.split_heads(v, 1, 6, 2, 2);
                let q = tape.rotary(q, 6, 2, 10_000.0);
                let k = tape.rotary(k, 6, 2, 10_000.0);
                let o = tape.causal_attention(q, k, v, 2, 6, 2);
                let o = tape.merge_heads(o, 1, 6, 2, 2);
                tape.mean(o)
            },
            3e-2,
        );
    }
}

#[test]
fn graph_ops_segment_and_select() {
    let mut rng = init::rng(6);
    let mut store = ParamStore::new();
    let w = store.add("w", init::randn(&[3, 3], 0.5, &mut rng));
    let x = init::randn(&[4, 3], 1.0, &mut rng);
    let idx = vec![0u32, 2, 1, 3, 0];
    let seg = vec![0u32, 0, 1, 1, 1];
    grad_check(
        &mut store,
        &move |tape, store| {
            let xv = tape.input(x.clone());
            let wv = tape.param(store, w);
            let h = tape.matmul(xv, wv);
            let gathered = tape.index_select(h, &idx);
            let pooled = tape.segment_sum(gathered, &seg, 2);
            let act = tape.tanh(pooled);
            tape.sum(act)
        },
        2e-2,
    );
}

#[test]
fn concat_and_group_mean() {
    let mut rng = init::rng(7);
    let mut store = ParamStore::new();
    let w1 = store.add("w1", init::randn(&[3, 2], 0.5, &mut rng));
    let w2 = store.add("w2", init::randn(&[3, 3], 0.5, &mut rng));
    let x = init::randn(&[4, 3], 1.0, &mut rng);
    grad_check(
        &mut store,
        &move |tape, store| {
            let xv = tape.input(x.clone());
            let w1v = tape.param(store, w1);
            let w2v = tape.param(store, w2);
            let a = tape.matmul(xv, w1v); // [4,2]
            let b = tape.matmul(xv, w2v); // [4,3]
            let c = tape.concat(a, b); // [4,5]
            let m = tape.group_mean_rows(c, 2); // [2,5]
            tape.sum(m)
        },
        2e-2,
    );
}

#[test]
fn mse_and_sub_scale() {
    let mut rng = init::rng(8);
    let mut store = ParamStore::new();
    let w = store.add("w", init::randn(&[3, 1], 0.5, &mut rng));
    let x = init::randn(&[5, 3], 1.0, &mut rng);
    let target = init::randn(&[5, 1], 1.0, &mut rng);
    grad_check(
        &mut store,
        &move |tape, store| {
            let xv = tape.input(x.clone());
            let wv = tape.param(store, w);
            let y = tape.matmul(xv, wv);
            let y = tape.scale(y, 1.5);
            tape.mse(y, &target)
        },
        2e-2,
    );
}

#[test]
fn grad_accumulation_across_tapes_adds() {
    let mut rng = init::rng(9);
    let mut store = ParamStore::new();
    let w = store.add("w", init::randn(&[2, 2], 0.5, &mut rng));
    let x = Tensor::from_vec(&[1, 2], vec![1.0, -1.0]);
    let run = |store: &mut ParamStore| {
        let mut tape = Tape::new();
        let xv = tape.input(x.clone());
        let wv = tape.param(store, w);
        let y = tape.matmul(xv, wv);
        let l = tape.sum(y);
        tape.backward(l);
        tape.accumulate_param_grads(store);
    };
    run(&mut store);
    let g1 = store.grad(w).data().to_vec();
    run(&mut store);
    let g2 = store.grad(w).data().to_vec();
    for (a, b) in g1.iter().zip(g2.iter()) {
        assert!((b - 2.0 * a).abs() < 1e-5, "accumulated {b} vs 2*{a}");
    }
}

#[test]
fn dropout_zero_p_is_identity_and_mask_scales() {
    let mut rng = init::rng(10);
    let mut tape = Tape::new();
    let x = tape.input(init::randn(&[10, 10], 1.0, &mut rng));
    let y = tape.dropout(x, 0.0, &mut rng);
    assert_eq!(y, x, "p=0 dropout must be the same var");
    let z = tape.dropout(x, 0.5, &mut rng);
    // surviving entries are scaled by 1/keep = 2
    let xd = tape.value(x).data().to_vec();
    let zd = tape.value(z).data().to_vec();
    let mut survivors = 0;
    for (a, b) in xd.iter().zip(zd.iter()) {
        if *b != 0.0 {
            assert!((b - 2.0 * a).abs() < 1e-6);
            survivors += 1;
        }
    }
    assert!(survivors > 20 && survivors < 80, "survivors {survivors}");
}
