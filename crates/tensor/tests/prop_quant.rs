//! Property-based tests for the per-channel int8 quantizer and the
//! fused-dequant matmul.

use matgpt_tensor::kernels::matmul::matmul;
use matgpt_tensor::kernels::quant::{matmul_q8, QuantizedMatrix};
use proptest::prelude::*;

fn weight_strategy(max_k: usize, max_n: usize) -> impl Strategy<Value = (usize, usize, Vec<f32>)> {
    (1..=max_k, 1..=max_n).prop_flat_map(|(k, n)| {
        proptest::collection::vec(-8.0f32..8.0, k * n).prop_map(move |v| (k, n, v))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Symmetric per-channel round-trip: every reconstructed weight is
    /// within half a quantization step of the original, where the step
    /// is that column's own scale (max|w| / 127), not a global one.
    #[test]
    fn round_trip_error_bounded_per_channel((k, n, w) in weight_strategy(12, 12)) {
        let q = QuantizedMatrix::quantize(&w, k, n);
        let back = q.dequantize();
        for p in 0..k {
            for j in 0..n {
                let step = q.scales()[j];
                let err = (back[p * n + j] - w[p * n + j]).abs();
                prop_assert!(
                    err <= step * 0.5 + 1e-6,
                    "w[{p}][{j}]: err {err} exceeds half-step {}",
                    step * 0.5
                );
            }
        }
    }

    /// Column scales are exact: the largest-magnitude entry of each
    /// column maps to ±127 (or the column is all-zero with scale 1).
    #[test]
    fn extremes_saturate_codes((k, n, w) in weight_strategy(10, 10)) {
        let q = QuantizedMatrix::quantize(&w, k, n);
        for j in 0..n {
            let col_max = (0..k).fold(0.0f32, |m, p| m.max(w[p * n + j].abs()));
            let code_max = (0..k).fold(0i8, |m, p| m.max(q.data()[p * n + j].abs()));
            if col_max == 0.0 {
                prop_assert_eq!(q.scales()[j], 1.0);
                prop_assert_eq!(code_max, 0);
            } else {
                prop_assert_eq!(code_max, 127);
            }
        }
    }

    /// The fused kernel is exact: matmul_q8(a, Q) equals
    /// matmul(a, dequantize(Q)) to f32 round-off, because the
    /// per-column scale factors out of the k-contraction.
    #[test]
    fn fused_matches_dequantized_matmul(
        (k, n, w) in weight_strategy(10, 10),
        m in 1usize..5,
    ) {
        let a: Vec<f32> = (0..m * k)
            .map(|i| ((i * 37 % 23) as f32 - 11.0) * 0.25)
            .collect();
        let q = QuantizedMatrix::quantize(&w, k, n);
        let mut fused = vec![0.0f32; m * n];
        matmul_q8(&a, &q, &mut fused, m, k, n);
        let mut reference = vec![0.0f32; m * n];
        matmul(&a, &q.dequantize(), &mut reference, m, k, n);
        for i in 0..m * n {
            prop_assert!(
                (fused[i] - reference[i]).abs() <= 1e-3 * (1.0 + reference[i].abs()),
                "c[{i}]: fused {} vs reference {}",
                fused[i],
                reference[i]
            );
        }
    }
}
