#![warn(missing_docs)]

//! # matgpt-tensor
//!
//! Dense `f32` tensors with tape-based reverse-mode autodiff, built for the
//! MatGPT reproduction workspace. Highlights:
//!
//! * rayon-parallel matmul kernels (`ikj` ordering, transposed variants for
//!   the backward pass without materialised transposes);
//! * fused causal multi-head attention with two interchangeable kernels —
//!   a naive O(T²)-memory reference and a flash-attention-style streaming
//!   kernel with O(T) auxiliary memory (online softmax forward, recompute
//!   backward) — mirroring the contrast the paper measures on MI250X;
//! * LayerNorm / RMSNorm, GELU / SiLU, rotary embeddings, embedding
//!   gather/scatter, segment ops for graph neural networks;
//! * a [`param::ParamStore`] that persists weights across steps and feeds
//!   the optimizers in `matgpt-optim`.
//!
//! ```
//! use matgpt_tensor::{Tape, Tensor, ParamStore, init};
//!
//! let mut store = ParamStore::new();
//! let w = store.add("w", init::randn(&[4, 2], 0.5, &mut init::rng(0)));
//! let mut tape = Tape::new();
//! let x = tape.input(Tensor::from_vec(&[1, 4], vec![1.0, 2.0, 3.0, 4.0]));
//! let wv = tape.param(&store, w);
//! let y = tape.matmul(x, wv);
//! let loss = tape.sum(y);
//! tape.backward(loss);
//! tape.accumulate_param_grads(&mut store);
//! assert!(store.grad_norm() > 0.0);
//! ```

pub mod checkpoint;
pub mod collective;
pub mod init;
pub mod kernels;
pub mod param;
pub mod precision;
pub mod tape;
pub mod tensor;

pub use collective::{ring_chunks, ring_fold, CommHook, TapeComm};
pub use kernels::attention::AttentionImpl;
pub use kernels::quant::{PackedQ8Matrix, QuantizedMatrix};
pub use param::{ParamId, ParamStore};
pub use precision::Precision;
pub use tape::{Tape, Var, IGNORE_INDEX};
pub use tensor::Tensor;
