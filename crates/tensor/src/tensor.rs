//! Dense, contiguous, row-major `f32` tensors.
//!
//! The tensor type is deliberately simple: a shape vector plus a flat
//! buffer. All kernels in this crate operate on contiguous data; views
//! and permutations are realised as explicit copies, which is the right
//! trade-off at the model scales this workspace trains for real.

use std::fmt;

/// A dense row-major tensor of `f32` values.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Create a tensor from a flat buffer and a shape. The buffer length
    /// must equal the product of the shape dimensions.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Self {
        let numel: usize = shape.iter().product();
        assert_eq!(
            data.len(),
            numel,
            "data length {} does not match shape {:?}",
            data.len(),
            shape
        );
        Self {
            shape: shape.to_vec(),
            data,
        }
    }

    /// A tensor filled with zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        let numel = shape.iter().product();
        Self {
            shape: shape.to_vec(),
            data: vec![0.0; numel],
        }
    }

    /// A tensor filled with a constant.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let numel = shape.iter().product();
        Self {
            shape: shape.to_vec(),
            data: vec![value; numel],
        }
    }

    /// A rank-0 (scalar) tensor.
    pub fn scalar(value: f32) -> Self {
        Self {
            shape: vec![],
            data: vec![value],
        }
    }

    /// The shape of the tensor.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Rank (number of dimensions). Scalars have rank 0.
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Size of dimension `d`.
    pub fn dim(&self, d: usize) -> usize {
        self.shape[d]
    }

    /// Immutable access to the flat buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the flat buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the tensor, returning its flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// The single value of a scalar (or one-element) tensor.
    pub fn item(&self) -> f32 {
        assert_eq!(
            self.numel(),
            1,
            "item() on tensor with {} elements",
            self.numel()
        );
        self.data[0]
    }

    /// Reinterpret with a new shape of equal element count (no copy).
    pub fn reshaped(mut self, shape: &[usize]) -> Self {
        let numel: usize = shape.iter().product();
        assert_eq!(
            numel,
            self.data.len(),
            "reshape {:?} -> {:?}",
            self.shape,
            shape
        );
        self.shape = shape.to_vec();
        self
    }

    /// Interpret an N-D tensor as 2-D `[rows, cols]` where `cols` is the
    /// last dimension. Scalars and vectors are `[1, n]`.
    pub fn as_2d(&self) -> (usize, usize) {
        match self.shape.len() {
            0 => (1, 1),
            1 => (1, self.shape[0]),
            _ => {
                let cols = *self.shape.last().unwrap();
                (self.data.len() / cols, cols)
            }
        }
    }

    /// Elementwise in-place addition of another tensor of identical shape.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// Elementwise in-place scaling.
    pub fn scale_assign(&mut self, s: f32) {
        for a in self.data.iter_mut() {
            *a *= s;
        }
    }

    /// Squared L2 norm of the flat buffer.
    pub fn sq_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum()
    }

    /// L2 norm of the flat buffer.
    pub fn norm(&self) -> f32 {
        self.sq_norm().sqrt()
    }

    /// Maximum absolute element.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, x| m.max(x.abs()))
    }

    /// True if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}", self.shape)?;
        if self.numel() <= 16 {
            write!(f, " {:?}", self.data)
        } else {
            write!(
                f,
                " [{:.4}, {:.4}, …, {:.4}] ({} elems)",
                self.data[0],
                self.data[1],
                self.data[self.numel() - 1],
                self.numel()
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construct_and_query() {
        let t = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.numel(), 6);
        assert_eq!(t.rank(), 2);
        assert_eq!(t.dim(1), 3);
        assert_eq!(t.as_2d(), (2, 3));
    }

    #[test]
    fn scalar_tensor() {
        let s = Tensor::scalar(7.5);
        assert_eq!(s.rank(), 0);
        assert_eq!(s.item(), 7.5);
        assert_eq!(s.as_2d(), (1, 1));
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(&[2, 3], vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        let r = t.clone().reshaped(&[3, 2]);
        assert_eq!(r.shape(), &[3, 2]);
        assert_eq!(r.data(), t.data());
    }

    #[test]
    #[should_panic]
    fn reshape_wrong_numel_panics() {
        let t = Tensor::zeros(&[2, 3]);
        let _ = t.reshaped(&[4, 2]);
    }

    #[test]
    fn add_assign_and_scale() {
        let mut a = Tensor::from_vec(&[3], vec![1.0, 2.0, 3.0]);
        let b = Tensor::from_vec(&[3], vec![0.5, 0.5, 0.5]);
        a.add_assign(&b);
        a.scale_assign(2.0);
        assert_eq!(a.data(), &[3.0, 5.0, 7.0]);
    }

    #[test]
    fn norms() {
        let t = Tensor::from_vec(&[2], vec![3.0, 4.0]);
        assert!((t.norm() - 5.0).abs() < 1e-6);
        assert_eq!(t.max_abs(), 4.0);
        assert!(!t.has_non_finite());
        let bad = Tensor::from_vec(&[1], vec![f32::NAN]);
        assert!(bad.has_non_finite());
    }

    #[test]
    fn as_2d_on_3d() {
        let t = Tensor::zeros(&[2, 3, 4]);
        assert_eq!(t.as_2d(), (6, 4));
    }
}
