//! The deterministic reduction order shared by every executed
//! collective, plus the tape-side communication hook tensor parallelism
//! threads through the autograd graph.
//!
//! `matgpt_core::parallel` executes ring collectives over real channels;
//! the tape needs the *same* fold order to build bitwise-equivalent
//! sequential reference graphs ([`crate::tape::Tape::ring_sum`],
//! [`crate::tape::Tape::tp_branches`]). Since the tape cannot depend on
//! the executor crate, the pure math lives here at the bottom of the
//! stack: [`ring_chunks`] (the chunk partition a ring rotates through)
//! and [`ring_fold`] (the reduce-scatter's fixed fold order as a
//! sequential function). The executor re-exports both so existing
//! callers keep working.

use std::fmt;
use std::ops::Range;
use std::rc::Rc;

/// Split `len` elements into `n` contiguous ring chunks whose sizes
/// differ by at most one — the chunk partition a ring
/// reduce-scatter/all-gather rotates through. Identical to
/// `matgpt_frontier_sim::collectives::ring_chunks`; duplicated here
/// because the tape sits below the simulator in the crate graph.
pub fn ring_chunks(len: usize, n: usize) -> Vec<Range<usize>> {
    assert!(n > 0, "ring needs at least one rank");
    (0..n).map(|i| (i * len / n)..((i + 1) * len / n)).collect()
}

/// The ring reduce-scatter's fixed fold order as a pure sequential
/// function: chunk `c` is the left fold of the ranks' contributions in
/// ring order starting at rank `(c+1) mod N`. A threaded ring allreduce
/// over the same `bounds` is bit-identical to this by construction
/// (f32 addition is commutative, and the ring fixes the grouping).
pub fn ring_fold(parts: &[Vec<f32>], bounds: &[Range<usize>]) -> Vec<f32> {
    let n = parts.len();
    assert!(n > 0, "ring_fold needs at least one contribution");
    assert_eq!(bounds.len(), n, "one chunk per rank");
    let mut out = vec![0.0f32; parts[0].len()];
    for (c, b) in bounds.iter().enumerate() {
        out[b.clone()].copy_from_slice(&parts[(c + 1) % n][b.clone()]);
        for k in 2..=n {
            let r = (c + k) % n;
            for (dst, src) in out[b.clone()].iter_mut().zip(&parts[r][b.clone()]) {
                *dst += *src;
            }
        }
    }
    out
}

/// The communication surface a tensor-parallel tape op needs: an
/// in-place allreduce-sum across the op's group, with the ring-fold
/// reduction order.
///
/// Implementations are expected to **latch** failures instead of
/// returning them: tape construction and the backward sweep cannot
/// propagate `Result`s mid-graph, so on a collective error the hook
/// records the first failure, becomes a no-op, and the executor checks
/// [`TapeComm::take_error`] after the sweep — a dead peer turns into a
/// typed step failure, never a hang and never a panic inside autograd.
pub trait TapeComm {
    /// Allreduce-sum `buf` in place across the group (ring-fold order).
    /// After a latched error this must be a no-op.
    fn allreduce(&self, buf: &mut [f32]);
    /// Take the first latched failure, if any, clearing the latch. The
    /// error is reported as a human-readable string so this trait does
    /// not need to know the executor's error enum.
    fn take_error(&self) -> Option<String>;
    /// Group size (1 = no-op hook).
    fn group(&self) -> usize;
}

/// Cloneable shared handle to a [`TapeComm`], storable inside tape ops.
#[derive(Clone)]
pub struct CommHook(pub Rc<dyn TapeComm>);

impl CommHook {
    /// Wrap a comm implementation.
    pub fn new(comm: Rc<dyn TapeComm>) -> Self {
        Self(comm)
    }
}

impl fmt::Debug for CommHook {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CommHook(group={})", self.0.group())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_chunks_cover_and_balance() {
        for (len, n) in [(0usize, 1usize), (7, 3), (8, 4), (10, 4), (3, 8)] {
            let chunks = ring_chunks(len, n);
            assert_eq!(chunks.len(), n);
            assert_eq!(chunks[0].start, 0);
            assert_eq!(chunks[n - 1].end, len);
            for w in chunks.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
            let sizes: Vec<usize> = chunks.iter().map(|c| c.len()).collect();
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= 1, "balanced within one: {sizes:?}");
        }
    }

    #[test]
    fn ring_fold_matches_naive_sum_on_integers() {
        let parts: Vec<Vec<f32>> = (0..4)
            .map(|r| (0..10).map(|i| ((r * 10 + i) % 7) as f32).collect())
            .collect();
        let bounds = ring_chunks(10, 4);
        let folded = ring_fold(&parts, &bounds);
        for i in 0..10 {
            let naive: f32 = parts.iter().map(|p| p[i]).sum();
            assert_eq!(folded[i].to_bits(), naive.to_bits());
        }
    }

    #[test]
    fn ring_fold_of_one_part_is_identity() {
        let part = vec![0.123f32, -4.5, 6.789];
        let folded = ring_fold(std::slice::from_ref(&part), &ring_chunks(3, 1));
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&folded), bits(&part));
    }
}
