//! Checkpointing: serialise a [`ParamStore`] to a compact binary format
//! and restore it bit-exactly.
//!
//! Format (little-endian):
//!
//! ```text
//! magic "MGPT" | version u32 | n_params u32 |
//!   per param: name_len u32 | name bytes | rank u32 | dims u64… | f32 data…
//! ```
//!
//! Gradients are not persisted — a checkpoint captures model weights, as
//! training-framework checkpoints do (optimizer state lives with the
//! optimizer).

use crate::param::ParamStore;
use crate::tensor::Tensor;
use bytes::{Buf, BufMut, Bytes, BytesMut};

const MAGIC: &[u8; 4] = b"MGPT";
const VERSION: u32 = 1;

/// Errors from checkpoint decoding.
#[derive(Debug, PartialEq, Eq)]
pub enum CheckpointError {
    /// Missing or wrong magic bytes.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// Buffer ended prematurely or lengths are inconsistent.
    Truncated,
    /// A declared shape does not match its payload.
    ShapeMismatch,
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "not a MatGPT checkpoint (bad magic)"),
            CheckpointError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            CheckpointError::Truncated => write!(f, "checkpoint truncated"),
            CheckpointError::ShapeMismatch => write!(f, "checkpoint shape mismatch"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Serialise all parameters (names, shapes, values) of `store`.
pub fn save(store: &ParamStore) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + store.num_scalars() * 4);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u32_le(store.len() as u32);
    for id in store.ids() {
        let name = store.name(id).as_bytes();
        buf.put_u32_le(name.len() as u32);
        buf.put_slice(name);
        let t = store.value(id);
        buf.put_u32_le(t.rank() as u32);
        for &d in t.shape() {
            buf.put_u64_le(d as u64);
        }
        for &v in t.data() {
            buf.put_f32_le(v);
        }
    }
    buf.freeze()
}

/// Decode a checkpoint into a fresh [`ParamStore`].
pub fn load(bytes: &[u8]) -> Result<ParamStore, CheckpointError> {
    let mut buf = bytes;
    if buf.remaining() < 12 {
        return Err(CheckpointError::Truncated);
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = buf.get_u32_le();
    if version != VERSION {
        return Err(CheckpointError::BadVersion(version));
    }
    let n = buf.get_u32_le() as usize;
    let mut store = ParamStore::new();
    for _ in 0..n {
        if buf.remaining() < 4 {
            return Err(CheckpointError::Truncated);
        }
        let name_len = buf.get_u32_le() as usize;
        if buf.remaining() < name_len {
            return Err(CheckpointError::Truncated);
        }
        let mut name = vec![0u8; name_len];
        buf.copy_to_slice(&mut name);
        let name = String::from_utf8_lossy(&name).into_owned();
        if buf.remaining() < 4 {
            return Err(CheckpointError::Truncated);
        }
        let rank = buf.get_u32_le() as usize;
        if buf.remaining() < rank * 8 {
            return Err(CheckpointError::Truncated);
        }
        let mut shape = Vec::with_capacity(rank);
        for _ in 0..rank {
            shape.push(buf.get_u64_le() as usize);
        }
        let numel: usize = shape.iter().product();
        if buf.remaining() < numel * 4 {
            return Err(CheckpointError::Truncated);
        }
        let mut data = Vec::with_capacity(numel);
        for _ in 0..numel {
            data.push(buf.get_f32_le());
        }
        store.add(name, Tensor::from_vec(&shape, data));
    }
    Ok(store)
}

/// Copy values from `src` into `dst` by matching names and shapes.
/// Returns the number of parameters restored; parameters present in only
/// one store are left untouched.
pub fn restore_into(dst: &mut ParamStore, src: &ParamStore) -> usize {
    let mut restored = 0;
    let src_ids: Vec<_> = src.ids().collect();
    for id in dst.ids().collect::<Vec<_>>() {
        let name = dst.name(id).to_string();
        if let Some(&sid) = src_ids.iter().find(|&&sid| src.name(sid) == name) {
            if src.value(sid).shape() == dst.value(id).shape() {
                let data = src.value(sid).data().to_vec();
                dst.value_mut(id).data_mut().copy_from_slice(&data);
                restored += 1;
            }
        }
    }
    restored
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;

    fn sample_store() -> ParamStore {
        let mut rng = init::rng(5);
        let mut s = ParamStore::new();
        s.add("w1", init::randn(&[3, 4], 1.0, &mut rng));
        s.add("b1", init::randn(&[4], 1.0, &mut rng));
        s.add("scalar", Tensor::scalar(7.25));
        s
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let store = sample_store();
        let bytes = save(&store);
        let loaded = load(&bytes).unwrap();
        assert_eq!(loaded.len(), store.len());
        for (a, b) in store.ids().zip(loaded.ids()) {
            assert_eq!(store.name(a), loaded.name(b));
            assert_eq!(store.value(a).shape(), loaded.value(b).shape());
            assert_eq!(store.value(a).data(), loaded.value(b).data());
        }
    }

    #[test]
    fn bad_magic_and_truncation_detected() {
        let store = sample_store();
        let bytes = save(&store);
        let mut bad = bytes.to_vec();
        bad[0] = b'X';
        assert_eq!(load(&bad).err(), Some(CheckpointError::BadMagic));
        assert_eq!(
            load(&bytes[..bytes.len() - 3]).err(),
            Some(CheckpointError::Truncated)
        );
        assert_eq!(load(&[]).err(), Some(CheckpointError::Truncated));
    }

    #[test]
    fn version_is_checked() {
        let store = sample_store();
        let bytes = save(&store);
        let mut bad = bytes.to_vec();
        bad[4] = 99;
        assert!(matches!(load(&bad), Err(CheckpointError::BadVersion(_))));
    }

    #[test]
    fn restore_into_matches_by_name_and_shape() {
        let src = sample_store();
        let mut dst = ParamStore::new();
        let mut rng = init::rng(9);
        let w = dst.add("w1", init::randn(&[3, 4], 1.0, &mut rng));
        dst.add("extra", Tensor::zeros(&[2])); // not in src
        dst.add("b1", Tensor::zeros(&[5])); // wrong shape
        let restored = restore_into(&mut dst, &src);
        assert_eq!(restored, 1);
        let src_w = src.ids().next().unwrap();
        assert_eq!(dst.value(w).data(), src.value(src_w).data());
    }

    #[test]
    fn checkpoint_size_is_as_expected() {
        let store = sample_store();
        let bytes = save(&store);
        // header 12 + per-param (4 + name + 4 + 8*rank) + 4*scalars
        let expected =
            12 + (4 + 2 + 4 + 16) + (4 + 2 + 4 + 8) + (4 + 6 + 4) + 4 * store.num_scalars();
        assert_eq!(bytes.len(), expected);
    }
}
