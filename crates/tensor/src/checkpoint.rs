//! Checkpointing: serialise a [`ParamStore`] to a compact binary format
//! and restore it bit-exactly.
//!
//! Format v2 (little-endian):
//!
//! ```text
//! magic "MGPT" | version u32 | n_params u32 |
//!   per param: name_len u32 | name bytes | rank u32 | dims u64… | f32 data…
//! n_sections u32 |
//!   per section: name_len u32 | name bytes | byte_len u64 | bytes…
//! ```
//!
//! Version 2 appends a list of named opaque *sections* after the
//! parameter table. Training code uses them to carry everything a
//! bit-identical restart needs beyond the weights: optimizer moments,
//! the LR-schedule step, the data-loader RNG cursor, and recorded loss
//! curves (see `matgpt_core::pretrain::Trainer`). Version 1 checkpoints
//! (no section table) remain readable; [`load`] and [`load_full`]
//! accept both. Decoding is panic-free on arbitrary bytes: truncated or
//! bit-flipped input yields a [`CheckpointError`], never a crash or an
//! attacker-controlled allocation.

use crate::param::ParamStore;
use crate::tensor::Tensor;
use bytes::{Buf, BufMut, Bytes, BytesMut};

const MAGIC: &[u8; 4] = b"MGPT";
const V1: u32 = 1;
const V2: u32 = 2;

/// Errors from checkpoint decoding.
#[derive(Debug, PartialEq, Eq)]
pub enum CheckpointError {
    /// Missing or wrong magic bytes.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// Buffer ended prematurely or lengths are inconsistent.
    Truncated,
    /// A declared shape does not match its payload.
    ShapeMismatch,
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "not a MatGPT checkpoint (bad magic)"),
            CheckpointError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            CheckpointError::Truncated => write!(f, "checkpoint truncated"),
            CheckpointError::ShapeMismatch => write!(f, "checkpoint shape mismatch"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// A fully decoded v2 checkpoint: the weights plus any named sections.
pub struct Checkpoint {
    /// The decoded parameter table.
    pub store: ParamStore,
    /// Named opaque sections, in file order (empty for v1 inputs).
    pub sections: Vec<(String, Vec<u8>)>,
}

impl Checkpoint {
    /// The bytes of the first section named `name`, if present.
    pub fn section(&self, name: &str) -> Option<&[u8]> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, b)| b.as_slice())
    }
}

/// Serialise all parameters (names, shapes, values) of `store` with no
/// extra sections.
pub fn save(store: &ParamStore) -> Bytes {
    save_with_sections(store, &[])
}

/// Serialise `store` plus named opaque `sections` (format v2).
pub fn save_with_sections(store: &ParamStore, sections: &[(String, Vec<u8>)]) -> Bytes {
    let extra: usize = sections.iter().map(|(n, b)| 12 + n.len() + b.len()).sum();
    let mut buf = BytesMut::with_capacity(64 + store.num_scalars() * 4 + extra);
    buf.put_slice(MAGIC);
    buf.put_u32_le(V2);
    buf.put_u32_le(store.len() as u32);
    for id in store.ids() {
        let name = store.name(id).as_bytes();
        buf.put_u32_le(name.len() as u32);
        buf.put_slice(name);
        let t = store.value(id);
        buf.put_u32_le(t.rank() as u32);
        for &d in t.shape() {
            buf.put_u64_le(d as u64);
        }
        for &v in t.data() {
            buf.put_f32_le(v);
        }
    }
    buf.put_u32_le(sections.len() as u32);
    for (name, bytes) in sections {
        buf.put_u32_le(name.len() as u32);
        buf.put_slice(name.as_bytes());
        buf.put_u64_le(bytes.len() as u64);
        buf.put_slice(bytes);
    }
    buf.freeze()
}

/// Read a length-prefixed name, bounds-checked.
fn read_name(buf: &mut &[u8]) -> Result<String, CheckpointError> {
    if buf.remaining() < 4 {
        return Err(CheckpointError::Truncated);
    }
    let name_len = buf.get_u32_le() as usize;
    if buf.remaining() < name_len {
        return Err(CheckpointError::Truncated);
    }
    let mut name = vec![0u8; name_len];
    buf.copy_to_slice(&mut name);
    Ok(String::from_utf8_lossy(&name).into_owned())
}

/// Decode a checkpoint (v1 or v2) into a fresh [`ParamStore`],
/// discarding any sections.
pub fn load(bytes: &[u8]) -> Result<ParamStore, CheckpointError> {
    load_full(bytes).map(|c| c.store)
}

/// Decode a checkpoint (v1 or v2) keeping the section table.
pub fn load_full(bytes: &[u8]) -> Result<Checkpoint, CheckpointError> {
    let mut buf = bytes;
    if buf.remaining() < 12 {
        return Err(CheckpointError::Truncated);
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = buf.get_u32_le();
    if version != V1 && version != V2 {
        return Err(CheckpointError::BadVersion(version));
    }
    let n = buf.get_u32_le() as usize;
    let mut store = ParamStore::new();
    for _ in 0..n {
        let name = read_name(&mut buf)?;
        if buf.remaining() < 4 {
            return Err(CheckpointError::Truncated);
        }
        let rank = buf.get_u32_le() as usize;
        // bound before any shape-sized work: each dim is 8 bytes
        if rank
            .checked_mul(8)
            .is_none_or(|need| buf.remaining() < need)
        {
            return Err(CheckpointError::Truncated);
        }
        let mut shape = Vec::with_capacity(rank);
        for _ in 0..rank {
            shape.push(buf.get_u64_le() as usize);
        }
        // corrupt dims can overflow the element count; use checked math
        // so a bit flip yields an error instead of a panic or huge alloc
        let numel = shape
            .iter()
            .try_fold(1usize, |acc, &d| acc.checked_mul(d))
            .ok_or(CheckpointError::ShapeMismatch)?;
        if numel
            .checked_mul(4)
            .is_none_or(|need| buf.remaining() < need)
        {
            return Err(CheckpointError::Truncated);
        }
        let mut data = Vec::with_capacity(numel);
        for _ in 0..numel {
            data.push(buf.get_f32_le());
        }
        store.add(name, Tensor::from_vec(&shape, data));
    }
    let mut sections = Vec::new();
    if version >= V2 {
        if buf.remaining() < 4 {
            return Err(CheckpointError::Truncated);
        }
        let n_sections = buf.get_u32_le() as usize;
        for _ in 0..n_sections {
            let name = read_name(&mut buf)?;
            if buf.remaining() < 8 {
                return Err(CheckpointError::Truncated);
            }
            let len = buf.get_u64_le();
            if len > buf.remaining() as u64 {
                return Err(CheckpointError::Truncated);
            }
            let mut data = vec![0u8; len as usize];
            buf.copy_to_slice(&mut data);
            sections.push((name, data));
        }
    }
    Ok(Checkpoint { store, sections })
}

/// Copy values from `src` into `dst` by matching names and shapes.
/// Returns the number of parameters restored; parameters present in only
/// one store are left untouched.
pub fn restore_into(dst: &mut ParamStore, src: &ParamStore) -> usize {
    let mut restored = 0;
    let src_ids: Vec<_> = src.ids().collect();
    for id in dst.ids().collect::<Vec<_>>() {
        let name = dst.name(id).to_string();
        if let Some(&sid) = src_ids.iter().find(|&&sid| src.name(sid) == name) {
            if src.value(sid).shape() == dst.value(id).shape() {
                let data = src.value(sid).data().to_vec();
                dst.value_mut(id).data_mut().copy_from_slice(&data);
                restored += 1;
            }
        }
    }
    restored
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;

    fn sample_store() -> ParamStore {
        let mut rng = init::rng(5);
        let mut s = ParamStore::new();
        s.add("w1", init::randn(&[3, 4], 1.0, &mut rng));
        s.add("b1", init::randn(&[4], 1.0, &mut rng));
        s.add("scalar", Tensor::scalar(7.25));
        s
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let store = sample_store();
        let bytes = save(&store);
        let loaded = load(&bytes).unwrap();
        assert_eq!(loaded.len(), store.len());
        for (a, b) in store.ids().zip(loaded.ids()) {
            assert_eq!(store.name(a), loaded.name(b));
            assert_eq!(store.value(a).shape(), loaded.value(b).shape());
            assert_eq!(store.value(a).data(), loaded.value(b).data());
        }
    }

    #[test]
    fn sections_roundtrip() {
        let store = sample_store();
        let sections = vec![
            ("opt_state".to_string(), vec![1u8, 2, 3, 4, 5]),
            ("cursor".to_string(), Vec::new()),
        ];
        let bytes = save_with_sections(&store, &sections);
        let ck = load_full(&bytes).unwrap();
        assert_eq!(ck.sections, sections);
        assert_eq!(ck.section("opt_state"), Some(&[1u8, 2, 3, 4, 5][..]));
        assert_eq!(ck.section("cursor"), Some(&[][..]));
        assert_eq!(ck.section("missing"), None);
        assert_eq!(ck.store.len(), store.len());
    }

    #[test]
    fn v1_checkpoints_stay_readable() {
        // hand-build a v1 image: header + one scalar param, no sections
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u32_le(V1);
        buf.put_u32_le(1);
        buf.put_u32_le(1); // name len
        buf.put_slice(b"s");
        buf.put_u32_le(0); // rank 0
        buf.put_f32_le(2.5);
        let ck = load_full(&buf.freeze()).unwrap();
        assert_eq!(ck.store.len(), 1);
        assert!(ck.sections.is_empty());
        let id = ck.store.ids().next().unwrap();
        assert_eq!(ck.store.value(id).data(), &[2.5]);
    }

    #[test]
    fn bad_magic_and_truncation_detected() {
        let store = sample_store();
        let bytes = save(&store);
        let mut bad = bytes.to_vec();
        bad[0] = b'X';
        assert_eq!(load(&bad).err(), Some(CheckpointError::BadMagic));
        assert_eq!(
            load(&bytes[..bytes.len() - 3]).err(),
            Some(CheckpointError::Truncated)
        );
        assert_eq!(load(&[]).err(), Some(CheckpointError::Truncated));
    }

    #[test]
    fn version_is_checked() {
        let store = sample_store();
        let bytes = save(&store);
        let mut bad = bytes.to_vec();
        bad[4] = 99;
        assert!(matches!(load(&bad), Err(CheckpointError::BadVersion(_))));
    }

    #[test]
    fn restore_into_matches_by_name_and_shape() {
        let src = sample_store();
        let mut dst = ParamStore::new();
        let mut rng = init::rng(9);
        let w = dst.add("w1", init::randn(&[3, 4], 1.0, &mut rng));
        dst.add("extra", Tensor::zeros(&[2])); // not in src
        dst.add("b1", Tensor::zeros(&[5])); // wrong shape
        let restored = restore_into(&mut dst, &src);
        assert_eq!(restored, 1);
        let src_w = src.ids().next().unwrap();
        assert_eq!(dst.value(w).data(), src.value(src_w).data());
    }

    #[test]
    fn checkpoint_size_is_as_expected() {
        let store = sample_store();
        let bytes = save(&store);
        // header 12 + per-param (4 + name + 4 + 8*rank) + 4*scalars
        // + trailing empty section table (4)
        let expected =
            12 + (4 + 2 + 4 + 16) + (4 + 2 + 4 + 8) + (4 + 6 + 4) + 4 * store.num_scalars() + 4;
        assert_eq!(bytes.len(), expected);
    }
}
