//! Deterministic random initialisation helpers.
//!
//! All randomness in the workspace flows through seedable ChaCha8 RNGs so
//! every experiment is reproducible bit-for-bit across runs and platforms.

use crate::tensor::Tensor;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Create a seeded RNG. Thin wrapper so downstream crates do not need to
/// depend on `rand_chacha` directly.
pub fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Standard-normal samples via Box-Muller, scaled by `std`.
pub fn randn<R: Rng>(shape: &[usize], std: f32, rng: &mut R) -> Tensor {
    let numel: usize = shape.iter().product();
    let mut data = Vec::with_capacity(numel);
    while data.len() < numel {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        data.push(r * theta.cos() * std);
        if data.len() < numel {
            data.push(r * theta.sin() * std);
        }
    }
    Tensor::from_vec(shape, data)
}

/// Uniform samples in `[lo, hi)`.
pub fn uniform<R: Rng>(shape: &[usize], lo: f32, hi: f32, rng: &mut R) -> Tensor {
    let numel: usize = shape.iter().product();
    let data = (0..numel).map(|_| rng.gen_range(lo..hi)).collect();
    Tensor::from_vec(shape, data)
}

/// Xavier/Glorot-style initialisation for a `[fan_in, fan_out]` weight.
pub fn xavier<R: Rng>(fan_in: usize, fan_out: usize, rng: &mut R) -> Tensor {
    let std = (2.0 / (fan_in + fan_out) as f32).sqrt();
    randn(&[fan_in, fan_out], std, rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn randn_is_deterministic_per_seed() {
        let a = randn(&[100], 1.0, &mut rng(42));
        let b = randn(&[100], 1.0, &mut rng(42));
        let c = randn(&[100], 1.0, &mut rng(43));
        assert_eq!(a.data(), b.data());
        assert_ne!(a.data(), c.data());
    }

    #[test]
    fn randn_moments_are_plausible() {
        let t = randn(&[10_000], 1.0, &mut rng(7));
        let mean: f32 = t.data().iter().sum::<f32>() / t.numel() as f32;
        let var: f32 = t
            .data()
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f32>()
            / t.numel() as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn uniform_respects_bounds() {
        let t = uniform(&[1000], -0.5, 0.5, &mut rng(1));
        assert!(t.data().iter().all(|&x| (-0.5..0.5).contains(&x)));
    }

    #[test]
    fn xavier_scale_shrinks_with_fan() {
        let small = xavier(4, 4, &mut rng(3));
        let large = xavier(1024, 1024, &mut rng(3));
        let v = |t: &Tensor| t.sq_norm() / t.numel() as f32;
        assert!(v(&large) < v(&small));
    }
}
