//! Inference-only kernels: KV-cached causal attention and rotary
//! embeddings at explicit absolute positions.
//!
//! The training path (tape.rs) lays attention inputs out head-major
//! (`[BH, T, D]`) because the whole sequence is present at once. The
//! inference path instead keeps everything **token-major**:
//!
//! * queries for the new tokens: `[Tn, H*D]` — exactly the projection
//!   output, no head split/merge copies;
//! * key/value caches: `[Ttot, Hkv*D]` — appending one decoded token is
//!   a plain `extend_from_slice`, and windowed truncation is a front
//!   drain.
//!
//! Grouped-query attention falls out of the indexing: query head `h`
//! reads cache head `h / (H / Hkv)`.

use super::softmax::OnlineSoftmax;
use rayon::prelude::*;

/// Apply rotary position embeddings in place to token-major rows
/// `x = [rows.len(), heads*d]`, where row `i` sits at absolute position
/// `positions[i]`. Uses the same half-split convention as the training
/// tape (`theta = pos / base^(2i/d)`), so a cache built here matches a
/// full forward that numbered positions `0..T`.
pub fn rotary_rows(x: &mut [f32], positions: &[usize], heads: usize, d: usize, base: f32) {
    let half = d / 2;
    debug_assert_eq!(x.len(), positions.len() * heads * d, "rotary_rows layout");
    // The frequency divisor depends only on `i` and the angle only on
    // `(pos, i)`, so hoist both out of the head loop — same expressions,
    // evaluated once instead of per head.
    let divisors: Vec<f32> = (0..half)
        .map(|i| base.powf(2.0 * i as f32 / d as f32))
        .collect();
    let mut sincos = vec![(0.0f32, 0.0f32); half];
    for (row, &pos) in x.chunks_mut(heads * d).zip(positions) {
        for (sc, &div) in sincos.iter_mut().zip(&divisors) {
            *sc = (pos as f32 / div).sin_cos();
        }
        for h in 0..heads {
            let head = &mut row[h * d..(h + 1) * d];
            for (i, &(sin, cos)) in sincos.iter().enumerate() {
                let x1 = head[i];
                let x2 = head[i + half];
                head[i] = x1 * cos - x2 * sin;
                head[i + half] = x2 * cos + x1 * sin;
            }
        }
    }
}

/// Dot product with a fixed eight-lane accumulation shape: lanes gather
/// strided partial sums, are combined in a fixed pairwise order, then
/// the `len % 8` tail is added sequentially. The shape depends only on
/// the slice length — never on which kernel or batch the call came from
/// — so contiguous/paged attention and single/batched decode all score
/// identical inputs bitwise identically.
#[inline]
fn dot8(a: &[f32], b: &[f32]) -> f32 {
    let mut lanes = [0.0f32; 8];
    let mut ca = a.chunks_exact(8);
    let mut cb = b.chunks_exact(8);
    for (xa, xb) in (&mut ca).zip(&mut cb) {
        for (l, lane) in lanes.iter_mut().enumerate() {
            *lane = xa[l].mul_add(xb[l], *lane);
        }
    }
    let mut tail = 0.0f32;
    for (xa, xb) in ca.remainder().iter().zip(cb.remainder()) {
        tail = xa.mul_add(*xb, tail);
    }
    ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]))
        + ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]))
        + tail
}

/// KV-cached causal attention over token-major buffers.
///
/// * `q`: `[n_new, heads*d]` rotated queries for the trailing `n_new`
///   tokens of the cached sequence;
/// * `k_cache` / `v_cache`: `[t_total, kv_heads*d]` including the rows
///   for the new tokens (append before calling);
/// * `out`: `[n_new, heads*d]`.
///
/// Query `i` (cache row `t_total - n_new + i`) attends to cache rows
/// `0..=t_total - n_new + i` — causal over the window. Streaming online
/// softmax keeps auxiliary memory O(1) per head, decode cost O(T) per
/// token.
#[allow(clippy::too_many_arguments)]
pub fn cached_attention(
    q: &[f32],
    k_cache: &[f32],
    v_cache: &[f32],
    out: &mut [f32],
    n_new: usize,
    t_total: usize,
    heads: usize,
    kv_heads: usize,
    d: usize,
) {
    debug_assert_eq!(q.len(), n_new * heads * d, "q layout");
    debug_assert_eq!(k_cache.len(), t_total * kv_heads * d, "k cache layout");
    debug_assert_eq!(v_cache.len(), t_total * kv_heads * d, "v cache layout");
    debug_assert!(n_new <= t_total, "more new tokens than cache rows");
    let group = heads / kv_heads;
    let scale = 1.0 / (d as f32).sqrt();
    let kv_stride = kv_heads * d;
    let first = t_total - n_new;
    out.par_chunks_mut(heads * d)
        .enumerate()
        .for_each(|(i, orow)| {
            let qrow = &q[i * heads * d..(i + 1) * heads * d];
            let limit = first + i; // inclusive causal horizon
            for h in 0..heads {
                let hkv = h / group;
                let qh = &qrow[h * d..(h + 1) * d];
                let acc = &mut orow[h * d..(h + 1) * d];
                let mut os = OnlineSoftmax::default();
                for j in 0..=limit {
                    let kj = &k_cache[j * kv_stride + hkv * d..j * kv_stride + (hkv + 1) * d];
                    let s = dot8(qh, kj) * scale;
                    let vj = &v_cache[j * kv_stride + hkv * d..j * kv_stride + (hkv + 1) * d];
                    os.push(s, vj, acc);
                }
                os.finish(acc);
            }
        });
}

/// [`cached_attention`] over a **block-paged** KV layout.
///
/// Instead of one contiguous `[t_total, kv_heads*d]` buffer per layer,
/// keys and values live in fixed-size blocks of `block_rows` tokens
/// each (`k_blocks[b]` / `v_blocks[b]` are `[block_rows, kv_heads*d]`
/// slices, in logical order). Physical row `p` sits in block
/// `p / block_rows` at slot `p % block_rows`; the first `skip` physical
/// rows are outside the attention window (front-dropped) and are never
/// read, so visible row `j` maps to physical row `skip + j`.
///
/// The scan visits exactly the same rows in exactly the same order as
/// [`cached_attention`] and performs the identical float operations
/// (same dot-product accumulation, same [`OnlineSoftmax`] updates), so
/// for bitwise-equal inputs the outputs are **bitwise equal** — the
/// property the paged KV backend's parity guarantee rests on.
#[allow(clippy::too_many_arguments)]
pub fn paged_attention(
    q: &[f32],
    k_blocks: &[&[f32]],
    v_blocks: &[&[f32]],
    block_rows: usize,
    skip: usize,
    out: &mut [f32],
    n_new: usize,
    t_total: usize,
    heads: usize,
    kv_heads: usize,
    d: usize,
) {
    debug_assert_eq!(q.len(), n_new * heads * d, "q layout");
    debug_assert_eq!(k_blocks.len(), v_blocks.len(), "block table layout");
    debug_assert!(
        k_blocks.len() * block_rows >= skip + t_total,
        "block table too short: {} blocks of {} rows for skip {} + {} visible",
        k_blocks.len(),
        block_rows,
        skip,
        t_total
    );
    debug_assert!(n_new <= t_total, "more new tokens than visible rows");
    let group = heads / kv_heads;
    let scale = 1.0 / (d as f32).sqrt();
    let kv_stride = kv_heads * d;
    let first = t_total - n_new;
    out.par_chunks_mut(heads * d)
        .enumerate()
        .for_each(|(i, orow)| {
            let qrow = &q[i * heads * d..(i + 1) * heads * d];
            let limit = first + i; // inclusive causal horizon (visible rows)
            for h in 0..heads {
                let hkv = h / group;
                let qh = &qrow[h * d..(h + 1) * d];
                let acc = &mut orow[h * d..(h + 1) * d];
                let mut os = OnlineSoftmax::default();
                for j in 0..=limit {
                    let p = skip + j;
                    let (b, slot) = (p / block_rows, p % block_rows);
                    let kj =
                        &k_blocks[b][slot * kv_stride + hkv * d..slot * kv_stride + (hkv + 1) * d];
                    let s = dot8(qh, kj) * scale;
                    let vj =
                        &v_blocks[b][slot * kv_stride + hkv * d..slot * kv_stride + (hkv + 1) * d];
                    os.push(s, vj, acc);
                }
                os.finish(acc);
            }
        });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::attention::{causal_attention_fwd, AttentionImpl};

    fn rand_buf(n: usize, seed: u64) -> Vec<f32> {
        (0..n)
            .map(|i| {
                let x = (i as u64)
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(seed.wrapping_mul(0x9E3779B97F4A7C15));
                ((x >> 33) as f32 / u32::MAX as f32 - 0.5) * 2.0
            })
            .collect()
    }

    /// Reshape `[T, H*D]` token-major into `[H, T, D]` head-major.
    fn to_head_major(x: &[f32], t: usize, h: usize, d: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; t * h * d];
        for ti in 0..t {
            for hi in 0..h {
                let src = ti * h * d + hi * d;
                let dst = (hi * t + ti) * d;
                out[dst..dst + d].copy_from_slice(&x[src..src + d]);
            }
        }
        out
    }

    #[test]
    fn cached_matches_full_attention_for_whole_sequence() {
        let (t, h, d) = (9, 4, 6);
        let q = rand_buf(t * h * d, 1);
        let k = rand_buf(t * h * d, 2);
        let v = rand_buf(t * h * d, 3);
        // full pass: every token is "new"
        let mut out = vec![0.0f32; t * h * d];
        cached_attention(&q, &k, &v, &mut out, t, t, h, h, d);
        // reference: head-major training kernel
        let (ref_out, _) = causal_attention_fwd(
            &to_head_major(&q, t, h, d),
            &to_head_major(&k, t, h, d),
            &to_head_major(&v, t, h, d),
            h,
            t,
            d,
            AttentionImpl::Flash,
        );
        let ref_tm = {
            // back to token-major
            let mut buf = vec![0.0f32; t * h * d];
            for hi in 0..h {
                for ti in 0..t {
                    let src = (hi * t + ti) * d;
                    let dst = ti * h * d + hi * d;
                    buf[dst..dst + d].copy_from_slice(&ref_out[src..src + d]);
                }
            }
            buf
        };
        for (a, b) in out.iter().zip(&ref_tm) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn incremental_decode_matches_one_shot() {
        let (t, h, d) = (8, 2, 4);
        let q = rand_buf(t * h * d, 7);
        let k = rand_buf(t * h * d, 8);
        let v = rand_buf(t * h * d, 9);
        let mut full = vec![0.0f32; t * h * d];
        cached_attention(&q, &k, &v, &mut full, t, t, h, h, d);
        // prefill 5, then decode 3 one at a time
        let mut inc = vec![0.0f32; t * h * d];
        cached_attention(
            &q[..5 * h * d],
            &k[..5 * h * d],
            &v[..5 * h * d],
            &mut inc[..5 * h * d],
            5,
            5,
            h,
            h,
            d,
        );
        for step in 5..t {
            let tt = step + 1;
            let (lo, hi) = (step * h * d, (step + 1) * h * d);
            let mut row = vec![0.0f32; h * d];
            cached_attention(
                &q[lo..hi],
                &k[..tt * h * d],
                &v[..tt * h * d],
                &mut row,
                1,
                tt,
                h,
                h,
                d,
            );
            inc[lo..hi].copy_from_slice(&row);
        }
        for (a, b) in full.iter().zip(&inc) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn gqa_head_sharing_equals_explicit_expansion() {
        let (t, h, hkv, d) = (6, 4, 2, 4);
        let q = rand_buf(t * h * d, 11);
        let k = rand_buf(t * hkv * d, 12);
        let v = rand_buf(t * hkv * d, 13);
        let mut gqa = vec![0.0f32; t * h * d];
        cached_attention(&q, &k, &v, &mut gqa, t, t, h, hkv, d);
        // expand kv heads to full width and run MHA
        let group = h / hkv;
        let mut ke = vec![0.0f32; t * h * d];
        let mut ve = vec![0.0f32; t * h * d];
        for ti in 0..t {
            for hi in 0..h {
                let src = ti * hkv * d + (hi / group) * d;
                let dst = ti * h * d + hi * d;
                ke[dst..dst + d].copy_from_slice(&k[src..src + d]);
                ve[dst..dst + d].copy_from_slice(&v[src..src + d]);
            }
        }
        let mut mha = vec![0.0f32; t * h * d];
        cached_attention(&q, &ke, &ve, &mut mha, t, t, h, h, d);
        for (a, b) in gqa.iter().zip(&mha) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn rotary_rows_matches_training_convention() {
        // tape's rotary numbers positions 0..T inside a [BH, T, D] block;
        // rotary_rows with positions = 0..T must produce the same values.
        let (t, h, d) = (5, 3, 8);
        let base = 10_000.0;
        let x = rand_buf(t * h * d, 21);
        let mut tm = x.clone();
        let positions: Vec<usize> = (0..t).collect();
        rotary_rows(&mut tm, &positions, h, d, base);
        // reference via the tape on head-major layout
        let mut tape = crate::tape::Tape::new();
        let hm = to_head_major(&x, t, h, d);
        let v = tape.input(crate::tensor::Tensor::from_vec(&[h, t, d], hm));
        let r = tape.rotary(v, t, d, base);
        let ref_hm = tape.value(r).data().to_vec();
        for ti in 0..t {
            for hi in 0..h {
                for di in 0..d {
                    let a = tm[ti * h * d + hi * d + di];
                    let b = ref_hm[(hi * t + ti) * d + di];
                    assert!((a - b).abs() < 1e-6, "t={ti} h={hi} d={di}: {a} vs {b}");
                }
            }
        }
    }

    /// Scatter a contiguous `[t, kv_dim]` token-major buffer into
    /// fixed-size blocks of `rows` tokens (last block zero-padded).
    fn to_blocks(x: &[f32], t: usize, kv_dim: usize, rows: usize) -> Vec<Vec<f32>> {
        let nb = t.div_ceil(rows);
        let mut blocks = vec![vec![0.0f32; rows * kv_dim]; nb];
        for p in 0..t {
            let (b, slot) = (p / rows, p % rows);
            blocks[b][slot * kv_dim..(slot + 1) * kv_dim]
                .copy_from_slice(&x[p * kv_dim..(p + 1) * kv_dim]);
        }
        blocks
    }

    #[test]
    fn paged_attention_is_bitwise_identical_to_contiguous() {
        // across prefill (n_new == t) and decode (n_new == 1), GQA, and
        // block sizes that do and don't divide the sequence length
        for (t, n_new, h, hkv, d, rows) in [
            (9, 9, 4, 2, 6, 4),
            (13, 1, 4, 4, 4, 3),
            (16, 5, 2, 1, 8, 16),
            (7, 7, 2, 2, 4, 1),
        ] {
            let q = rand_buf(n_new * h * d, 41);
            let k = rand_buf(t * hkv * d, 42);
            let v = rand_buf(t * hkv * d, 43);
            let mut contig = vec![0.0f32; n_new * h * d];
            cached_attention(&q, &k, &v, &mut contig, n_new, t, h, hkv, d);
            let kb = to_blocks(&k, t, hkv * d, rows);
            let vb = to_blocks(&v, t, hkv * d, rows);
            let kr: Vec<&[f32]> = kb.iter().map(|b| b.as_slice()).collect();
            let vr: Vec<&[f32]> = vb.iter().map(|b| b.as_slice()).collect();
            let mut paged = vec![0.0f32; n_new * h * d];
            paged_attention(&q, &kr, &vr, rows, 0, &mut paged, n_new, t, h, hkv, d);
            assert_eq!(contig, paged, "t={t} n={n_new} rows={rows}");
        }
    }

    #[test]
    fn paged_attention_skip_matches_front_dropped_contiguous() {
        // a window that dropped `skip` front rows: the contiguous kernel
        // over the retained suffix must agree bitwise with the paged
        // kernel reading the same rows through skip-offset indexing
        let (t_phys, skip, h, hkv, d, rows) = (11, 3, 2, 1, 4, 4);
        let t_vis = t_phys - skip;
        let q = rand_buf(h * d, 51);
        let k = rand_buf(t_phys * hkv * d, 52);
        let v = rand_buf(t_phys * hkv * d, 53);
        let mut contig = vec![0.0f32; h * d];
        cached_attention(
            &q,
            &k[skip * hkv * d..],
            &v[skip * hkv * d..],
            &mut contig,
            1,
            t_vis,
            h,
            hkv,
            d,
        );
        let kb = to_blocks(&k, t_phys, hkv * d, rows);
        let vb = to_blocks(&v, t_phys, hkv * d, rows);
        let kr: Vec<&[f32]> = kb.iter().map(|b| b.as_slice()).collect();
        let vr: Vec<&[f32]> = vb.iter().map(|b| b.as_slice()).collect();
        let mut paged = vec![0.0f32; h * d];
        paged_attention(&q, &kr, &vr, rows, skip, &mut paged, 1, t_vis, h, hkv, d);
        assert_eq!(contig, paged);
    }

    #[test]
    fn rotary_offset_continues_the_sequence() {
        let (h, d) = (2, 4);
        let base = 10_000.0;
        let x = rand_buf(3 * h * d, 31);
        // rotate all three rows at positions 0,1,2 in one call...
        let mut all = x.clone();
        rotary_rows(&mut all, &[0, 1, 2], h, d, base);
        // ...or rotate the last row alone at offset 2
        let mut last = x[2 * h * d..].to_vec();
        rotary_rows(&mut last, &[2], h, d, base);
        for (a, b) in all[2 * h * d..].iter().zip(&last) {
            assert!((a - b).abs() < 1e-6);
        }
    }
}
