//! Rayon-parallel dense matrix multiplication kernels.
//!
//! The hot loop uses the classic `ikj` ordering: for each output row we
//! stream over `k`, broadcasting `a[i][k]` against row `k` of `b`. This is
//! cache-friendly for row-major data and auto-vectorises well. Rows of the
//! output are distributed over the rayon pool.

use rayon::prelude::*;

/// Minimum number of output elements before we bother spinning up rayon.
/// Below this the sequential loop wins (thread handoff costs more than the
/// multiply itself).
const PAR_THRESHOLD: usize = 64 * 64;

/// Batches up to this many rows take the weight-stationary path in
/// [`matmul`]: `b` is streamed from memory exactly once while all `m`
/// output rows accumulate in cache. The per-row `ikj` loop streams the
/// full `k*n` weight matrix once *per row*, so for the small-`m` batches
/// of speculative verify (`m = k_draft + 1`) it would cost `m` weight
/// passes where one suffices. Kept small so the `m` output rows stay
/// cache-resident.
pub const SMALL_M_MAX: usize = 8;

/// Weight-stationary `c[m,n] = a[m,k] @ b[k,n]` for small `m`.
///
/// Per output element the accumulation is still one `p`-ascending chain
/// of fused multiply-adds with the same `a[i][p] == 0.0` skip as the
/// per-row loop, so the result is bitwise identical to calling the
/// per-row path (or `m` single-row calls) — speculative verify depends
/// on that.
///
/// Eight weight rows are fused per pass: each output element gets eight
/// sequential `mul_add`s (one per `p`, ascending), which cuts the
/// load/store traffic on the cached output rows 8× without reordering
/// any per-element sum — grouping a chain does not change the chain. A
/// pass containing a zero coefficient falls back to the per-`p` loop so
/// the zero-skip stays element-exact.
///
/// Output rows are additionally processed in pairs so each loaded
/// weight vector feeds two independent FMA chains: the per-row loop is
/// load-port bound, while the paired loop amortises the eight `b` loads
/// over sixteen FMAs and lets the two rows' chains issue in parallel.
/// Each row's chain is element-for-element the same as the unpaired
/// loop, so pairing changes nothing bitwise.
fn matmul_small_m(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    c.fill(0.0);
    let mut p = 0;
    while p + 8 <= k {
        let brows: [&[f32]; 8] = std::array::from_fn(|r| &b[(p + r) * n..(p + r + 1) * n]);
        let [b0, b1, b2, b3, b4, b5, b6, b7] = brows;
        let oct_one = |ci: &mut [f32], ar: &[f32]| {
            if ar.iter().all(|&v| v != 0.0) {
                let a: [f32; 8] = ar.try_into().unwrap();
                let w = ci.len();
                let (b0, b1, b2, b3) = (&b0[..w], &b1[..w], &b2[..w], &b3[..w]);
                let (b4, b5, b6, b7) = (&b4[..w], &b5[..w], &b6[..w], &b7[..w]);
                for (j, cv) in ci.iter_mut().enumerate() {
                    let mut x = a[0].mul_add(b0[j], *cv);
                    x = a[1].mul_add(b1[j], x);
                    x = a[2].mul_add(b2[j], x);
                    x = a[3].mul_add(b3[j], x);
                    x = a[4].mul_add(b4[j], x);
                    x = a[5].mul_add(b5[j], x);
                    x = a[6].mul_add(b6[j], x);
                    *cv = a[7].mul_add(b7[j], x);
                }
            } else {
                for (aip, brow) in ar.iter().zip(brows) {
                    if *aip == 0.0 {
                        continue;
                    }
                    for (cv, &bv) in ci.iter_mut().zip(brow.iter()) {
                        *cv = aip.mul_add(bv, *cv);
                    }
                }
            }
        };
        let mut i = 0;
        while i + 4 <= m {
            let rows: [&[f32]; 4] =
                std::array::from_fn(|r| &a[(i + r) * k + p..(i + r) * k + p + 8]);
            if rows.iter().all(|ar| ar.iter().all(|&v| v != 0.0)) {
                let av: [[f32; 8]; 4] = std::array::from_fn(|r| rows[r].try_into().unwrap());
                let (c01, c23) = c[i * n..(i + 4) * n].split_at_mut(2 * n);
                let (c0, c1) = c01.split_at_mut(n);
                let (c2, c3) = c23.split_at_mut(n);
                let w = c0.len();
                let (b0, b1, b2, b3) = (&b0[..w], &b1[..w], &b2[..w], &b3[..w]);
                let (b4, b5, b6, b7) = (&b4[..w], &b5[..w], &b6[..w], &b7[..w]);
                let c1 = &mut c1[..w];
                let c2 = &mut c2[..w];
                let c3 = &mut c3[..w];
                for (j, cv0) in c0.iter_mut().enumerate() {
                    let (v0, v1, v2, v3) = (b0[j], b1[j], b2[j], b3[j]);
                    let (v4, v5, v6, v7) = (b4[j], b5[j], b6[j], b7[j]);
                    let mut x0 = av[0][0].mul_add(v0, *cv0);
                    let mut x1 = av[1][0].mul_add(v0, c1[j]);
                    let mut x2 = av[2][0].mul_add(v0, c2[j]);
                    let mut x3 = av[3][0].mul_add(v0, c3[j]);
                    x0 = av[0][1].mul_add(v1, x0);
                    x1 = av[1][1].mul_add(v1, x1);
                    x2 = av[2][1].mul_add(v1, x2);
                    x3 = av[3][1].mul_add(v1, x3);
                    x0 = av[0][2].mul_add(v2, x0);
                    x1 = av[1][2].mul_add(v2, x1);
                    x2 = av[2][2].mul_add(v2, x2);
                    x3 = av[3][2].mul_add(v2, x3);
                    x0 = av[0][3].mul_add(v3, x0);
                    x1 = av[1][3].mul_add(v3, x1);
                    x2 = av[2][3].mul_add(v3, x2);
                    x3 = av[3][3].mul_add(v3, x3);
                    x0 = av[0][4].mul_add(v4, x0);
                    x1 = av[1][4].mul_add(v4, x1);
                    x2 = av[2][4].mul_add(v4, x2);
                    x3 = av[3][4].mul_add(v4, x3);
                    x0 = av[0][5].mul_add(v5, x0);
                    x1 = av[1][5].mul_add(v5, x1);
                    x2 = av[2][5].mul_add(v5, x2);
                    x3 = av[3][5].mul_add(v5, x3);
                    x0 = av[0][6].mul_add(v6, x0);
                    x1 = av[1][6].mul_add(v6, x1);
                    x2 = av[2][6].mul_add(v6, x2);
                    x3 = av[3][6].mul_add(v6, x3);
                    *cv0 = av[0][7].mul_add(v7, x0);
                    c1[j] = av[1][7].mul_add(v7, x1);
                    c2[j] = av[2][7].mul_add(v7, x2);
                    c3[j] = av[3][7].mul_add(v7, x3);
                }
            } else {
                for (r, ar) in rows.iter().enumerate() {
                    oct_one(&mut c[(i + r) * n..(i + r + 1) * n], ar);
                }
            }
            i += 4;
        }
        while i + 2 <= m {
            let ar = &a[i * k + p..i * k + p + 8];
            let sr = &a[(i + 1) * k + p..(i + 1) * k + p + 8];
            if ar.iter().all(|&v| v != 0.0) && sr.iter().all(|&v| v != 0.0) {
                let av: [f32; 8] = ar.try_into().unwrap();
                let sv: [f32; 8] = sr.try_into().unwrap();
                let (head, rest) = c.split_at_mut((i + 1) * n);
                let ci = &mut head[i * n..];
                let cj = &mut rest[..n];
                let w = ci.len();
                let (b0, b1, b2, b3) = (&b0[..w], &b1[..w], &b2[..w], &b3[..w]);
                let (b4, b5, b6, b7) = (&b4[..w], &b5[..w], &b6[..w], &b7[..w]);
                for (j, (cv, cw)) in ci.iter_mut().zip(cj.iter_mut()).enumerate() {
                    let mut x = av[0].mul_add(b0[j], *cv);
                    let mut y = sv[0].mul_add(b0[j], *cw);
                    x = av[1].mul_add(b1[j], x);
                    y = sv[1].mul_add(b1[j], y);
                    x = av[2].mul_add(b2[j], x);
                    y = sv[2].mul_add(b2[j], y);
                    x = av[3].mul_add(b3[j], x);
                    y = sv[3].mul_add(b3[j], y);
                    x = av[4].mul_add(b4[j], x);
                    y = sv[4].mul_add(b4[j], y);
                    x = av[5].mul_add(b5[j], x);
                    y = sv[5].mul_add(b5[j], y);
                    x = av[6].mul_add(b6[j], x);
                    y = sv[6].mul_add(b6[j], y);
                    *cv = av[7].mul_add(b7[j], x);
                    *cw = sv[7].mul_add(b7[j], y);
                }
            } else {
                oct_one(&mut c[i * n..(i + 1) * n], ar);
                oct_one(&mut c[(i + 1) * n..(i + 2) * n], sr);
            }
            i += 2;
        }
        if i < m {
            oct_one(&mut c[i * n..(i + 1) * n], &a[i * k + p..i * k + p + 8]);
        }
        p += 8;
    }
    while p < k {
        let brow = &b[p * n..(p + 1) * n];
        for i in 0..m {
            let aip = a[i * k + p];
            if aip == 0.0 {
                continue;
            }
            let ci = &mut c[i * n..(i + 1) * n];
            for (cv, &bv) in ci.iter_mut().zip(brow.iter()) {
                *cv = aip.mul_add(bv, *cv);
            }
        }
        p += 1;
    }
}

/// `c[m,n] = a[m,k] @ b[k,n]`.
///
/// Accumulation uses `f32::mul_add` (a true fused multiply-add, one
/// rounding per step): it halves the FP-port pressure of separate
/// mul/add pairs, and because every path here — per-row, rayon per-row,
/// and the small-`m` weight-stationary branch — applies the identical
/// per-element FMA chain, outputs remain bitwise reproducible across
/// batch shapes.
pub fn matmul(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    if m > 1 && m <= SMALL_M_MAX {
        return matmul_small_m(a, b, c, m, k, n);
    }
    let row = |ci: &mut [f32], ai: &[f32]| {
        ci.fill(0.0);
        for (p, &aip) in ai.iter().enumerate() {
            if aip == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            for (cv, &bv) in ci.iter_mut().zip(brow.iter()) {
                *cv = aip.mul_add(bv, *cv);
            }
        }
    };
    if m * n >= PAR_THRESHOLD && m > 1 {
        c.par_chunks_mut(n)
            .zip(a.par_chunks(k))
            .for_each(|(ci, ai)| row(ci, ai));
    } else {
        for (ci, ai) in c.chunks_mut(n).zip(a.chunks(k)) {
            row(ci, ai);
        }
    }
}

/// `c[m,n] += a[m,k] @ b[k,n]` (accumulating variant used in backward).
pub fn matmul_acc(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    let row = |ci: &mut [f32], ai: &[f32]| {
        for (p, &aip) in ai.iter().enumerate() {
            if aip == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            for (cv, &bv) in ci.iter_mut().zip(brow.iter()) {
                *cv += aip * bv;
            }
        }
    };
    if m * n >= PAR_THRESHOLD && m > 1 {
        c.par_chunks_mut(n)
            .zip(a.par_chunks(k))
            .for_each(|(ci, ai)| row(ci, ai));
    } else {
        for (ci, ai) in c.chunks_mut(n).zip(a.chunks(k)) {
            row(ci, ai);
        }
    }
}

/// `c[m,n] += a[m,k] @ b[n,k]^T` — i.e. `a @ transpose(b)` without
/// materialising the transpose. Used for `dA = dC @ B^T`.
pub fn matmul_bt_acc(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(c.len(), m * n);
    let row = |ci: &mut [f32], ai: &[f32]| {
        for (j, cv) in ci.iter_mut().enumerate() {
            let brow = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in ai.iter().zip(brow.iter()) {
                acc += av * bv;
            }
            *cv += acc;
        }
    };
    if m * n >= PAR_THRESHOLD && m > 1 {
        c.par_chunks_mut(n)
            .zip(a.par_chunks(k))
            .for_each(|(ci, ai)| row(ci, ai));
    } else {
        for (ci, ai) in c.chunks_mut(n).zip(a.chunks(k)) {
            row(ci, ai);
        }
    }
}

/// `c[k,n] += a[m,k]^T @ b[m,n]` — i.e. `transpose(a) @ b` without
/// materialising the transpose. Used for `dB = A^T @ dC`.
///
/// Parallelised over the `k` (output-row) dimension: each output row `p`
/// gathers column `p` of `a` against all rows of `b`.
pub fn matmul_at_acc(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), m * n);
    debug_assert_eq!(c.len(), k * n);
    let row = |p: usize, cp: &mut [f32]| {
        for i in 0..m {
            let aip = a[i * k + p];
            if aip == 0.0 {
                continue;
            }
            let brow = &b[i * n..(i + 1) * n];
            for (cv, &bv) in cp.iter_mut().zip(brow.iter()) {
                *cv += aip * bv;
            }
        }
    };
    if k * n >= PAR_THRESHOLD && k > 1 {
        c.par_chunks_mut(n)
            .enumerate()
            .for_each(|(p, cp)| row(p, cp));
    } else {
        for (p, cp) in c.chunks_mut(n).enumerate() {
            row(p, cp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                for p in 0..k {
                    c[i * n + j] += a[i * k + p] * b[p * n + j];
                }
            }
        }
        c
    }

    #[test]
    fn matmul_matches_naive_small() {
        let a = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // 2x3
        let b = vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]; // 3x2
        let mut c = vec![0.0; 4];
        matmul(&a, &b, &mut c, 2, 3, 2);
        assert_eq!(c, naive(&a, &b, 2, 3, 2));
        assert_eq!(c, vec![58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_matches_naive_large_parallel() {
        let (m, k, n) = (70, 33, 71); // crosses PAR_THRESHOLD
        let a: Vec<f32> = (0..m * k)
            .map(|i| ((i * 37 % 19) as f32 - 9.0) * 0.1)
            .collect();
        let b: Vec<f32> = (0..k * n)
            .map(|i| ((i * 53 % 23) as f32 - 11.0) * 0.1)
            .collect();
        let mut c = vec![0.0; m * n];
        matmul(&a, &b, &mut c, m, k, n);
        let r = naive(&a, &b, m, k, n);
        for (x, y) in c.iter().zip(r.iter()) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn transposed_variants_agree_with_explicit_transpose() {
        let (m, k, n) = (5, 4, 6);
        let a: Vec<f32> = (0..m * k).map(|i| i as f32 * 0.3 - 2.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| i as f32 * 0.2 - 1.5).collect();
        // a @ b via bt: need b stored as [n,k] transposed
        let mut bt = vec![0.0; n * k];
        for p in 0..k {
            for j in 0..n {
                bt[j * k + p] = b[p * n + j];
            }
        }
        let mut c1 = vec![0.0; m * n];
        matmul(&a, &b, &mut c1, m, k, n);
        let mut c2 = vec![0.0; m * n];
        matmul_bt_acc(&a, &bt, &mut c2, m, k, n);
        for (x, y) in c1.iter().zip(c2.iter()) {
            assert!((x - y).abs() < 1e-4);
        }
        // at variant: c[k,n] = a^T[k,m] @ d[m,n] where we pass a as [m,k]
        let d: Vec<f32> = (0..m * n).map(|i| (i as f32).sin()).collect();
        let mut at = vec![0.0; k * m];
        for i in 0..m {
            for p in 0..k {
                at[p * m + i] = a[i * k + p];
            }
        }
        let mut c3 = vec![0.0; k * n];
        matmul(&at, &d, &mut c3, k, m, n);
        let mut c4 = vec![0.0; k * n];
        matmul_at_acc(&a, &d, &mut c4, m, k, n);
        for (x, y) in c3.iter().zip(c4.iter()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn small_m_path_bitwise_matches_single_row_calls() {
        // Speculative verify relies on a batched m-row matmul producing
        // exactly the bytes of m single-row calls. Include zeros in `a`
        // so the zero-skip fires on both paths.
        let (k, n) = (37, 113);
        for m in 2..=SMALL_M_MAX {
            let a: Vec<f32> = (0..m * k)
                .map(|i| {
                    if i % 7 == 0 {
                        0.0
                    } else {
                        ((i * 37 % 19) as f32 - 9.0) * 0.1
                    }
                })
                .collect();
            let b: Vec<f32> = (0..k * n)
                .map(|i| ((i * 53 % 23) as f32 - 11.0) * 0.1)
                .collect();
            let mut batched = vec![0.0; m * n];
            matmul(&a, &b, &mut batched, m, k, n);
            let mut per_row = vec![0.0; m * n];
            for i in 0..m {
                matmul(
                    &a[i * k..(i + 1) * k],
                    &b,
                    &mut per_row[i * n..(i + 1) * n],
                    1,
                    k,
                    n,
                );
            }
            assert_eq!(
                batched.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                per_row.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "m={m}"
            );
        }
    }

    #[test]
    fn accumulating_variant_adds() {
        let a = vec![1.0, 0.0, 0.0, 1.0]; // identity 2x2
        let b = vec![5.0, 6.0, 7.0, 8.0];
        let mut c = vec![1.0; 4];
        matmul_acc(&a, &b, &mut c, 2, 2, 2);
        assert_eq!(c, vec![6.0, 7.0, 8.0, 9.0]);
    }
}
