//! Rayon-parallel dense matrix multiplication kernels.
//!
//! The hot loop uses the classic `ikj` ordering: for each output row we
//! stream over `k`, broadcasting `a[i][k]` against row `k` of `b`. This is
//! cache-friendly for row-major data and auto-vectorises well. Rows of the
//! output are distributed over the rayon pool.

use rayon::prelude::*;

/// Minimum number of output elements before we bother spinning up rayon.
/// Below this the sequential loop wins (thread handoff costs more than the
/// multiply itself).
const PAR_THRESHOLD: usize = 64 * 64;

/// `c[m,n] = a[m,k] @ b[k,n]`.
pub fn matmul(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    let row = |ci: &mut [f32], ai: &[f32]| {
        ci.fill(0.0);
        for (p, &aip) in ai.iter().enumerate() {
            if aip == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            for (cv, &bv) in ci.iter_mut().zip(brow.iter()) {
                *cv += aip * bv;
            }
        }
    };
    if m * n >= PAR_THRESHOLD && m > 1 {
        c.par_chunks_mut(n)
            .zip(a.par_chunks(k))
            .for_each(|(ci, ai)| row(ci, ai));
    } else {
        for (ci, ai) in c.chunks_mut(n).zip(a.chunks(k)) {
            row(ci, ai);
        }
    }
}

/// `c[m,n] += a[m,k] @ b[k,n]` (accumulating variant used in backward).
pub fn matmul_acc(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    let row = |ci: &mut [f32], ai: &[f32]| {
        for (p, &aip) in ai.iter().enumerate() {
            if aip == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            for (cv, &bv) in ci.iter_mut().zip(brow.iter()) {
                *cv += aip * bv;
            }
        }
    };
    if m * n >= PAR_THRESHOLD && m > 1 {
        c.par_chunks_mut(n)
            .zip(a.par_chunks(k))
            .for_each(|(ci, ai)| row(ci, ai));
    } else {
        for (ci, ai) in c.chunks_mut(n).zip(a.chunks(k)) {
            row(ci, ai);
        }
    }
}

/// `c[m,n] += a[m,k] @ b[n,k]^T` — i.e. `a @ transpose(b)` without
/// materialising the transpose. Used for `dA = dC @ B^T`.
pub fn matmul_bt_acc(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(c.len(), m * n);
    let row = |ci: &mut [f32], ai: &[f32]| {
        for (j, cv) in ci.iter_mut().enumerate() {
            let brow = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in ai.iter().zip(brow.iter()) {
                acc += av * bv;
            }
            *cv += acc;
        }
    };
    if m * n >= PAR_THRESHOLD && m > 1 {
        c.par_chunks_mut(n)
            .zip(a.par_chunks(k))
            .for_each(|(ci, ai)| row(ci, ai));
    } else {
        for (ci, ai) in c.chunks_mut(n).zip(a.chunks(k)) {
            row(ci, ai);
        }
    }
}

/// `c[k,n] += a[m,k]^T @ b[m,n]` — i.e. `transpose(a) @ b` without
/// materialising the transpose. Used for `dB = A^T @ dC`.
///
/// Parallelised over the `k` (output-row) dimension: each output row `p`
/// gathers column `p` of `a` against all rows of `b`.
pub fn matmul_at_acc(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), m * n);
    debug_assert_eq!(c.len(), k * n);
    let row = |p: usize, cp: &mut [f32]| {
        for i in 0..m {
            let aip = a[i * k + p];
            if aip == 0.0 {
                continue;
            }
            let brow = &b[i * n..(i + 1) * n];
            for (cv, &bv) in cp.iter_mut().zip(brow.iter()) {
                *cv += aip * bv;
            }
        }
    };
    if k * n >= PAR_THRESHOLD && k > 1 {
        c.par_chunks_mut(n)
            .enumerate()
            .for_each(|(p, cp)| row(p, cp));
    } else {
        for (p, cp) in c.chunks_mut(n).enumerate() {
            row(p, cp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                for p in 0..k {
                    c[i * n + j] += a[i * k + p] * b[p * n + j];
                }
            }
        }
        c
    }

    #[test]
    fn matmul_matches_naive_small() {
        let a = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // 2x3
        let b = vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]; // 3x2
        let mut c = vec![0.0; 4];
        matmul(&a, &b, &mut c, 2, 3, 2);
        assert_eq!(c, naive(&a, &b, 2, 3, 2));
        assert_eq!(c, vec![58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_matches_naive_large_parallel() {
        let (m, k, n) = (70, 33, 71); // crosses PAR_THRESHOLD
        let a: Vec<f32> = (0..m * k)
            .map(|i| ((i * 37 % 19) as f32 - 9.0) * 0.1)
            .collect();
        let b: Vec<f32> = (0..k * n)
            .map(|i| ((i * 53 % 23) as f32 - 11.0) * 0.1)
            .collect();
        let mut c = vec![0.0; m * n];
        matmul(&a, &b, &mut c, m, k, n);
        let r = naive(&a, &b, m, k, n);
        for (x, y) in c.iter().zip(r.iter()) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn transposed_variants_agree_with_explicit_transpose() {
        let (m, k, n) = (5, 4, 6);
        let a: Vec<f32> = (0..m * k).map(|i| i as f32 * 0.3 - 2.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| i as f32 * 0.2 - 1.5).collect();
        // a @ b via bt: need b stored as [n,k] transposed
        let mut bt = vec![0.0; n * k];
        for p in 0..k {
            for j in 0..n {
                bt[j * k + p] = b[p * n + j];
            }
        }
        let mut c1 = vec![0.0; m * n];
        matmul(&a, &b, &mut c1, m, k, n);
        let mut c2 = vec![0.0; m * n];
        matmul_bt_acc(&a, &bt, &mut c2, m, k, n);
        for (x, y) in c1.iter().zip(c2.iter()) {
            assert!((x - y).abs() < 1e-4);
        }
        // at variant: c[k,n] = a^T[k,m] @ d[m,n] where we pass a as [m,k]
        let d: Vec<f32> = (0..m * n).map(|i| (i as f32).sin()).collect();
        let mut at = vec![0.0; k * m];
        for i in 0..m {
            for p in 0..k {
                at[p * m + i] = a[i * k + p];
            }
        }
        let mut c3 = vec![0.0; k * n];
        matmul(&at, &d, &mut c3, k, m, n);
        let mut c4 = vec![0.0; k * n];
        matmul_at_acc(&a, &d, &mut c4, m, k, n);
        for (x, y) in c3.iter().zip(c4.iter()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn accumulating_variant_adds() {
        let a = vec![1.0, 0.0, 0.0, 1.0]; // identity 2x2
        let b = vec![5.0, 6.0, 7.0, 8.0];
        let mut c = vec![1.0; 4];
        matmul_acc(&a, &b, &mut c, 2, 2, 2);
        assert_eq!(c, vec![6.0, 7.0, 8.0, 9.0]);
    }
}
