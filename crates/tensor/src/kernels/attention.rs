//! Causal multi-head attention kernels.
//!
//! Two functionally identical implementations, mirroring the contrast the
//! paper measures on MI250X (Figs. 4 and 5):
//!
//! * [`AttentionImpl::Naive`] materialises the full `[T, T]` probability
//!   matrix per head — O(T²) auxiliary memory, saved for the backward pass;
//! * [`AttentionImpl::Flash`] streams keys/values with an online softmax —
//!   O(T) auxiliary memory per row, saving only the per-row log-sum-exp and
//!   recomputing probabilities tile-free in the backward pass.
//!
//! Inputs are laid out `[BH, T, D]` (batch×heads fused, contiguous rows).

use super::softmax::{softmax_rows, OnlineSoftmax};
use rayon::prelude::*;

/// Which attention algorithm to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AttentionImpl {
    /// Quadratic-memory reference implementation.
    Naive,
    /// Linear-memory streaming implementation (flash-attention style).
    Flash,
}

/// Tensors stashed by the forward pass for the backward pass.
#[derive(Clone, Debug)]
pub enum AttnSaved {
    /// Full probabilities `[BH, T, T]` (naive).
    Probs(Vec<f32>),
    /// Per-row log-sum-exp `[BH, T]` (flash).
    Lse(Vec<f32>),
}

impl AttnSaved {
    /// Bytes of auxiliary memory this save set occupies — the quantity the
    /// paper's Fig. 5 tracks (quadratic vs linear in sequence length).
    pub fn aux_bytes(&self) -> usize {
        match self {
            AttnSaved::Probs(p) => p.len() * std::mem::size_of::<f32>(),
            AttnSaved::Lse(l) => l.len() * std::mem::size_of::<f32>(),
        }
    }
}

/// Forward causal attention. Returns `(out, saved)` where `out` is
/// `[BH, T, D]`.
pub fn causal_attention_fwd(
    q: &[f32],
    k: &[f32],
    v: &[f32],
    bh: usize,
    t: usize,
    d: usize,
    imp: AttentionImpl,
) -> (Vec<f32>, AttnSaved) {
    attention_fwd(q, k, v, bh, t, d, imp, true)
}

/// Forward attention with a selectable mask: `causal = true` masks
/// future positions, `false` is full bidirectional attention (BERT-style).
#[allow(clippy::too_many_arguments)]
pub fn attention_fwd(
    q: &[f32],
    k: &[f32],
    v: &[f32],
    bh: usize,
    t: usize,
    d: usize,
    imp: AttentionImpl,
    causal: bool,
) -> (Vec<f32>, AttnSaved) {
    debug_assert_eq!(q.len(), bh * t * d);
    debug_assert_eq!(k.len(), bh * t * d);
    debug_assert_eq!(v.len(), bh * t * d);
    let scale = 1.0 / (d as f32).sqrt();
    match imp {
        AttentionImpl::Naive => {
            let mut out = vec![0.0f32; bh * t * d];
            let mut probs = vec![0.0f32; bh * t * t];
            out.par_chunks_mut(t * d)
                .zip(probs.par_chunks_mut(t * t))
                .enumerate()
                .for_each(|(b, (ob, pb))| {
                    let qb = &q[b * t * d..(b + 1) * t * d];
                    let kb = &k[b * t * d..(b + 1) * t * d];
                    let vb = &v[b * t * d..(b + 1) * t * d];
                    // scores with causal mask
                    for i in 0..t {
                        let qi = &qb[i * d..(i + 1) * d];
                        let hi = if causal { i } else { t - 1 };
                        for j in 0..t {
                            pb[i * t + j] = if j <= hi {
                                let kj = &kb[j * d..(j + 1) * d];
                                qi.iter().zip(kj).map(|(a, b)| a * b).sum::<f32>() * scale
                            } else {
                                f32::NEG_INFINITY
                            };
                        }
                    }
                    softmax_rows(pb, t, t);
                    // out = P @ V
                    for i in 0..t {
                        let oi = &mut ob[i * d..(i + 1) * d];
                        let hi = if causal { i } else { t - 1 };
                        for j in 0..=hi {
                            let p = pb[i * t + j];
                            if p == 0.0 {
                                continue;
                            }
                            let vj = &vb[j * d..(j + 1) * d];
                            for (o, &vv) in oi.iter_mut().zip(vj) {
                                *o += p * vv;
                            }
                        }
                    }
                });
            (out, AttnSaved::Probs(probs))
        }
        AttentionImpl::Flash => {
            let mut out = vec![0.0f32; bh * t * d];
            let mut lse = vec![0.0f32; bh * t];
            out.par_chunks_mut(t * d)
                .zip(lse.par_chunks_mut(t))
                .enumerate()
                .for_each(|(b, (ob, lb))| {
                    let qb = &q[b * t * d..(b + 1) * t * d];
                    let kb = &k[b * t * d..(b + 1) * t * d];
                    let vb = &v[b * t * d..(b + 1) * t * d];
                    for i in 0..t {
                        let qi = &qb[i * d..(i + 1) * d];
                        let mut os = OnlineSoftmax::default();
                        let acc = &mut ob[i * d..(i + 1) * d];
                        let hi = if causal { i } else { t - 1 };
                        for j in 0..=hi {
                            let kj = &kb[j * d..(j + 1) * d];
                            let s = qi.iter().zip(kj).map(|(a, b)| a * b).sum::<f32>() * scale;
                            os.push(s, &vb[j * d..(j + 1) * d], acc);
                        }
                        os.finish(acc);
                        lb[i] = os.logsumexp();
                    }
                });
            (out, AttnSaved::Lse(lse))
        }
    }
}

/// Backward causal attention. Accumulates into `dq`, `dk`, `dv`.
#[allow(clippy::too_many_arguments)]
pub fn causal_attention_bwd(
    q: &[f32],
    k: &[f32],
    v: &[f32],
    out: &[f32],
    dout: &[f32],
    saved: &AttnSaved,
    dq: &mut [f32],
    dk: &mut [f32],
    dv: &mut [f32],
    bh: usize,
    t: usize,
    d: usize,
) {
    attention_bwd(q, k, v, out, dout, saved, dq, dk, dv, bh, t, d, true);
}

/// Backward attention with a selectable mask (see [`attention_fwd`]).
#[allow(clippy::too_many_arguments)]
pub fn attention_bwd(
    q: &[f32],
    k: &[f32],
    v: &[f32],
    out: &[f32],
    dout: &[f32],
    saved: &AttnSaved,
    dq: &mut [f32],
    dk: &mut [f32],
    dv: &mut [f32],
    bh: usize,
    t: usize,
    d: usize,
    causal: bool,
) {
    debug_assert_eq!(dq.len(), bh * t * d);
    let scale = 1.0 / (d as f32).sqrt();
    // Parallel over the fused batch-head dimension: each chunk of dq/dk/dv
    // belongs to exactly one head, so the accumulation is race-free.
    dq.par_chunks_mut(t * d)
        .zip(dk.par_chunks_mut(t * d))
        .zip(dv.par_chunks_mut(t * d))
        .enumerate()
        .for_each(|(b, ((dqb, dkb), dvb))| {
            let qb = &q[b * t * d..(b + 1) * t * d];
            let kb = &k[b * t * d..(b + 1) * t * d];
            let vb = &v[b * t * d..(b + 1) * t * d];
            let ob = &out[b * t * d..(b + 1) * t * d];
            let dob = &dout[b * t * d..(b + 1) * t * d];
            // D_i = dO_i · O_i (both algorithms use it)
            let mut drow = vec![0.0f32; t];
            for i in 0..t {
                drow[i] = dob[i * d..(i + 1) * d]
                    .iter()
                    .zip(&ob[i * d..(i + 1) * d])
                    .map(|(a, b)| a * b)
                    .sum();
            }
            let prob_at = |i: usize, j: usize| -> f32 {
                match saved {
                    AttnSaved::Probs(p) => p[b * t * t + i * t + j],
                    AttnSaved::Lse(l) => {
                        let qi = &qb[i * d..(i + 1) * d];
                        let kj = &kb[j * d..(j + 1) * d];
                        let s = qi.iter().zip(kj).map(|(a, b)| a * b).sum::<f32>() * scale;
                        (s - l[b * t + i]).exp()
                    }
                }
            };
            for i in 0..t {
                let qi = &qb[i * d..(i + 1) * d];
                let doi = &dob[i * d..(i + 1) * d];
                let hi = if causal { i } else { t - 1 };
                for j in 0..=hi {
                    let p = prob_at(i, j);
                    if p == 0.0 {
                        continue;
                    }
                    let kj = &kb[j * d..(j + 1) * d];
                    let vj = &vb[j * d..(j + 1) * d];
                    // dp_ij = dO_i · V_j ; ds_ij = p (dp - D_i)
                    let dp: f32 = doi.iter().zip(vj).map(|(a, b)| a * b).sum();
                    let ds = p * (dp - drow[i]) * scale;
                    let dqi = &mut dqb[i * d..(i + 1) * d];
                    for x in 0..d {
                        dqi[x] += ds * kj[x];
                    }
                    let dkj = &mut dkb[j * d..(j + 1) * d];
                    for x in 0..d {
                        dkj[x] += ds * qi[x];
                    }
                    let dvj = &mut dvb[j * d..(j + 1) * d];
                    for x in 0..d {
                        dvj[x] += p * doi[x];
                    }
                }
            }
        });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rand_buf(n: usize, seed: u64) -> Vec<f32> {
        // cheap deterministic pseudo-random values
        (0..n)
            .map(|i| {
                let x = (i as u64)
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(seed);
                ((x >> 33) as f32 / u32::MAX as f32 - 0.5) * 2.0
            })
            .collect()
    }

    #[test]
    fn flash_matches_naive_forward() {
        let (bh, t, d) = (3, 7, 4);
        let q = rand_buf(bh * t * d, 1);
        let k = rand_buf(bh * t * d, 2);
        let v = rand_buf(bh * t * d, 3);
        let (o1, _) = causal_attention_fwd(&q, &k, &v, bh, t, d, AttentionImpl::Naive);
        let (o2, _) = causal_attention_fwd(&q, &k, &v, bh, t, d, AttentionImpl::Flash);
        for (a, b) in o1.iter().zip(o2.iter()) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn flash_aux_memory_is_linear_naive_quadratic() {
        let (bh, d) = (2, 8);
        let mut naive_prev = 0;
        let mut flash_prev = 0;
        for t in [16usize, 32] {
            let q = rand_buf(bh * t * d, 1);
            let (_, sn) = causal_attention_fwd(&q, &q, &q, bh, t, d, AttentionImpl::Naive);
            let (_, sf) = causal_attention_fwd(&q, &q, &q, bh, t, d, AttentionImpl::Flash);
            if naive_prev > 0 {
                assert_eq!(sn.aux_bytes(), naive_prev * 4); // T doubled -> 4x
                assert_eq!(sf.aux_bytes(), flash_prev * 2); // T doubled -> 2x
            }
            naive_prev = sn.aux_bytes();
            flash_prev = sf.aux_bytes();
        }
    }

    #[test]
    fn causality_first_row_sees_only_itself() {
        let (bh, t, d) = (1, 4, 2);
        let q = rand_buf(bh * t * d, 5);
        let k = rand_buf(bh * t * d, 6);
        let v = rand_buf(bh * t * d, 7);
        let (o, _) = causal_attention_fwd(&q, &k, &v, bh, t, d, AttentionImpl::Naive);
        // row 0 attends only to position 0 -> out[0] == v[0]
        assert!((o[0] - v[0]).abs() < 1e-6);
        assert!((o[1] - v[1]).abs() < 1e-6);
    }

    #[test]
    fn backward_matches_finite_difference_both_impls() {
        let (bh, t, d) = (1, 5, 3);
        let q0 = rand_buf(bh * t * d, 11);
        let k0 = rand_buf(bh * t * d, 12);
        let v0 = rand_buf(bh * t * d, 13);
        let w = rand_buf(bh * t * d, 14); // weights for scalar objective

        for imp in [AttentionImpl::Naive, AttentionImpl::Flash] {
            let f = |q: &[f32], k: &[f32], v: &[f32]| {
                let (o, _) = causal_attention_fwd(q, k, v, bh, t, d, imp);
                o.iter().zip(w.iter()).map(|(a, b)| a * b).sum::<f32>()
            };
            let (o, saved) = causal_attention_fwd(&q0, &k0, &v0, bh, t, d, imp);
            let mut dq = vec![0.0; q0.len()];
            let mut dk = vec![0.0; k0.len()];
            let mut dv = vec![0.0; v0.len()];
            causal_attention_bwd(
                &q0, &k0, &v0, &o, &w, &saved, &mut dq, &mut dk, &mut dv, bh, t, d,
            );
            let h = 1e-2;
            for i in 0..q0.len() {
                let mut qp = q0.clone();
                qp[i] += h;
                let mut qm = q0.clone();
                qm[i] -= h;
                let num = (f(&qp, &k0, &v0) - f(&qm, &k0, &v0)) / (2.0 * h);
                assert!(
                    (num - dq[i]).abs() < 3e-2,
                    "{imp:?} dq[{i}] {num} vs {}",
                    dq[i]
                );
            }
            for i in 0..k0.len() {
                let mut kp = k0.clone();
                kp[i] += h;
                let mut km = k0.clone();
                km[i] -= h;
                let num = (f(&q0, &kp, &v0) - f(&q0, &km, &v0)) / (2.0 * h);
                assert!(
                    (num - dk[i]).abs() < 3e-2,
                    "{imp:?} dk[{i}] {num} vs {}",
                    dk[i]
                );
            }
            for i in 0..v0.len() {
                let mut vp = v0.clone();
                vp[i] += h;
                let mut vm = v0.clone();
                vm[i] -= h;
                let num = (f(&q0, &k0, &vp) - f(&q0, &k0, &vm)) / (2.0 * h);
                assert!(
                    (num - dv[i]).abs() < 3e-2,
                    "{imp:?} dv[{i}] {num} vs {}",
                    dv[i]
                );
            }
        }
    }
}
