//! Row-wise normalisation kernels: LayerNorm (GPT-NeoX) and RMSNorm (LLaMA).
//!
//! Each operates over the last dimension of a `[rows, d]` view. Forward
//! passes return the per-row statistics needed by the backward pass so the
//! tape does not have to recompute them.

/// LayerNorm forward. `y = (x - mean) / sqrt(var + eps) * gamma + beta`.
/// Returns `(mean, rstd)` per row for the backward pass.
pub fn layernorm_fwd(
    x: &[f32],
    gamma: &[f32],
    beta: &[f32],
    y: &mut [f32],
    rows: usize,
    d: usize,
    eps: f32,
) -> (Vec<f32>, Vec<f32>) {
    debug_assert_eq!(x.len(), rows * d);
    debug_assert_eq!(gamma.len(), d);
    debug_assert_eq!(beta.len(), d);
    let mut means = vec![0.0f32; rows];
    let mut rstds = vec![0.0f32; rows];
    for r in 0..rows {
        let xr = &x[r * d..(r + 1) * d];
        let mean = xr.iter().sum::<f32>() / d as f32;
        let var = xr.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
        let rstd = 1.0 / (var + eps).sqrt();
        means[r] = mean;
        rstds[r] = rstd;
        let yr = &mut y[r * d..(r + 1) * d];
        for i in 0..d {
            yr[i] = (xr[i] - mean) * rstd * gamma[i] + beta[i];
        }
    }
    (means, rstds)
}

/// LayerNorm backward. Accumulates into `dx`, `dgamma`, `dbeta`.
#[allow(clippy::too_many_arguments)]
pub fn layernorm_bwd(
    x: &[f32],
    gamma: &[f32],
    dy: &[f32],
    means: &[f32],
    rstds: &[f32],
    dx: &mut [f32],
    dgamma: &mut [f32],
    dbeta: &mut [f32],
    rows: usize,
    d: usize,
) {
    for r in 0..rows {
        let xr = &x[r * d..(r + 1) * d];
        let dyr = &dy[r * d..(r + 1) * d];
        let mean = means[r];
        let rstd = rstds[r];
        // xhat_i = (x_i - mean) * rstd
        let mut sum_dy_g = 0.0f32;
        let mut sum_dy_g_xhat = 0.0f32;
        for i in 0..d {
            let xhat = (xr[i] - mean) * rstd;
            let g = dyr[i] * gamma[i];
            sum_dy_g += g;
            sum_dy_g_xhat += g * xhat;
            dgamma[i] += dyr[i] * xhat;
            dbeta[i] += dyr[i];
        }
        let dxr = &mut dx[r * d..(r + 1) * d];
        let inv_d = 1.0 / d as f32;
        for i in 0..d {
            let xhat = (xr[i] - mean) * rstd;
            let g = dyr[i] * gamma[i];
            dxr[i] += rstd * (g - inv_d * sum_dy_g - xhat * inv_d * sum_dy_g_xhat);
        }
    }
}

/// RMSNorm forward. `y = x / rms(x) * gamma` with
/// `rms = sqrt(mean(x^2) + eps)`. Returns the per-row reciprocal rms.
pub fn rmsnorm_fwd(
    x: &[f32],
    gamma: &[f32],
    y: &mut [f32],
    rows: usize,
    d: usize,
    eps: f32,
) -> Vec<f32> {
    debug_assert_eq!(x.len(), rows * d);
    debug_assert_eq!(gamma.len(), d);
    let mut rrms = vec![0.0f32; rows];
    for r in 0..rows {
        let xr = &x[r * d..(r + 1) * d];
        let ms = xr.iter().map(|v| v * v).sum::<f32>() / d as f32;
        let rr = 1.0 / (ms + eps).sqrt();
        rrms[r] = rr;
        let yr = &mut y[r * d..(r + 1) * d];
        for i in 0..d {
            yr[i] = xr[i] * rr * gamma[i];
        }
    }
    rrms
}

/// RMSNorm backward. Accumulates into `dx` and `dgamma`.
#[allow(clippy::too_many_arguments)]
pub fn rmsnorm_bwd(
    x: &[f32],
    gamma: &[f32],
    dy: &[f32],
    rrms: &[f32],
    dx: &mut [f32],
    dgamma: &mut [f32],
    rows: usize,
    d: usize,
) {
    for r in 0..rows {
        let xr = &x[r * d..(r + 1) * d];
        let dyr = &dy[r * d..(r + 1) * d];
        let rr = rrms[r];
        let mut dot = 0.0f32; // sum_j dy_j * gamma_j * x_j
        for i in 0..d {
            dot += dyr[i] * gamma[i] * xr[i];
            dgamma[i] += dyr[i] * xr[i] * rr;
        }
        let dxr = &mut dx[r * d..(r + 1) * d];
        let c = dot * rr * rr * rr / d as f32;
        for i in 0..d {
            dxr[i] += dyr[i] * gamma[i] * rr - xr[i] * c;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layernorm_normalises_rows() {
        let d = 8;
        let x: Vec<f32> = (0..d).map(|i| i as f32).collect();
        let gamma = vec![1.0; d];
        let beta = vec![0.0; d];
        let mut y = vec![0.0; d];
        layernorm_fwd(&x, &gamma, &beta, &mut y, 1, d, 1e-5);
        let mean: f32 = y.iter().sum::<f32>() / d as f32;
        let var: f32 = y.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn rmsnorm_unit_rms() {
        let d = 16;
        let x: Vec<f32> = (0..d).map(|i| (i as f32 - 4.0) * 0.7).collect();
        let gamma = vec![1.0; d];
        let mut y = vec![0.0; d];
        rmsnorm_fwd(&x, &gamma, &mut y, 1, d, 1e-6);
        let ms: f32 = y.iter().map(|v| v * v).sum::<f32>() / d as f32;
        assert!((ms - 1.0).abs() < 1e-3, "rms {ms}");
    }

    /// Finite-difference gradient check for both norms through a scalar
    /// objective `sum(w ⊙ norm(x))`.
    #[test]
    fn norm_backward_matches_finite_difference() {
        let rows = 2;
        let d = 5;
        let x0: Vec<f32> = (0..rows * d).map(|i| (i as f32 * 0.77).sin()).collect();
        let gamma: Vec<f32> = (0..d).map(|i| 1.0 + 0.1 * i as f32).collect();
        let beta: Vec<f32> = (0..d).map(|i| 0.05 * i as f32).collect();
        let w: Vec<f32> = (0..rows * d)
            .map(|i| ((i * 13 % 7) as f32 - 3.0) * 0.2)
            .collect();

        let f_ln = |x: &[f32]| {
            let mut y = vec![0.0; rows * d];
            layernorm_fwd(x, &gamma, &beta, &mut y, rows, d, 1e-5);
            y.iter().zip(w.iter()).map(|(a, b)| a * b).sum::<f32>()
        };
        let f_rms = |x: &[f32]| {
            let mut y = vec![0.0; rows * d];
            rmsnorm_fwd(x, &gamma, &mut y, rows, d, 1e-5);
            y.iter().zip(w.iter()).map(|(a, b)| a * b).sum::<f32>()
        };

        // analytic
        let mut y = vec![0.0; rows * d];
        let (means, rstds) = layernorm_fwd(&x0, &gamma, &beta, &mut y, rows, d, 1e-5);
        let mut dx = vec![0.0; rows * d];
        let mut dg = vec![0.0; d];
        let mut db = vec![0.0; d];
        layernorm_bwd(
            &x0, &gamma, &w, &means, &rstds, &mut dx, &mut dg, &mut db, rows, d,
        );
        for i in 0..rows * d {
            let mut xp = x0.clone();
            xp[i] += 1e-2;
            let mut xm = x0.clone();
            xm[i] -= 1e-2;
            let num = (f_ln(&xp) - f_ln(&xm)) / 2e-2;
            assert!((num - dx[i]).abs() < 2e-2, "ln dx[{i}]: {num} vs {}", dx[i]);
        }

        let rrms = rmsnorm_fwd(&x0, &gamma, &mut y, rows, d, 1e-5);
        let mut dx = vec![0.0; rows * d];
        let mut dg = vec![0.0; d];
        rmsnorm_bwd(&x0, &gamma, &w, &rrms, &mut dx, &mut dg, rows, d);
        for i in 0..rows * d {
            let mut xp = x0.clone();
            xp[i] += 1e-2;
            let mut xm = x0.clone();
            xm[i] -= 1e-2;
            let num = (f_rms(&xp) - f_rms(&xm)) / 2e-2;
            assert!(
                (num - dx[i]).abs() < 2e-2,
                "rms dx[{i}]: {num} vs {}",
                dx[i]
            );
        }
    }
}
