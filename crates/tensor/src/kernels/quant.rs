//! Post-training int8 weight quantization kernels.
//!
//! Per-output-channel symmetric quantization: a `[k, n]` weight matrix
//! stores one `i8` per element plus one `f32` scale per output channel
//! (column `j`), chosen so the channel's largest-magnitude weight maps
//! to ±127. Symmetric (no zero point) keeps the fused matmul a pure
//! multiply: because the scale is constant along the contraction
//! dimension it factors out of the dot product, so
//! [`matmul_q8`] accumulates `a[i][p] * q[p][j]` in f32 and applies
//! `scale[j]` once per output element — identical arithmetic to
//! dequantize-then-matmul, at a quarter of the weight-memory traffic.
//! That traffic is what bounds single-token decode (a GEMV touches
//! every weight once per token), which is where the int8 path earns its
//! speedup; see `ext_quant` for the measured numbers.
//!
//! Layout and parallel structure mirror [`super::matmul`]: row-major
//! `[k, n]` data, `ikj` loop order, rayon over output rows past the
//! same threshold.

use rayon::prelude::*;

/// Minimum output elements before rayon pays for itself (kept identical
/// to the f32 kernels so precision comparisons measure the datatype,
/// not a different parallel policy).
const PAR_THRESHOLD: usize = 64 * 64;

/// A `[k, n]` weight matrix quantized to int8 with one symmetric scale
/// per output channel (column).
#[derive(Clone, Debug)]
pub struct QuantizedMatrix {
    /// Row-major `[k, n]` int8 codes (same layout as the f32 original).
    data: Vec<i8>,
    /// Per-column dequantization scales, length `n`.
    scales: Vec<f32>,
    /// Contraction dimension (rows).
    k: usize,
    /// Output channels (columns).
    n: usize,
}

impl QuantizedMatrix {
    /// Quantize a row-major `[k, n]` f32 matrix per output channel.
    ///
    /// Each column `j` gets `scale[j] = max_p |w[p][j]| / 127` (1.0 for
    /// an all-zero column) and codes `round(w / scale)` clamped to
    /// ±127, so every representable weight round-trips within
    /// `scale / 2`.
    pub fn quantize(w: &[f32], k: usize, n: usize) -> Self {
        assert_eq!(w.len(), k * n, "weight layout");
        let mut maxabs = vec![0.0f32; n];
        for row in w.chunks(n) {
            for (m, &v) in maxabs.iter_mut().zip(row) {
                *m = m.max(v.abs());
            }
        }
        let scales: Vec<f32> = maxabs
            .iter()
            .map(|&m| if m > 0.0 { m / 127.0 } else { 1.0 })
            .collect();
        let mut data = vec![0i8; k * n];
        for (qrow, row) in data.chunks_mut(n).zip(w.chunks(n)) {
            for ((q, &v), &s) in qrow.iter_mut().zip(row).zip(&scales) {
                *q = (v / s).round().clamp(-127.0, 127.0) as i8;
            }
        }
        Self { data, scales, k, n }
    }

    /// Contraction dimension (rows of the original matrix).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Output channels (columns of the original matrix).
    pub fn n(&self) -> usize {
        self.n
    }

    /// The per-column scales.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// The int8 codes, `[k, n]` row-major.
    pub fn data(&self) -> &[i8] {
        &self.data
    }

    /// Heap bytes held by codes + scales — the number the
    /// `serve_quant_weight_bytes` gauge reports.
    pub fn bytes(&self) -> usize {
        self.data.len() + self.scales.len() * std::mem::size_of::<f32>()
    }

    /// Expand back to f32, `[k, n]` row-major.
    pub fn dequantize(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.k * self.n];
        for (orow, qrow) in out.chunks_mut(self.n).zip(self.data.chunks(self.n)) {
            for ((o, &q), &s) in orow.iter_mut().zip(qrow).zip(&self.scales) {
                *o = q as f32 * s;
            }
        }
        out
    }
}

/// `c[m,n] = a[m,k] @ dequant(w)[k,n]` without materialising the f32
/// weights: int8 codes stream through the `ikj` hot loop and each
/// output element is scaled once at the end.
pub fn matmul_q8(a: &[f32], w: &QuantizedMatrix, c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(w.k, k, "contraction dim");
    assert_eq!(w.n, n, "output dim");
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(c.len(), m * n);
    let data = &w.data;
    let scales = &w.scales;
    if m > 1 && m <= crate::kernels::matmul::SMALL_M_MAX {
        // Weight-stationary small-batch path, mirroring the f32 kernel:
        // codes stream once while all m rows accumulate in cache. Four
        // code rows are fused per pass (sequential adds keep the
        // p-ascending per-element order; a quad with a zero coefficient
        // falls back to the per-p loop so the zero-skip stays exact),
        // scales applied once per element at the end — bitwise identical
        // to m single-row calls.
        c.fill(0.0);
        let mut p = 0;
        while p + 4 <= k {
            let q0 = &data[p * n..(p + 1) * n];
            let q1 = &data[(p + 1) * n..(p + 2) * n];
            let q2 = &data[(p + 2) * n..(p + 3) * n];
            let q3 = &data[(p + 3) * n..(p + 4) * n];
            let quad_one = |ci: &mut [f32], ar: &[f32]| {
                let (a0, a1, a2, a3) = (ar[0], ar[1], ar[2], ar[3]);
                if a0 != 0.0 && a1 != 0.0 && a2 != 0.0 && a3 != 0.0 {
                    for ((((cv, &v0), &v1), &v2), &v3) in
                        ci.iter_mut().zip(q0).zip(q1).zip(q2).zip(q3)
                    {
                        let mut x = a0.mul_add(v0 as f32, *cv);
                        x = a1.mul_add(v1 as f32, x);
                        x = a2.mul_add(v2 as f32, x);
                        *cv = a3.mul_add(v3 as f32, x);
                    }
                } else {
                    for (aip, qrow) in ar.iter().zip([q0, q1, q2, q3]) {
                        if *aip == 0.0 {
                            continue;
                        }
                        for (cv, &qv) in ci.iter_mut().zip(qrow.iter()) {
                            *cv = aip.mul_add(qv as f32, *cv);
                        }
                    }
                }
            };
            // Row pairs share each decoded weight vector across two FMA
            // chains (same trick as the f32 kernel — see
            // `matmul_small_m`); per-row order is untouched.
            let mut i = 0;
            while i + 2 <= m {
                let ar = &a[i * k + p..i * k + p + 4];
                let as_ = &a[(i + 1) * k + p..(i + 1) * k + p + 4];
                let (a0, a1, a2, a3) = (ar[0], ar[1], ar[2], ar[3]);
                let (s0, s1, s2, s3) = (as_[0], as_[1], as_[2], as_[3]);
                let all_nz = a0 != 0.0
                    && a1 != 0.0
                    && a2 != 0.0
                    && a3 != 0.0
                    && s0 != 0.0
                    && s1 != 0.0
                    && s2 != 0.0
                    && s3 != 0.0;
                if all_nz {
                    let (head, rest) = c.split_at_mut((i + 1) * n);
                    let ci = &mut head[i * n..];
                    let cj = &mut rest[..n];
                    for (((((cv, cw), &v0), &v1), &v2), &v3) in ci
                        .iter_mut()
                        .zip(cj.iter_mut())
                        .zip(q0)
                        .zip(q1)
                        .zip(q2)
                        .zip(q3)
                    {
                        let (f0, f1, f2, f3) = (v0 as f32, v1 as f32, v2 as f32, v3 as f32);
                        let mut x = a0.mul_add(f0, *cv);
                        let mut y = s0.mul_add(f0, *cw);
                        x = a1.mul_add(f1, x);
                        y = s1.mul_add(f1, y);
                        x = a2.mul_add(f2, x);
                        y = s2.mul_add(f2, y);
                        *cv = a3.mul_add(f3, x);
                        *cw = s3.mul_add(f3, y);
                    }
                } else {
                    quad_one(&mut c[i * n..(i + 1) * n], ar);
                    quad_one(&mut c[(i + 1) * n..(i + 2) * n], as_);
                }
                i += 2;
            }
            if i < m {
                quad_one(&mut c[i * n..(i + 1) * n], &a[i * k + p..i * k + p + 4]);
            }
            p += 4;
        }
        while p < k {
            let qrow = &data[p * n..(p + 1) * n];
            for i in 0..m {
                let aip = a[i * k + p];
                if aip == 0.0 {
                    continue;
                }
                let ci = &mut c[i * n..(i + 1) * n];
                for (cv, &qv) in ci.iter_mut().zip(qrow.iter()) {
                    *cv = aip.mul_add(qv as f32, *cv);
                }
            }
            p += 1;
        }
        for ci in c.chunks_mut(n) {
            for (cv, &s) in ci.iter_mut().zip(scales.iter()) {
                *cv *= s;
            }
        }
        return;
    }
    // Single-row (and rayon per-row) path: the same four-rows-per-pass
    // fusion; sequential adds keep each output element's sum p-ascending,
    // so results stay bitwise identical to the plain ikj loop.
    let row = |ci: &mut [f32], ai: &[f32]| {
        ci.fill(0.0);
        let mut p = 0;
        while p + 4 <= ai.len() {
            let (a0, a1, a2, a3) = (ai[p], ai[p + 1], ai[p + 2], ai[p + 3]);
            let q0 = &data[p * n..(p + 1) * n];
            let q1 = &data[(p + 1) * n..(p + 2) * n];
            let q2 = &data[(p + 2) * n..(p + 3) * n];
            let q3 = &data[(p + 3) * n..(p + 4) * n];
            if a0 != 0.0 && a1 != 0.0 && a2 != 0.0 && a3 != 0.0 {
                for ((((cv, &v0), &v1), &v2), &v3) in ci.iter_mut().zip(q0).zip(q1).zip(q2).zip(q3)
                {
                    let mut x = a0.mul_add(v0 as f32, *cv);
                    x = a1.mul_add(v1 as f32, x);
                    x = a2.mul_add(v2 as f32, x);
                    *cv = a3.mul_add(v3 as f32, x);
                }
            } else {
                for (aip, qrow) in ai[p..p + 4].iter().zip([q0, q1, q2, q3]) {
                    if *aip == 0.0 {
                        continue;
                    }
                    for (cv, &qv) in ci.iter_mut().zip(qrow.iter()) {
                        *cv = aip.mul_add(qv as f32, *cv);
                    }
                }
            }
            p += 4;
        }
        for (&aip, qrow) in ai[p..].iter().zip(data[p * n..].chunks_exact(n)) {
            if aip == 0.0 {
                continue;
            }
            for (cv, &qv) in ci.iter_mut().zip(qrow.iter()) {
                *cv = aip.mul_add(qv as f32, *cv);
            }
        }
        for (cv, &s) in ci.iter_mut().zip(scales.iter()) {
            *cv *= s;
        }
    };
    if m * n >= PAR_THRESHOLD && m > 1 {
        c.par_chunks_mut(n)
            .zip(a.par_chunks(k))
            .for_each(|(ci, ai)| row(ci, ai));
    } else {
        for (ci, ai) in c.chunks_mut(n).zip(a.chunks(k)) {
            row(ci, ai);
        }
    }
}

/// Int8 codes of a [`QuantizedMatrix`] repacked for the integer-dot
/// draft kernel [`matmul_q8a8`].
///
/// Layout: columns are grouped into blocks of 16 and the contraction
/// dimension into groups of 4, stored as `[n/16 blocks][k/4 groups][64
/// bytes]` — one AVX-512 VNNI `vpdpbusd` consumes exactly one 64-byte
/// cell (16 lanes × 4 codes), and walking a column block is a single
/// contiguous stream. Both dimensions are zero-padded (a zero code
/// contributes nothing to any dot product), so odd shapes need no tail
/// logic in the hot loop.
///
/// `colsum` caches each column's code sum: the activation row is
/// quantized to *unsigned* codes `qa = round(a/s) + 128` (the shift
/// makes it a valid `vpdpbusd` operand), and
/// `Σ (qa-128)·w = Σ qa·w − 128·colsum` undoes the shift exactly in
/// integer arithmetic.
#[derive(Clone, Debug)]
pub struct PackedQ8Matrix {
    /// `[n_pad/16, k_pad/4, 64]` interleaved codes (see above).
    packed: Vec<i8>,
    /// Per-column sum of codes, length `n` (shift correction).
    colsum: Vec<i32>,
    /// Per-column dequantization scales, length `n`.
    scales: Vec<f32>,
    /// Contraction dimension of the original matrix.
    k: usize,
    /// Output channels of the original matrix.
    n: usize,
}

impl PackedQ8Matrix {
    /// Repack a quantized matrix's codes into the blocked layout.
    pub fn pack(q: &QuantizedMatrix) -> Self {
        let (k, n) = (q.k, q.n);
        let kg = k.div_ceil(4);
        let nb = n.div_ceil(16);
        let mut packed = vec![0i8; nb * kg * 64];
        for (p, row) in q.data.chunks(n).enumerate() {
            let (g, r) = (p / 4, p % 4);
            for (j, &code) in row.iter().enumerate() {
                let (b, l) = (j / 16, j % 16);
                packed[(b * kg + g) * 64 + l * 4 + r] = code;
            }
        }
        let mut colsum = vec![0i32; n];
        for row in q.data.chunks(n) {
            for (s, &code) in colsum.iter_mut().zip(row) {
                *s += code as i32;
            }
        }
        Self {
            packed,
            colsum,
            scales: q.scales.clone(),
            k,
            n,
        }
    }

    /// Heap bytes held by the packed codes plus per-column metadata.
    pub fn bytes(&self) -> usize {
        self.packed.len() + self.colsum.len() * 4 + self.scales.len() * 4
    }
}

/// Quantize one activation row to shifted-unsigned int8 codes
/// (`round(a/s) + 128`, zero maps to 128), padded to `kg * 4` with the
/// zero point. Returns the row scale.
fn quantize_row_u8(a: &[f32], qa: &mut Vec<u8>, kg: usize) -> f32 {
    let maxabs = a.iter().fold(0.0f32, |m, v| m.max(v.abs()));
    let s = if maxabs > 0.0 { maxabs / 127.0 } else { 1.0 };
    qa.clear();
    qa.extend(
        a.iter()
            .map(|&v| (((v / s).round() as i32 + 128).clamp(0, 255)) as u8),
    );
    qa.resize(kg * 4, 128);
    s
}

/// Integer-dot core: `acc[j] += Σ_g qa4[g] · cell[g][j]` over one
/// column block, exact i32 arithmetic. Scalar mirror of the VNNI path —
/// integer sums are associative, so both orders produce identical
/// accumulators and the kernel is deterministic regardless of dispatch.
fn dot_block_scalar(qa: &[u8], cells: &[i8], acc: &mut [i32; 16], kg: usize) {
    for g in 0..kg {
        let cell = &cells[g * 64..(g + 1) * 64];
        let q = &qa[g * 4..(g + 1) * 4];
        for (l, a) in acc.iter_mut().enumerate() {
            let w = &cell[l * 4..(l + 1) * 4];
            *a += q[0] as i32 * w[0] as i32
                + q[1] as i32 * w[1] as i32
                + q[2] as i32 * w[2] as i32
                + q[3] as i32 * w[3] as i32;
        }
    }
}

/// VNNI integer-dot core: one `vpdpbusd` per 64-byte cell (64
/// multiply-accumulates per instruction). Produces exactly the i32
/// accumulators of [`dot_block_scalar`].
///
/// # Safety
/// Caller must have verified `avx512f` + `avx512bw` + `avx512vnni`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512bw,avx512vnni")]
unsafe fn dot_block_vnni(qa: &[u8], cells: &[i8], acc: &mut [i32; 16], kg: usize) {
    use std::arch::x86_64::*;
    unsafe {
        let mut accv = _mm512_loadu_si512(acc.as_ptr() as *const __m512i);
        let mut cell = cells.as_ptr();
        for g in 0..kg {
            let q4 = i32::from_le_bytes([qa[g * 4], qa[g * 4 + 1], qa[g * 4 + 2], qa[g * 4 + 3]]);
            let w = _mm512_loadu_si512(cell as *const __m512i);
            accv = _mm512_dpbusd_epi32(accv, _mm512_set1_epi32(q4), w);
            cell = cell.add(64);
        }
        _mm512_storeu_si512(acc.as_mut_ptr() as *mut __m512i, accv);
    }
}

/// `c[m,n] = a[m,k] @ dequant(w)[k,n]` with both operands in the
/// integer domain: the activation row is quantized to int8 on the fly
/// (per-row symmetric scale), the dot products accumulate exactly in
/// i32, and each output gets one float scaling
/// `(Σ − 128·colsum) · s_a · s_w` at the end.
///
/// Unlike [`matmul_q8`] (f32 activations, used by the serving `int8`
/// precision), this trades ~1% extra activation rounding error for an
/// ~8× cheaper inner loop — the right trade for a speculative *draft*,
/// whose mispredictions cost acceptance rate, never correctness.
/// Deterministic: integer accumulation is exact, so the result is
/// independent of vectorization and batch shape by construction.
pub fn matmul_q8a8(a: &[f32], w: &PackedQ8Matrix, c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(w.k, k, "contraction dim");
    assert_eq!(w.n, n, "output dim");
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(c.len(), m * n);
    let kg = k.div_ceil(4);
    let nb = n.div_ceil(16);
    #[cfg(target_arch = "x86_64")]
    let use_vnni = is_x86_feature_detected!("avx512f")
        && is_x86_feature_detected!("avx512bw")
        && is_x86_feature_detected!("avx512vnni");
    let mut qa: Vec<u8> = Vec::with_capacity(kg * 4);
    for (ci, ai) in c.chunks_mut(n).zip(a.chunks(k)) {
        let s_a = quantize_row_u8(ai, &mut qa, kg);
        for b in 0..nb {
            let cells = &w.packed[b * kg * 64..(b + 1) * kg * 64];
            let mut acc = [0i32; 16];
            #[cfg(target_arch = "x86_64")]
            if use_vnni {
                unsafe { dot_block_vnni(&qa, cells, &mut acc, kg) }
            } else {
                dot_block_scalar(&qa, cells, &mut acc, kg);
            }
            #[cfg(not(target_arch = "x86_64"))]
            dot_block_scalar(&qa, cells, &mut acc, kg);
            let j0 = b * 16;
            let jend = n.min(j0 + 16);
            for j in j0..jend {
                let sum = acc[j - j0] - 128 * w.colsum[j];
                ci[j] = (sum as f32) * (s_a * w.scales[j]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::matmul::matmul;

    fn toy_weight(k: usize, n: usize, seed: u32) -> Vec<f32> {
        (0..k * n)
            .map(|i| {
                let x = ((i as u32).wrapping_mul(2654435761).wrapping_add(seed) >> 8) as f32;
                (x / (1u32 << 24) as f32 - 0.5) * 0.4
            })
            .collect()
    }

    #[test]
    fn round_trip_error_bounded_by_half_scale() {
        let (k, n) = (17, 9);
        let w = toy_weight(k, n, 1);
        let q = QuantizedMatrix::quantize(&w, k, n);
        let dq = q.dequantize();
        for (p, (orig, deq)) in w.iter().zip(&dq).enumerate() {
            let s = q.scales()[p % n];
            assert!(
                (orig - deq).abs() <= s * 0.5 + 1e-7,
                "elem {p}: {orig} vs {deq} (scale {s})"
            );
        }
    }

    #[test]
    fn zero_column_round_trips_exactly() {
        let (k, n) = (4, 3);
        let mut w = toy_weight(k, n, 7);
        for row in 0..k {
            w[row * n + 1] = 0.0;
        }
        let q = QuantizedMatrix::quantize(&w, k, n);
        let dq = q.dequantize();
        for row in 0..k {
            assert_eq!(dq[row * n + 1], 0.0);
        }
    }

    #[test]
    fn extreme_weight_maps_to_127() {
        let w = vec![0.5, -1.0, 0.25, 0.5];
        let q = QuantizedMatrix::quantize(&w, 2, 2);
        // each column's largest-magnitude entry codes to ±127 exactly
        assert_eq!(q.data[0], 127);
        assert_eq!(q.data[1], -127);
        let dq = q.dequantize();
        assert!((dq[0] - 0.5).abs() < 1e-6, "channel max is exact");
        assert!((dq[1] + 1.0).abs() < 1e-6);
    }

    #[test]
    fn fused_matmul_matches_dequant_then_matmul() {
        for (m, k, n) in [(1, 33, 40), (5, 16, 12), (70, 33, 71)] {
            let w = toy_weight(k, n, 3);
            let q = QuantizedMatrix::quantize(&w, k, n);
            let a: Vec<f32> = (0..m * k)
                .map(|i| ((i * 37 % 19) as f32 - 9.0) * 0.1)
                .collect();
            let mut fused = vec![0.0f32; m * n];
            matmul_q8(&a, &q, &mut fused, m, k, n);
            let dq = q.dequantize();
            let mut reference = vec![0.0f32; m * n];
            matmul(&a, &dq, &mut reference, m, k, n);
            for (x, y) in fused.iter().zip(&reference) {
                assert!((x - y).abs() < 1e-4, "({m},{k},{n}): {x} vs {y}");
            }
        }
    }

    #[test]
    fn small_m_path_bitwise_matches_single_row_calls() {
        // The speculative draft's batched catch-up forward must produce
        // exactly the bytes of single-row decode steps.
        let (k, n) = (29, 41);
        let w = toy_weight(k, n, 5);
        let q = QuantizedMatrix::quantize(&w, k, n);
        for m in [2usize, 4, 8] {
            let a: Vec<f32> = (0..m * k)
                .map(|i| {
                    if i % 5 == 0 {
                        0.0
                    } else {
                        ((i * 37 % 19) as f32 - 9.0) * 0.1
                    }
                })
                .collect();
            let mut batched = vec![0.0f32; m * n];
            matmul_q8(&a, &q, &mut batched, m, k, n);
            let mut per_row = vec![0.0f32; m * n];
            for i in 0..m {
                matmul_q8(
                    &a[i * k..(i + 1) * k],
                    &q,
                    &mut per_row[i * n..(i + 1) * n],
                    1,
                    k,
                    n,
                );
            }
            assert_eq!(
                batched.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                per_row.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "m={m}"
            );
        }
    }

    /// The exact integer-domain reference: same formula as
    /// `matmul_q8a8`, computed naively from the unpacked codes. Any
    /// divergence from the kernel (scalar or VNNI) is a bug, not noise.
    fn naive_q8a8(a: &[f32], q: &QuantizedMatrix, m: usize, k: usize, n: usize) -> Vec<f32> {
        let kg = k.div_ceil(4);
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            let mut qa = Vec::new();
            let s_a = quantize_row_u8(&a[i * k..(i + 1) * k], &mut qa, kg);
            for j in 0..n {
                let mut sum = 0i64;
                let mut colsum = 0i64;
                for (p, &code) in qa.iter().enumerate().take(k) {
                    let w = q.data()[p * n + j] as i64;
                    sum += code as i64 * w;
                    colsum += w;
                }
                c[i * n + j] = ((sum - 128 * colsum) as i32 as f32) * (s_a * q.scales()[j]);
            }
        }
        c
    }

    #[test]
    fn q8a8_matches_integer_reference_exactly() {
        // odd shapes exercise both the k%4 and n%16 padding
        for (m, k, n) in [(1, 29, 41), (3, 64, 16), (2, 7, 3), (5, 33, 50)] {
            let w = toy_weight(k, n, 9);
            let q = QuantizedMatrix::quantize(&w, k, n);
            let packed = PackedQ8Matrix::pack(&q);
            let a: Vec<f32> = (0..m * k)
                .map(|i| ((i * 41 % 23) as f32 - 11.0) * 0.07)
                .collect();
            let mut c = vec![0.0f32; m * n];
            matmul_q8a8(&a, &packed, &mut c, m, k, n);
            let r = naive_q8a8(&a, &q, m, k, n);
            assert_eq!(
                c.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                r.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "({m},{k},{n})"
            );
        }
    }

    #[test]
    fn q8a8_tracks_f32_matmul_closely() {
        let (m, k, n) = (2, 64, 48);
        let w = toy_weight(k, n, 13);
        let q = QuantizedMatrix::quantize(&w, k, n);
        let packed = PackedQ8Matrix::pack(&q);
        let a: Vec<f32> = (0..m * k)
            .map(|i| ((i * 37 % 19) as f32 - 9.0) * 0.1)
            .collect();
        let mut got = vec![0.0f32; m * n];
        matmul_q8a8(&a, &packed, &mut got, m, k, n);
        let mut reference = vec![0.0f32; m * n];
        matmul(&a, &w, &mut reference, m, k, n);
        let scale: f32 = reference.iter().fold(0.0, |s, v| s.max(v.abs()));
        for (x, y) in got.iter().zip(&reference) {
            assert!(
                (x - y).abs() < scale * 0.05,
                "activation+weight rounding blew past 5%: {x} vs {y}"
            );
        }
    }

    #[test]
    fn packed_bytes_stay_near_code_footprint() {
        let (k, n) = (64, 32);
        let q = QuantizedMatrix::quantize(&toy_weight(k, n, 3), k, n);
        let p = PackedQ8Matrix::pack(&q);
        // padded codes + i32 colsum + f32 scales
        assert_eq!(p.bytes(), k * n + n * 4 + n * 4);
    }

    #[test]
    fn bytes_are_a_quarter_plus_scales() {
        let (k, n) = (64, 32);
        let w = toy_weight(k, n, 11);
        let q = QuantizedMatrix::quantize(&w, k, n);
        assert_eq!(q.bytes(), k * n + n * 4);
        assert!(q.bytes() * 3 < k * n * 4, "well under the f32 footprint");
    }
}
