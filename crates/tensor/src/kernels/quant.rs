//! Post-training int8 weight quantization kernels.
//!
//! Per-output-channel symmetric quantization: a `[k, n]` weight matrix
//! stores one `i8` per element plus one `f32` scale per output channel
//! (column `j`), chosen so the channel's largest-magnitude weight maps
//! to ±127. Symmetric (no zero point) keeps the fused matmul a pure
//! multiply: because the scale is constant along the contraction
//! dimension it factors out of the dot product, so
//! [`matmul_q8`] accumulates `a[i][p] * q[p][j]` in f32 and applies
//! `scale[j]` once per output element — identical arithmetic to
//! dequantize-then-matmul, at a quarter of the weight-memory traffic.
//! That traffic is what bounds single-token decode (a GEMV touches
//! every weight once per token), which is where the int8 path earns its
//! speedup; see `ext_quant` for the measured numbers.
//!
//! Layout and parallel structure mirror [`super::matmul`]: row-major
//! `[k, n]` data, `ikj` loop order, rayon over output rows past the
//! same threshold.

use rayon::prelude::*;

/// Minimum output elements before rayon pays for itself (kept identical
/// to the f32 kernels so precision comparisons measure the datatype,
/// not a different parallel policy).
const PAR_THRESHOLD: usize = 64 * 64;

/// A `[k, n]` weight matrix quantized to int8 with one symmetric scale
/// per output channel (column).
#[derive(Clone, Debug)]
pub struct QuantizedMatrix {
    /// Row-major `[k, n]` int8 codes (same layout as the f32 original).
    data: Vec<i8>,
    /// Per-column dequantization scales, length `n`.
    scales: Vec<f32>,
    /// Contraction dimension (rows).
    k: usize,
    /// Output channels (columns).
    n: usize,
}

impl QuantizedMatrix {
    /// Quantize a row-major `[k, n]` f32 matrix per output channel.
    ///
    /// Each column `j` gets `scale[j] = max_p |w[p][j]| / 127` (1.0 for
    /// an all-zero column) and codes `round(w / scale)` clamped to
    /// ±127, so every representable weight round-trips within
    /// `scale / 2`.
    pub fn quantize(w: &[f32], k: usize, n: usize) -> Self {
        assert_eq!(w.len(), k * n, "weight layout");
        let mut maxabs = vec![0.0f32; n];
        for row in w.chunks(n) {
            for (m, &v) in maxabs.iter_mut().zip(row) {
                *m = m.max(v.abs());
            }
        }
        let scales: Vec<f32> = maxabs
            .iter()
            .map(|&m| if m > 0.0 { m / 127.0 } else { 1.0 })
            .collect();
        let mut data = vec![0i8; k * n];
        for (qrow, row) in data.chunks_mut(n).zip(w.chunks(n)) {
            for ((q, &v), &s) in qrow.iter_mut().zip(row).zip(&scales) {
                *q = (v / s).round().clamp(-127.0, 127.0) as i8;
            }
        }
        Self { data, scales, k, n }
    }

    /// Contraction dimension (rows of the original matrix).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Output channels (columns of the original matrix).
    pub fn n(&self) -> usize {
        self.n
    }

    /// The per-column scales.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// The int8 codes, `[k, n]` row-major.
    pub fn data(&self) -> &[i8] {
        &self.data
    }

    /// Heap bytes held by codes + scales — the number the
    /// `serve_quant_weight_bytes` gauge reports.
    pub fn bytes(&self) -> usize {
        self.data.len() + self.scales.len() * std::mem::size_of::<f32>()
    }

    /// Expand back to f32, `[k, n]` row-major.
    pub fn dequantize(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.k * self.n];
        for (orow, qrow) in out.chunks_mut(self.n).zip(self.data.chunks(self.n)) {
            for ((o, &q), &s) in orow.iter_mut().zip(qrow).zip(&self.scales) {
                *o = q as f32 * s;
            }
        }
        out
    }
}

/// `c[m,n] = a[m,k] @ dequant(w)[k,n]` without materialising the f32
/// weights: int8 codes stream through the `ikj` hot loop and each
/// output element is scaled once at the end.
pub fn matmul_q8(a: &[f32], w: &QuantizedMatrix, c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(w.k, k, "contraction dim");
    assert_eq!(w.n, n, "output dim");
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(c.len(), m * n);
    let data = &w.data;
    let scales = &w.scales;
    let row = |ci: &mut [f32], ai: &[f32]| {
        ci.fill(0.0);
        for (p, &aip) in ai.iter().enumerate() {
            if aip == 0.0 {
                continue;
            }
            let qrow = &data[p * n..(p + 1) * n];
            for (cv, &qv) in ci.iter_mut().zip(qrow.iter()) {
                *cv += aip * qv as f32;
            }
        }
        for (cv, &s) in ci.iter_mut().zip(scales.iter()) {
            *cv *= s;
        }
    };
    if m * n >= PAR_THRESHOLD && m > 1 {
        c.par_chunks_mut(n)
            .zip(a.par_chunks(k))
            .for_each(|(ci, ai)| row(ci, ai));
    } else {
        for (ci, ai) in c.chunks_mut(n).zip(a.chunks(k)) {
            row(ci, ai);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::matmul::matmul;

    fn toy_weight(k: usize, n: usize, seed: u32) -> Vec<f32> {
        (0..k * n)
            .map(|i| {
                let x = ((i as u32).wrapping_mul(2654435761).wrapping_add(seed) >> 8) as f32;
                (x / (1u32 << 24) as f32 - 0.5) * 0.4
            })
            .collect()
    }

    #[test]
    fn round_trip_error_bounded_by_half_scale() {
        let (k, n) = (17, 9);
        let w = toy_weight(k, n, 1);
        let q = QuantizedMatrix::quantize(&w, k, n);
        let dq = q.dequantize();
        for (p, (orig, deq)) in w.iter().zip(&dq).enumerate() {
            let s = q.scales()[p % n];
            assert!(
                (orig - deq).abs() <= s * 0.5 + 1e-7,
                "elem {p}: {orig} vs {deq} (scale {s})"
            );
        }
    }

    #[test]
    fn zero_column_round_trips_exactly() {
        let (k, n) = (4, 3);
        let mut w = toy_weight(k, n, 7);
        for row in 0..k {
            w[row * n + 1] = 0.0;
        }
        let q = QuantizedMatrix::quantize(&w, k, n);
        let dq = q.dequantize();
        for row in 0..k {
            assert_eq!(dq[row * n + 1], 0.0);
        }
    }

    #[test]
    fn extreme_weight_maps_to_127() {
        let w = vec![0.5, -1.0, 0.25, 0.5];
        let q = QuantizedMatrix::quantize(&w, 2, 2);
        // each column's largest-magnitude entry codes to ±127 exactly
        assert_eq!(q.data[0], 127);
        assert_eq!(q.data[1], -127);
        let dq = q.dequantize();
        assert!((dq[0] - 0.5).abs() < 1e-6, "channel max is exact");
        assert!((dq[1] + 1.0).abs() < 1e-6);
    }

    #[test]
    fn fused_matmul_matches_dequant_then_matmul() {
        for (m, k, n) in [(1, 33, 40), (5, 16, 12), (70, 33, 71)] {
            let w = toy_weight(k, n, 3);
            let q = QuantizedMatrix::quantize(&w, k, n);
            let a: Vec<f32> = (0..m * k)
                .map(|i| ((i * 37 % 19) as f32 - 9.0) * 0.1)
                .collect();
            let mut fused = vec![0.0f32; m * n];
            matmul_q8(&a, &q, &mut fused, m, k, n);
            let dq = q.dequantize();
            let mut reference = vec![0.0f32; m * n];
            matmul(&a, &dq, &mut reference, m, k, n);
            for (x, y) in fused.iter().zip(&reference) {
                assert!((x - y).abs() < 1e-4, "({m},{k},{n}): {x} vs {y}");
            }
        }
    }

    #[test]
    fn bytes_are_a_quarter_plus_scales() {
        let (k, n) = (64, 32);
        let w = toy_weight(k, n, 11);
        let q = QuantizedMatrix::quantize(&w, k, n);
        assert_eq!(q.bytes(), k * n + n * 4);
        assert!(q.bytes() * 3 < k * n * 4, "well under the f32 footprint");
    }
}
