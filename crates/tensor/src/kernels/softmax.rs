//! Numerically stable row softmax and the streaming ("online") softmax
//! accumulator that powers the flash-style attention kernel.

/// In-place stable softmax over each row of a `[rows, d]` buffer.
pub fn softmax_rows(x: &mut [f32], rows: usize, d: usize) {
    debug_assert_eq!(x.len(), rows * d);
    for r in 0..rows {
        let row = &mut x[r * d..(r + 1) * d];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        let inv = 1.0 / sum;
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
}

/// Softmax backward: given `p = softmax(s)` and upstream `dp`,
/// `ds = p ⊙ (dp - sum(dp ⊙ p))` per row. Accumulates into `ds`.
pub fn softmax_rows_bwd(p: &[f32], dp: &[f32], ds: &mut [f32], rows: usize, d: usize) {
    for r in 0..rows {
        let pr = &p[r * d..(r + 1) * d];
        let dpr = &dp[r * d..(r + 1) * d];
        let dot: f32 = pr.iter().zip(dpr.iter()).map(|(a, b)| a * b).sum();
        let dsr = &mut ds[r * d..(r + 1) * d];
        for i in 0..d {
            dsr[i] += pr[i] * (dpr[i] - dot);
        }
    }
}

/// Streaming softmax state for one output row: the running max `m`, the
/// running normaliser `l`, and an externally owned accumulator. Feeding
/// scores tile by tile yields exactly the same result as materialising the
/// whole row — the identity flash attention is built on.
#[derive(Clone, Copy, Debug)]
pub struct OnlineSoftmax {
    /// Running row maximum.
    pub m: f32,
    /// Running sum of `exp(s - m)`.
    pub l: f32,
}

impl Default for OnlineSoftmax {
    fn default() -> Self {
        Self {
            m: f32::NEG_INFINITY,
            l: 0.0,
        }
    }
}

impl OnlineSoftmax {
    /// Ingest one score `s` whose weighted value row is `v`; `acc` holds the
    /// running weighted sum of values and is rescaled when the max moves.
    pub fn push(&mut self, s: f32, v: &[f32], acc: &mut [f32]) {
        if s > self.m {
            let scale = if self.m.is_finite() {
                (self.m - s).exp()
            } else {
                0.0
            };
            self.l *= scale;
            for a in acc.iter_mut() {
                *a *= scale;
            }
            self.m = s;
        }
        let w = (s - self.m).exp();
        self.l += w;
        for (a, &vv) in acc.iter_mut().zip(v.iter()) {
            *a = w.mul_add(vv, *a);
        }
    }

    /// Finalise: divide the accumulator by the normaliser.
    pub fn finish(&self, acc: &mut [f32]) {
        let inv = 1.0 / self.l;
        for a in acc.iter_mut() {
            *a *= inv;
        }
    }

    /// The log-normaliser `m + ln(l)`, the statistic flash attention saves
    /// per row so the backward pass can reconstruct probabilities.
    pub fn logsumexp(&self) -> f32 {
        self.m + self.l.ln()
    }
}

/// Row-wise log-sum-exp (stable).
pub fn logsumexp(row: &[f32]) -> f32 {
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    if !max.is_finite() {
        return max;
    }
    max + row.iter().map(|v| (v - max).exp()).sum::<f32>().ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one_and_order_preserved() {
        let mut x = vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0];
        softmax_rows(&mut x, 2, 3);
        for r in 0..2 {
            let s: f32 = x[r * 3..(r + 1) * 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
            assert!(x[r * 3] < x[r * 3 + 1] && x[r * 3 + 1] < x[r * 3 + 2]);
        }
    }

    #[test]
    fn softmax_is_stable_for_large_inputs() {
        let mut x = vec![1000.0, 1001.0, 999.0];
        softmax_rows(&mut x, 1, 3);
        assert!(x.iter().all(|v| v.is_finite()));
        assert!((x.iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn online_softmax_matches_batch_softmax() {
        let scores = [0.3f32, -1.2, 2.5, 0.0, 1.1];
        let values: Vec<Vec<f32>> = (0..5)
            .map(|i| vec![i as f32, (i as f32) * 0.5 - 1.0])
            .collect();
        // batch result
        let mut p = scores.to_vec();
        softmax_rows(&mut p, 1, 5);
        let mut expect = [0.0f32; 2];
        for (pi, v) in p.iter().zip(values.iter()) {
            expect[0] += pi * v[0];
            expect[1] += pi * v[1];
        }
        // online result
        let mut os = OnlineSoftmax::default();
        let mut acc = vec![0.0f32; 2];
        for (s, v) in scores.iter().zip(values.iter()) {
            os.push(*s, v, &mut acc);
        }
        os.finish(&mut acc);
        for (a, e) in acc.iter().zip(expect.iter()) {
            assert!((a - e).abs() < 1e-5, "{a} vs {e}");
        }
        assert!((os.logsumexp() - logsumexp(&scores)).abs() < 1e-5);
    }

    #[test]
    fn softmax_backward_matches_finite_difference() {
        let s0 = [0.5f32, -0.3, 1.7, 0.0];
        let w = [0.2f32, -0.7, 0.4, 1.0];
        let f = |s: &[f32]| {
            let mut p = s.to_vec();
            softmax_rows(&mut p, 1, 4);
            p.iter().zip(w.iter()).map(|(a, b)| a * b).sum::<f32>()
        };
        let mut p = s0.to_vec();
        softmax_rows(&mut p, 1, 4);
        let mut ds = vec![0.0f32; 4];
        softmax_rows_bwd(&p, &w, &mut ds, 1, 4);
        for i in 0..4 {
            let mut sp = s0;
            sp[i] += 1e-3;
            let mut sm = s0;
            sm[i] -= 1e-3;
            let num = (f(&sp) - f(&sm)) / 2e-3;
            assert!((num - ds[i]).abs() < 1e-3, "ds[{i}] {num} vs {}", ds[i]);
        }
    }
}
