//! Pointwise activation functions and their derivatives.
//!
//! GELU (tanh approximation) is the GPT-NeoX MLP activation; SiLU is the
//! gate activation inside LLaMA's SwiGLU block — exactly the two MLP
//! parameterisations the paper contrasts in Fig. 2.

const SQRT_2_OVER_PI: f32 = 0.797_884_6;
const GELU_C: f32 = 0.044_715;

/// GELU, tanh approximation (as used by GPT-NeoX / Megatron).
pub fn gelu(x: f32) -> f32 {
    0.5 * x * (1.0 + (SQRT_2_OVER_PI * (x + GELU_C * x * x * x)).tanh())
}

/// Derivative of [`gelu`] with respect to its input.
pub fn gelu_grad(x: f32) -> f32 {
    let u = SQRT_2_OVER_PI * (x + GELU_C * x * x * x);
    let t = u.tanh();
    let sech2 = 1.0 - t * t;
    0.5 * (1.0 + t) + 0.5 * x * sech2 * SQRT_2_OVER_PI * (1.0 + 3.0 * GELU_C * x * x)
}

/// Logistic sigmoid.
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// SiLU (a.k.a. swish): `x * sigmoid(x)`.
pub fn silu(x: f32) -> f32 {
    x * sigmoid(x)
}

/// Derivative of [`silu`].
pub fn silu_grad(x: f32) -> f32 {
    let s = sigmoid(x);
    s * (1.0 + x * (1.0 - s))
}

/// ReLU.
pub fn relu(x: f32) -> f32 {
    x.max(0.0)
}

/// Derivative of [`relu`] (subgradient 0 at the kink).
pub fn relu_grad(x: f32) -> f32 {
    if x > 0.0 {
        1.0
    } else {
        0.0
    }
}

/// Hyperbolic tangent forward.
pub fn tanh(x: f32) -> f32 {
    x.tanh()
}

/// Derivative of tanh given the input.
pub fn tanh_grad(x: f32) -> f32 {
    let t = x.tanh();
    1.0 - t * t
}

/// Apply `f` elementwise from `src` into `dst`.
pub fn map_into(src: &[f32], dst: &mut [f32], f: impl Fn(f32) -> f32) {
    debug_assert_eq!(src.len(), dst.len());
    for (d, &s) in dst.iter_mut().zip(src.iter()) {
        *d = f(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn numeric_grad(f: impl Fn(f32) -> f32, x: f32) -> f32 {
        let h = 1e-3;
        (f(x + h) - f(x - h)) / (2.0 * h)
    }

    #[test]
    fn gelu_known_values() {
        assert!((gelu(0.0)).abs() < 1e-7);
        assert!((gelu(100.0) - 100.0).abs() < 1e-3);
        assert!(gelu(-100.0).abs() < 1e-3);
        // gelu(1) ≈ 0.8412
        assert!((gelu(1.0) - 0.8412).abs() < 1e-3);
    }

    #[test]
    fn silu_known_values() {
        assert!((silu(0.0)).abs() < 1e-7);
        assert!((silu(1.0) - 0.7311).abs() < 1e-3);
        assert!((silu(-1.0) + 0.2689).abs() < 1e-3);
    }

    #[test]
    fn gradients_match_finite_differences() {
        for &x in &[-3.0f32, -1.0, -0.1, 0.0, 0.2, 1.0, 2.5] {
            assert!(
                (gelu_grad(x) - numeric_grad(gelu, x)).abs() < 1e-2,
                "gelu at {x}"
            );
            assert!(
                (silu_grad(x) - numeric_grad(silu, x)).abs() < 1e-2,
                "silu at {x}"
            );
            assert!(
                (tanh_grad(x) - numeric_grad(tanh, x)).abs() < 1e-2,
                "tanh at {x}"
            );
        }
        for &x in &[-2.0f32, 0.5, 3.0] {
            assert!(
                (relu_grad(x) - numeric_grad(relu, x)).abs() < 1e-2,
                "relu at {x}"
            );
        }
    }

    #[test]
    fn sigmoid_bounds_and_symmetry() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!(sigmoid(10.0) > 0.9999);
        assert!(sigmoid(-10.0) < 0.0001);
        assert!((sigmoid(2.0) + sigmoid(-2.0) - 1.0).abs() < 1e-6);
    }
}
