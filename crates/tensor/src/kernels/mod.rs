//! Raw numeric kernels: matmul, activations, norms, softmax, attention.

pub mod activation;
pub mod attention;
pub mod matmul;
pub mod norm;
pub mod softmax;
