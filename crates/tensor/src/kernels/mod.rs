//! Raw numeric kernels: matmul, activations, norms, softmax, attention,
//! and the KV-cached inference path.

pub mod activation;
pub mod attention;
pub mod infer;
pub mod matmul;
pub mod norm;
pub mod quant;
pub mod softmax;
