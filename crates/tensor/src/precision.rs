//! Reduced-precision emulation.
//!
//! The engine computes in `f32`; these helpers round values to the
//! representable grid of bf16 or fp16 so training runs can emulate
//! mixed-precision weight storage — the axis behind the paper's
//! observation that "the loss curves for MatGPT 1.7B, trained with float16
//! and bfloat16, are almost identical".

use crate::param::ParamStore;
use serde::{Deserialize, Serialize};

/// Storage precision to emulate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Precision {
    /// Native f32 (no rounding).
    F32,
    /// bfloat16: 8-bit exponent, 7-bit mantissa (f32 range, coarse grid).
    Bf16,
    /// IEEE half: 5-bit exponent, 10-bit mantissa (fine grid, narrow range).
    F16,
}

/// Round one value to the bf16 grid (round-to-nearest-even on the mantissa).
pub fn round_bf16(x: f32) -> f32 {
    if !x.is_finite() {
        return x;
    }
    let bits = x.to_bits();
    // round to nearest even at bit 16
    let lsb = (bits >> 16) & 1;
    let rounded = bits.wrapping_add(0x7fff + lsb);
    f32::from_bits(rounded & 0xffff_0000)
}

/// Round one value to the fp16 grid, saturating at the fp16 max and
/// flushing sub-minimal values to zero (classic fp16 hazards).
pub fn round_f16(x: f32) -> f32 {
    if !x.is_finite() {
        return x;
    }
    const F16_MAX: f32 = 65_504.0;
    const F16_MIN_POS: f32 = 5.96e-8; // smallest subnormal
    if x.abs() > F16_MAX {
        return F16_MAX.copysign(x);
    }
    if x != 0.0 && x.abs() < F16_MIN_POS {
        return 0.0;
    }
    // decompose and round the mantissa to 10 bits
    let bits = x.to_bits();
    let exp = ((bits >> 23) & 0xff) as i32 - 127;
    if exp < -14 {
        // subnormal in fp16: quantise to multiples of 2^-24
        let q = (x / 5.960_464_5e-8).round();
        return q * 5.960_464_5e-8;
    }
    let lsb = (bits >> 13) & 1;
    let rounded = bits.wrapping_add(0xfff + lsb);
    f32::from_bits(rounded & 0xffff_e000)
}

/// Round a whole buffer in place.
pub fn round_slice(data: &mut [f32], precision: Precision) {
    match precision {
        Precision::F32 => {}
        Precision::Bf16 => {
            for v in data.iter_mut() {
                *v = round_bf16(*v);
            }
        }
        Precision::F16 => {
            for v in data.iter_mut() {
                *v = round_f16(*v);
            }
        }
    }
}

/// Round every parameter of a store to the precision grid (the "weights
/// are stored in 16 bits" part of mixed-precision training).
pub fn round_store(store: &mut ParamStore, precision: Precision) {
    if precision == Precision::F32 {
        return;
    }
    store.for_each_param(|_, value, _| {
        round_slice(value.data_mut(), precision);
    });
}

/// Snapshot all parameter values (the fp32 "master weights" of a
/// mixed-precision step).
pub fn snapshot_values(store: &ParamStore) -> Vec<Vec<f32>> {
    store
        .ids()
        .map(|id| store.value(id).data().to_vec())
        .collect()
}

/// Restore parameter values from a snapshot taken with
/// [`snapshot_values`].
pub fn restore_values(store: &mut ParamStore, snapshot: &[Vec<f32>]) {
    let ids: Vec<_> = store.ids().collect();
    assert_eq!(ids.len(), snapshot.len(), "snapshot shape mismatch");
    for (id, saved) in ids.into_iter().zip(snapshot.iter()) {
        store.value_mut(id).data_mut().copy_from_slice(saved);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bf16_grid_properties() {
        // idempotent
        for &x in &[0.0f32, 1.0, -3.25, 1e-20, 1e20, 0.1] {
            let r = round_bf16(x);
            assert_eq!(round_bf16(r), r, "{x}");
        }
        // 1.0 and powers of two are exact
        assert_eq!(round_bf16(1.0), 1.0);
        assert_eq!(round_bf16(-0.5), -0.5);
        // relative error bounded by 2^-8
        for &x in &[0.1f32, 3.15159, 123.456, 9.9e-5] {
            let r = round_bf16(x);
            assert!(((r - x) / x).abs() < 1.0 / 256.0, "{x} -> {r}");
        }
    }

    #[test]
    fn f16_grid_properties() {
        assert_eq!(round_f16(1.0), 1.0);
        // saturation at fp16 max
        assert_eq!(round_f16(1e6), 65_504.0);
        assert_eq!(round_f16(-1e6), -65_504.0);
        // tiny values flush toward the subnormal grid
        assert_eq!(round_f16(1e-9), 0.0);
        // relative error bounded by 2^-11 in the normal range
        for &x in &[0.1f32, 3.15159, 100.25] {
            let r = round_f16(x);
            assert!(((r - x) / x).abs() < 1.0 / 2048.0, "{x} -> {r}");
        }
    }

    #[test]
    fn f16_is_finer_than_bf16_in_range() {
        // fp16 has 10 mantissa bits vs bf16's 7: for in-range values the
        // fp16 error is smaller
        let mut worse = 0;
        for i in 1..100 {
            let x = 0.001 * i as f32 + 0.01;
            let eb = (round_bf16(x) - x).abs();
            let ef = (round_f16(x) - x).abs();
            if ef > eb {
                worse += 1;
            }
        }
        assert!(worse < 5, "fp16 should be finer in range: {worse}");
    }

    #[test]
    fn round_store_applies_grid() {
        use crate::tensor::Tensor;
        let mut s = ParamStore::new();
        let id = s.add("w", Tensor::from_vec(&[3], vec![0.1234567, 1e-9, 1e8]));
        round_store(&mut s, Precision::F16);
        let d = s.value(id).data();
        assert_eq!(d[1], 0.0, "flush to zero");
        assert_eq!(d[2], 65_504.0, "saturate");
        assert_ne!(d[0], 0.1234567, "rounded");
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        use crate::tensor::Tensor;
        let mut s = ParamStore::new();
        let id = s.add("w", Tensor::from_vec(&[2], vec![1.5, -2.5]));
        let snap = snapshot_values(&s);
        s.value_mut(id).data_mut().copy_from_slice(&[9.0, 9.0]);
        restore_values(&mut s, &snap);
        assert_eq!(s.value(id).data(), &[1.5, -2.5]);
    }

    #[test]
    fn f32_mode_is_identity() {
        let mut data = vec![0.12345678f32, -9.87e-20];
        let orig = data.clone();
        round_slice(&mut data, Precision::F32);
        assert_eq!(data, orig);
    }
}
