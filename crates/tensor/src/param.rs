//! Persistent parameter storage shared across training steps.
//!
//! Models register their weights in a [`ParamStore`] once; every training
//! step stages them onto a fresh [`crate::tape::Tape`], runs
//! forward/backward, and copies the gradients back with
//! [`crate::tape::Tape::accumulate_param_grads`]. Optimizers then walk the
//! store's `(value, grad)` pairs.

use crate::tensor::Tensor;

/// Handle to a parameter in a [`ParamStore`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

struct Entry {
    name: String,
    value: Tensor,
    grad: Tensor,
}

/// A named collection of trainable tensors and their gradients.
#[derive(Default)]
pub struct ParamStore {
    entries: Vec<Entry>,
}

impl ParamStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a parameter, returning its handle.
    pub fn add(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let grad = Tensor::zeros(value.shape());
        self.entries.push(Entry {
            name: name.into(),
            value,
            grad,
        });
        ParamId(self.entries.len() - 1)
    }

    /// Number of registered parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total number of scalar parameters.
    pub fn num_scalars(&self) -> usize {
        self.entries.iter().map(|e| e.value.numel()).sum()
    }

    /// The value tensor of `id`.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.entries[id.0].value
    }

    /// Mutable value tensor of `id`.
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.entries[id.0].value
    }

    /// The gradient tensor of `id`.
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.entries[id.0].grad
    }

    /// Mutable gradient tensor of `id`.
    pub fn grad_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.entries[id.0].grad
    }

    /// The registered name of `id`.
    pub fn name(&self, id: ParamId) -> &str {
        &self.entries[id.0].name
    }

    /// Iterate over `(id, name)` pairs.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> + '_ {
        (0..self.entries.len()).map(ParamId)
    }

    /// Zero every gradient (call between optimizer steps).
    pub fn zero_grads(&mut self) {
        for e in self.entries.iter_mut() {
            e.grad.data_mut().fill(0.0);
        }
    }

    /// Visit `(name, value, grad)` triples mutably — the optimizer entry
    /// point.
    pub fn for_each_param(&mut self, mut f: impl FnMut(usize, &mut Tensor, &Tensor)) {
        for (i, e) in self.entries.iter_mut().enumerate() {
            f(i, &mut e.value, &e.grad);
        }
    }

    /// Global L2 norm of all gradients.
    pub fn grad_norm(&self) -> f32 {
        self.entries
            .iter()
            .map(|e| e.grad.sq_norm())
            .sum::<f32>()
            .sqrt()
    }

    /// Scale all gradients so the global norm is at most `max_norm`.
    /// Returns the pre-clip norm.
    pub fn clip_grad_norm(&mut self, max_norm: f32) -> f32 {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let s = max_norm / norm;
            for e in self.entries.iter_mut() {
                e.grad.scale_assign(s);
            }
        }
        norm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_query() {
        let mut s = ParamStore::new();
        let a = s.add("w", Tensor::zeros(&[2, 3]));
        let b = s.add("b", Tensor::zeros(&[3]));
        assert_eq!(s.len(), 2);
        assert_eq!(s.num_scalars(), 9);
        assert_eq!(s.name(a), "w");
        assert_eq!(s.value(b).shape(), &[3]);
    }

    #[test]
    fn zero_and_clip_grads() {
        let mut s = ParamStore::new();
        let a = s.add("w", Tensor::zeros(&[2]));
        s.grad_mut(a).data_mut().copy_from_slice(&[3.0, 4.0]);
        assert!((s.grad_norm() - 5.0).abs() < 1e-6);
        let pre = s.clip_grad_norm(1.0);
        assert!((pre - 5.0).abs() < 1e-6);
        assert!((s.grad_norm() - 1.0).abs() < 1e-5);
        s.zero_grads();
        assert_eq!(s.grad_norm(), 0.0);
    }

    #[test]
    fn clip_below_threshold_is_noop() {
        let mut s = ParamStore::new();
        let a = s.add("w", Tensor::zeros(&[2]));
        s.grad_mut(a).data_mut().copy_from_slice(&[0.3, 0.4]);
        s.clip_grad_norm(10.0);
        assert_eq!(s.grad(a).data(), &[0.3, 0.4]);
    }
}
