//! Persistent parameter storage shared across training steps.
//!
//! Models register their weights in a [`ParamStore`] once; every training
//! step stages them onto a fresh [`crate::tape::Tape`], runs
//! forward/backward, and copies the gradients back with
//! [`crate::tape::Tape::accumulate_param_grads`]. Optimizers then walk the
//! store's `(value, grad)` pairs.

use crate::tensor::Tensor;

/// Handle to a parameter in a [`ParamStore`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

struct Entry {
    name: String,
    value: Tensor,
    grad: Tensor,
}

/// A named collection of trainable tensors and their gradients.
#[derive(Default)]
pub struct ParamStore {
    entries: Vec<Entry>,
}

impl ParamStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a parameter, returning its handle.
    pub fn add(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let grad = Tensor::zeros(value.shape());
        self.entries.push(Entry {
            name: name.into(),
            value,
            grad,
        });
        ParamId(self.entries.len() - 1)
    }

    /// Number of registered parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total number of scalar parameters.
    pub fn num_scalars(&self) -> usize {
        self.entries.iter().map(|e| e.value.numel()).sum()
    }

    /// The value tensor of `id`.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.entries[id.0].value
    }

    /// Mutable value tensor of `id`.
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.entries[id.0].value
    }

    /// The gradient tensor of `id`.
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.entries[id.0].grad
    }

    /// Mutable gradient tensor of `id`.
    pub fn grad_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.entries[id.0].grad
    }

    /// The registered name of `id`.
    pub fn name(&self, id: ParamId) -> &str {
        &self.entries[id.0].name
    }

    /// Iterate over `(id, name)` pairs.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> + '_ {
        (0..self.entries.len()).map(ParamId)
    }

    /// Zero every gradient (call between optimizer steps).
    pub fn zero_grads(&mut self) {
        for e in self.entries.iter_mut() {
            e.grad.data_mut().fill(0.0);
        }
    }

    /// Visit `(name, value, grad)` triples mutably — the optimizer entry
    /// point.
    pub fn for_each_param(&mut self, mut f: impl FnMut(usize, &mut Tensor, &Tensor)) {
        for (i, e) in self.entries.iter_mut().enumerate() {
            f(i, &mut e.value, &e.grad);
        }
    }

    /// Global L2 norm of all gradients.
    pub fn grad_norm(&self) -> f32 {
        self.entries
            .iter()
            .map(|e| e.grad.sq_norm())
            .sum::<f32>()
            .sqrt()
    }

    /// Scale all gradients so the global norm is at most `max_norm`.
    /// Returns the pre-clip norm.
    pub fn clip_grad_norm(&mut self, max_norm: f32) -> f32 {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let s = max_norm / norm;
            for e in self.entries.iter_mut() {
                e.grad.scale_assign(s);
            }
        }
        norm
    }

    /// Scalar count of each registered tensor, in registration order.
    /// Prefix-summing this gives each tensor's range in the flat layout
    /// used by [`ParamStore::flat_grads`] / [`ParamStore::flat_values`].
    pub fn tensor_sizes(&self) -> Vec<usize> {
        self.entries.iter().map(|e| e.value.numel()).collect()
    }

    /// All gradients concatenated in registration order into one flat
    /// vector of length [`ParamStore::num_scalars`] — the wire format
    /// collectives operate on.
    pub fn flat_grads(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.num_scalars());
        for e in &self.entries {
            out.extend_from_slice(e.grad.data());
        }
        out
    }

    /// Overwrite every gradient from a flat vector laid out as
    /// [`ParamStore::flat_grads`]. Panics on length mismatch.
    pub fn load_flat_grads(&mut self, flat: &[f32]) {
        assert_eq!(flat.len(), self.num_scalars(), "flat gradient length");
        let mut off = 0;
        for e in self.entries.iter_mut() {
            let n = e.grad.numel();
            e.grad.data_mut().copy_from_slice(&flat[off..off + n]);
            off += n;
        }
    }

    /// All parameter values concatenated in registration order (same
    /// layout as [`ParamStore::flat_grads`]).
    pub fn flat_values(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.num_scalars());
        for e in &self.entries {
            out.extend_from_slice(e.value.data());
        }
        out
    }

    /// Overwrite every parameter value from a flat vector laid out as
    /// [`ParamStore::flat_values`]. Panics on length mismatch.
    pub fn load_flat_values(&mut self, flat: &[f32]) {
        assert_eq!(flat.len(), self.num_scalars(), "flat value length");
        let mut off = 0;
        for e in self.entries.iter_mut() {
            let n = e.value.numel();
            e.value.data_mut().copy_from_slice(&flat[off..off + n]);
            off += n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_query() {
        let mut s = ParamStore::new();
        let a = s.add("w", Tensor::zeros(&[2, 3]));
        let b = s.add("b", Tensor::zeros(&[3]));
        assert_eq!(s.len(), 2);
        assert_eq!(s.num_scalars(), 9);
        assert_eq!(s.name(a), "w");
        assert_eq!(s.value(b).shape(), &[3]);
    }

    #[test]
    fn zero_and_clip_grads() {
        let mut s = ParamStore::new();
        let a = s.add("w", Tensor::zeros(&[2]));
        s.grad_mut(a).data_mut().copy_from_slice(&[3.0, 4.0]);
        assert!((s.grad_norm() - 5.0).abs() < 1e-6);
        let pre = s.clip_grad_norm(1.0);
        assert!((pre - 5.0).abs() < 1e-6);
        assert!((s.grad_norm() - 1.0).abs() < 1e-5);
        s.zero_grads();
        assert_eq!(s.grad_norm(), 0.0);
    }

    #[test]
    fn flat_round_trips_preserve_layout() {
        let mut s = ParamStore::new();
        let a = s.add("w", Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]));
        let b = s.add("b", Tensor::from_vec(&[3], vec![5.0, 6.0, 7.0]));
        s.grad_mut(a)
            .data_mut()
            .copy_from_slice(&[0.1, 0.2, 0.3, 0.4]);
        s.grad_mut(b).data_mut().copy_from_slice(&[0.5, 0.6, 0.7]);

        assert_eq!(s.tensor_sizes(), vec![4, 3]);
        assert_eq!(s.flat_values(), vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        assert_eq!(s.flat_grads(), vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7]);

        let mut vals = s.flat_values();
        for v in &mut vals {
            *v += 10.0;
        }
        s.load_flat_values(&vals);
        assert_eq!(s.value(b).data(), &[15.0, 16.0, 17.0]);

        let grads = vec![1.0; 7];
        s.load_flat_grads(&grads);
        assert_eq!(s.grad(a).data(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "flat gradient length")]
    fn load_flat_grads_rejects_wrong_length() {
        let mut s = ParamStore::new();
        s.add("w", Tensor::zeros(&[2]));
        s.load_flat_grads(&[1.0]);
    }

    #[test]
    fn clip_below_threshold_is_noop() {
        let mut s = ParamStore::new();
        let a = s.add("w", Tensor::zeros(&[2]));
        s.grad_mut(a).data_mut().copy_from_slice(&[0.3, 0.4]);
        s.clip_grad_norm(10.0);
        assert_eq!(s.grad(a).data(), &[0.3, 0.4]);
    }
}
