//! Eager, tape-based reverse-mode automatic differentiation.
//!
//! A [`Tape`] records every operation as it executes; [`Tape::backward`]
//! replays the record in reverse, accumulating gradients. Because nodes are
//! appended eagerly, the creation order is already a topological order and
//! reverse iteration is a valid reverse sweep.
//!
//! Values live in the nodes; gradients live in a parallel vector so the
//! backward sweep can borrow node data immutably while mutating gradients.

use crate::collective::{ring_chunks, ring_fold, CommHook};
use crate::kernels::activation as act;
use crate::kernels::attention::{attention_bwd, attention_fwd, AttentionImpl, AttnSaved};
use crate::kernels::matmul::{matmul, matmul_at_acc, matmul_bt_acc};
use crate::kernels::norm;
use crate::kernels::softmax::{softmax_rows, softmax_rows_bwd};
use crate::param::{ParamId, ParamStore};
use crate::tensor::Tensor;
use rand::Rng;

/// Handle to a value on the tape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Var(pub(crate) usize);

/// Per-node auxiliary state saved by forward for backward.
#[derive(Clone, Debug)]
enum Saved {
    None,
    /// LayerNorm per-row (mean, rstd).
    Norm(Vec<f32>, Vec<f32>),
    /// RMSNorm per-row reciprocal rms.
    Rrms(Vec<f32>),
    /// Softmax / cross-entropy probabilities.
    Probs(Vec<f32>),
    /// Attention forward stash.
    Attn(AttnSaved),
}

#[derive(Clone, Debug)]
enum Op {
    Input,
    Param(ParamId),
    Add(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    Scale(Var, f32),
    AddBias(Var, Var),
    MatMul(Var, Var),
    Gelu(Var),
    Silu(Var),
    Relu(Var),
    Tanh(Var),
    LayerNorm {
        x: Var,
        gamma: Var,
        beta: Var,
    },
    RmsNorm {
        x: Var,
        gamma: Var,
    },
    Softmax(Var),
    CrossEntropy {
        logits: Var,
        targets: Vec<u32>,
        n_valid: usize,
    },
    Mse {
        pred: Var,
        target: Tensor,
    },
    Embedding {
        table: Var,
        ids: Vec<u32>,
    },
    Rotary {
        x: Var,
        t: usize,
        d: usize,
        base: f32,
    },
    Attention {
        q: Var,
        k: Var,
        v: Var,
        bh: usize,
        t: usize,
        d: usize,
        causal: bool,
    },
    Reshape(Var),
    SplitHeads {
        x: Var,
        b: usize,
        t: usize,
        h: usize,
        d: usize,
    },
    MergeHeads {
        x: Var,
        b: usize,
        t: usize,
        h: usize,
        d: usize,
    },
    Concat(Var, Var),
    IndexSelect {
        x: Var,
        idx: Vec<u32>,
    },
    SegmentSum {
        x: Var,
        seg: Vec<u32>,
    },
    GroupMeanRows {
        x: Var,
        group: usize,
    },
    Dropout {
        x: Var,
        mask: Vec<f32>,
    },
    Sum(Var),
    Mean(Var),
    /// Forward allreduce-sum across a TP group; backward identity.
    SyncSum {
        x: Var,
    },
    /// Forward identity; backward allreduce-sums the gradient.
    SyncGrad {
        x: Var,
        comm: CommHook,
    },
    /// Sequential-reference fold of per-rank partials in ring order.
    RingSum {
        parts: Vec<Var>,
    },
    /// Sequential-reference TP branch (non-final): identity forward, no
    /// backward of its own — the matching [`Op::TpJoin`] folds its grad.
    TpPart,
    /// Sequential-reference TP branch (final): folds every branch's
    /// gradient in ring order into `x` exactly once.
    TpJoin {
        x: Var,
        parts: Vec<Var>,
    },
}

struct Node {
    op: Op,
    value: Tensor,
    saved: Saved,
}

/// The autograd tape.
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
    grads: Vec<Option<Tensor>>,
    /// Which attention kernel newly created attention nodes use.
    pub attention_impl: Option<AttentionImpl>,
}

impl Tape {
    /// An empty tape using flash attention by default.
    pub fn new() -> Self {
        Self {
            nodes: Vec::new(),
            grads: Vec::new(),
            attention_impl: Some(AttentionImpl::Flash),
        }
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if no nodes recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, op: Op, value: Tensor, saved: Saved) -> Var {
        self.nodes.push(Node { op, value, saved });
        self.grads.push(None);
        Var(self.nodes.len() - 1)
    }

    /// The forward value of `v`.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// The gradient of `v` if `backward` has produced one.
    pub fn grad(&self, v: Var) -> Option<&Tensor> {
        self.grads[v.0].as_ref()
    }

    // ---------------------------------------------------------------- leaves

    /// Record a constant input (no gradient flows into it from the caller's
    /// perspective; a gradient is still computed and queryable).
    pub fn input(&mut self, t: Tensor) -> Var {
        self.push(Op::Input, t, Saved::None)
    }

    /// Stage a parameter from `store` onto the tape.
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> Var {
        let value = store.value(id).clone();
        self.push(Op::Param(id), value, Saved::None)
    }

    // ----------------------------------------------------------- elementwise

    /// Elementwise addition of same-shape tensors.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let (ta, tb) = (self.value(a), self.value(b));
        assert_eq!(ta.shape(), tb.shape(), "add shape mismatch");
        let mut out = ta.clone();
        out.add_assign(tb);
        self.push(Op::Add(a, b), out, Saved::None)
    }

    /// Elementwise subtraction of same-shape tensors.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let (ta, tb) = (self.value(a), self.value(b));
        assert_eq!(ta.shape(), tb.shape(), "sub shape mismatch");
        let data = ta
            .data()
            .iter()
            .zip(tb.data())
            .map(|(x, y)| x - y)
            .collect();
        let out = Tensor::from_vec(ta.shape(), data);
        self.push(Op::Sub(a, b), out, Saved::None)
    }

    /// Elementwise (Hadamard) product of same-shape tensors.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let (ta, tb) = (self.value(a), self.value(b));
        assert_eq!(ta.shape(), tb.shape(), "mul shape mismatch");
        let data = ta
            .data()
            .iter()
            .zip(tb.data())
            .map(|(x, y)| x * y)
            .collect();
        let out = Tensor::from_vec(ta.shape(), data);
        self.push(Op::Mul(a, b), out, Saved::None)
    }

    /// Multiply by a compile-time constant.
    pub fn scale(&mut self, a: Var, s: f32) -> Var {
        let mut out = self.value(a).clone();
        out.scale_assign(s);
        self.push(Op::Scale(a, s), out, Saved::None)
    }

    /// Broadcast-add a bias vector over the last dimension: `x + b`.
    pub fn add_bias(&mut self, x: Var, b: Var) -> Var {
        let tx = self.value(x);
        let tb = self.value(b);
        let (rows, d) = tx.as_2d();
        assert_eq!(tb.numel(), d, "bias length mismatch");
        let mut data = tx.data().to_vec();
        for r in 0..rows {
            for i in 0..d {
                data[r * d + i] += tb.data()[i];
            }
        }
        let out = Tensor::from_vec(tx.shape(), data);
        self.push(Op::AddBias(x, b), out, Saved::None)
    }

    // ---------------------------------------------------------------- linalg

    /// Matrix product. The left operand is viewed as 2-D over its last
    /// dimension (`[…, k] -> [rows, k]`); the right must be `[k, n]`.
    /// Output shape is the left shape with `k` replaced by `n`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let ta = self.value(a);
        let tb = self.value(b);
        let (m, k) = ta.as_2d();
        assert_eq!(tb.rank(), 2, "matmul rhs must be 2-D");
        assert_eq!(tb.dim(0), k, "matmul inner dims {} vs {}", k, tb.dim(0));
        let n = tb.dim(1);
        let mut out = vec![0.0f32; m * n];
        matmul(ta.data(), tb.data(), &mut out, m, k, n);
        let mut shape = ta.shape().to_vec();
        if shape.is_empty() {
            shape = vec![1];
        }
        *shape.last_mut().unwrap() = n;
        let out = Tensor::from_vec(&shape, out);
        self.push(Op::MatMul(a, b), out, Saved::None)
    }

    /// Fully-connected layer: `x @ w + b`.
    pub fn linear(&mut self, x: Var, w: Var, b: Var) -> Var {
        let y = self.matmul(x, w);
        self.add_bias(y, b)
    }

    // ----------------------------------------------------------- activations

    fn unary(&mut self, x: Var, f: fn(f32) -> f32, op: Op) -> Var {
        let tx = self.value(x);
        let data = tx.data().iter().map(|&v| f(v)).collect();
        let out = Tensor::from_vec(tx.shape(), data);
        self.push(op, out, Saved::None)
    }

    /// GELU activation (tanh approximation).
    pub fn gelu(&mut self, x: Var) -> Var {
        self.unary(x, act::gelu, Op::Gelu(x))
    }

    /// SiLU activation.
    pub fn silu(&mut self, x: Var) -> Var {
        self.unary(x, act::silu, Op::Silu(x))
    }

    /// ReLU activation.
    pub fn relu(&mut self, x: Var) -> Var {
        self.unary(x, act::relu, Op::Relu(x))
    }

    /// tanh activation.
    pub fn tanh(&mut self, x: Var) -> Var {
        self.unary(x, act::tanh, Op::Tanh(x))
    }

    // ----------------------------------------------------------------- norms

    /// LayerNorm over the last dimension with affine parameters.
    pub fn layernorm(&mut self, x: Var, gamma: Var, beta: Var, eps: f32) -> Var {
        let tx = self.value(x);
        let (rows, d) = tx.as_2d();
        let mut y = vec![0.0f32; rows * d];
        let (means, rstds) = norm::layernorm_fwd(
            tx.data(),
            self.value(gamma).data(),
            self.value(beta).data(),
            &mut y,
            rows,
            d,
            eps,
        );
        let out = Tensor::from_vec(tx.shape(), y);
        self.push(
            Op::LayerNorm { x, gamma, beta },
            out,
            Saved::Norm(means, rstds),
        )
    }

    /// RMSNorm over the last dimension with a gain parameter.
    pub fn rmsnorm(&mut self, x: Var, gamma: Var, eps: f32) -> Var {
        let tx = self.value(x);
        let (rows, d) = tx.as_2d();
        let mut y = vec![0.0f32; rows * d];
        let rrms = norm::rmsnorm_fwd(tx.data(), self.value(gamma).data(), &mut y, rows, d, eps);
        let out = Tensor::from_vec(tx.shape(), y);
        self.push(Op::RmsNorm { x, gamma }, out, Saved::Rrms(rrms))
    }

    /// Softmax over the last dimension.
    pub fn softmax(&mut self, x: Var) -> Var {
        let tx = self.value(x);
        let (rows, d) = tx.as_2d();
        let mut y = tx.data().to_vec();
        softmax_rows(&mut y, rows, d);
        let out = Tensor::from_vec(tx.shape(), y);
        self.push(Op::Softmax(x), out, Saved::None)
    }

    // ---------------------------------------------------------------- losses

    /// Mean cross-entropy between `logits` (`[n, vocab]`) and integer
    /// targets. Entries equal to `IGNORE_INDEX` are skipped.
    pub fn cross_entropy(&mut self, logits: Var, targets: &[u32]) -> Var {
        let tl = self.value(logits);
        let (n, v) = tl.as_2d();
        assert_eq!(n, targets.len(), "targets length mismatch");
        let mut probs = tl.data().to_vec();
        softmax_rows(&mut probs, n, v);
        let mut loss = 0.0f64;
        let mut n_valid = 0usize;
        for (r, &t) in targets.iter().enumerate() {
            if t == IGNORE_INDEX {
                continue;
            }
            let p = probs[r * v + t as usize].max(1e-12);
            loss -= (p as f64).ln();
            n_valid += 1;
        }
        let n_valid = n_valid.max(1);
        let out = Tensor::scalar((loss / n_valid as f64) as f32);
        self.push(
            Op::CrossEntropy {
                logits,
                targets: targets.to_vec(),
                n_valid,
            },
            out,
            Saved::Probs(probs),
        )
    }

    /// Mean squared error against a constant target of the same shape.
    pub fn mse(&mut self, pred: Var, target: &Tensor) -> Var {
        let tp = self.value(pred);
        assert_eq!(tp.shape(), target.shape(), "mse shape mismatch");
        let n = tp.numel() as f32;
        let loss: f32 = tp
            .data()
            .iter()
            .zip(target.data())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            / n;
        let out = Tensor::scalar(loss);
        self.push(
            Op::Mse {
                pred,
                target: target.clone(),
            },
            out,
            Saved::None,
        )
    }

    /// Sum all elements to a scalar.
    pub fn sum(&mut self, x: Var) -> Var {
        let s: f32 = self.value(x).data().iter().sum();
        self.push(Op::Sum(x), Tensor::scalar(s), Saved::None)
    }

    /// Mean of all elements.
    pub fn mean(&mut self, x: Var) -> Var {
        let t = self.value(x);
        let s: f32 = t.data().iter().sum::<f32>() / t.numel() as f32;
        self.push(Op::Mean(x), Tensor::scalar(s), Saved::None)
    }

    // ------------------------------------------------- parallel sync points

    /// Allreduce-sum `x` across the hook's group (ring-fold order);
    /// backward is the identity into this rank's partial. The Megatron
    /// "g" point after a row-parallel matmul. A no-op for a group of
    /// one, so the graph degenerates bitwise to the unsharded model.
    pub fn sync_sum(&mut self, x: Var, comm: &CommHook) -> Var {
        if comm.0.group() == 1 {
            return x;
        }
        let mut out = self.value(x).clone();
        comm.0.allreduce(out.data_mut());
        self.push(Op::SyncSum { x }, out, Saved::None)
    }

    /// Identity forward; backward allreduce-sums the gradient across
    /// the hook's group before accumulating into `x`. The Megatron "f"
    /// point at a tensor-parallel block input. A no-op for a group of
    /// one.
    pub fn sync_grad(&mut self, x: Var, comm: &CommHook) -> Var {
        if comm.0.group() == 1 {
            return x;
        }
        let out = self.value(x).clone();
        self.push(
            Op::SyncGrad {
                x,
                comm: comm.clone(),
            },
            out,
            Saved::None,
        )
    }

    /// Sequential-reference twin of [`Tape::sync_sum`]: fold the
    /// per-rank partials (rank order) with the exact ring reduction
    /// order a threaded allreduce would use. Backward is the identity
    /// into every part. A no-op for a single part.
    pub fn ring_sum(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "ring_sum needs at least one part");
        if parts.len() == 1 {
            return parts[0];
        }
        let shape = self.value(parts[0]).shape().to_vec();
        let vecs: Vec<Vec<f32>> = parts
            .iter()
            .map(|&p| {
                assert_eq!(self.value(p).shape(), &shape[..], "ring_sum shape mismatch");
                self.value(p).data().to_vec()
            })
            .collect();
        let bounds = ring_chunks(vecs[0].len(), vecs.len());
        let folded = ring_fold(&vecs, &bounds);
        let out = Tensor::from_vec(&shape, folded);
        self.push(
            Op::RingSum {
                parts: parts.to_vec(),
            },
            out,
            Saved::None,
        )
    }

    /// Sequential-reference twin of [`Tape::sync_grad`]: `t` identity
    /// copies of `x`, one per simulated rank. The branch gradients are
    /// folded with the ring order and added into `x` exactly once, by
    /// the final branch — created last, so its backward runs first in
    /// the reverse sweep, after every branch consumer has contributed.
    pub fn tp_branches(&mut self, x: Var, t: usize) -> Vec<Var> {
        assert!(t > 0, "tp_branches needs at least one rank");
        if t == 1 {
            return vec![x];
        }
        let mut out = Vec::with_capacity(t);
        for _ in 0..t - 1 {
            let v = self.value(x).clone();
            out.push(self.push(Op::TpPart, v, Saved::None));
        }
        let v = self.value(x).clone();
        out.push(self.push(
            Op::TpJoin {
                x,
                parts: out.clone(),
            },
            v,
            Saved::None,
        ));
        out
    }

    // ------------------------------------------------------------- embedding

    /// Row-gather from an embedding table `[vocab, d]` by token ids.
    pub fn embedding(&mut self, table: Var, ids: &[u32]) -> Var {
        let tt = self.value(table);
        assert_eq!(tt.rank(), 2, "embedding table must be 2-D");
        let d = tt.dim(1);
        let vocab = tt.dim(0);
        let mut data = Vec::with_capacity(ids.len() * d);
        for &id in ids {
            let id = id as usize;
            assert!(id < vocab, "token id {id} out of vocab {vocab}");
            data.extend_from_slice(&tt.data()[id * d..(id + 1) * d]);
        }
        let out = Tensor::from_vec(&[ids.len(), d], data);
        self.push(
            Op::Embedding {
                table,
                ids: ids.to_vec(),
            },
            out,
            Saved::None,
        )
    }

    // ----------------------------------------------------- attention related

    /// Apply rotary position embeddings to `x` laid out `[BH, T, D]`.
    /// Positions run `0..T` within each `[T, D]` block (half-split style).
    pub fn rotary(&mut self, x: Var, t: usize, d: usize, base: f32) -> Var {
        let tx = self.value(x);
        assert_eq!(tx.numel() % (t * d), 0, "rotary layout mismatch");
        let mut data = tx.data().to_vec();
        rotary_apply(&mut data, t, d, base, false);
        let out = Tensor::from_vec(tx.shape(), data);
        self.push(Op::Rotary { x, t, d, base }, out, Saved::None)
    }

    /// Fused causal multi-head attention over `[BH, T, D]` inputs.
    /// The kernel used is controlled by [`Tape::attention_impl`].
    pub fn causal_attention(
        &mut self,
        q: Var,
        k: Var,
        v: Var,
        bh: usize,
        t: usize,
        d: usize,
    ) -> Var {
        self.attention(q, k, v, bh, t, d, true)
    }

    /// Fused bidirectional (BERT-style) attention over `[BH, T, D]` inputs.
    #[allow(clippy::too_many_arguments)]
    pub fn bidirectional_attention(
        &mut self,
        q: Var,
        k: Var,
        v: Var,
        bh: usize,
        t: usize,
        d: usize,
    ) -> Var {
        self.attention(q, k, v, bh, t, d, false)
    }

    #[allow(clippy::too_many_arguments)]
    fn attention(
        &mut self,
        q: Var,
        k: Var,
        v: Var,
        bh: usize,
        t: usize,
        d: usize,
        causal: bool,
    ) -> Var {
        let imp = self.attention_impl.unwrap_or(AttentionImpl::Flash);
        let (out, saved) = attention_fwd(
            self.value(q).data(),
            self.value(k).data(),
            self.value(v).data(),
            bh,
            t,
            d,
            imp,
            causal,
        );
        let out = Tensor::from_vec(&[bh, t, d], out);
        self.push(
            Op::Attention {
                q,
                k,
                v,
                bh,
                t,
                d,
                causal,
            },
            out,
            Saved::Attn(saved),
        )
    }

    /// Reinterpret with a new shape (same element count).
    pub fn reshape(&mut self, x: Var, shape: &[usize]) -> Var {
        let out = self.value(x).clone().reshaped(shape);
        self.push(Op::Reshape(x), out, Saved::None)
    }

    /// `[B, T, H*D] -> [B*H, T, D]` head split (permutation copy).
    pub fn split_heads(&mut self, x: Var, b: usize, t: usize, h: usize, d: usize) -> Var {
        let tx = self.value(x);
        assert_eq!(tx.numel(), b * t * h * d, "split_heads numel");
        let src = tx.data();
        let mut data = vec![0.0f32; b * h * t * d];
        for bi in 0..b {
            for ti in 0..t {
                for hi in 0..h {
                    let s = ((bi * t + ti) * h + hi) * d;
                    let dst = ((bi * h + hi) * t + ti) * d;
                    data[dst..dst + d].copy_from_slice(&src[s..s + d]);
                }
            }
        }
        let out = Tensor::from_vec(&[b * h, t, d], data);
        self.push(Op::SplitHeads { x, b, t, h, d }, out, Saved::None)
    }

    /// `[B*H, T, D] -> [B, T, H*D]` head merge (inverse of `split_heads`).
    pub fn merge_heads(&mut self, x: Var, b: usize, t: usize, h: usize, d: usize) -> Var {
        let tx = self.value(x);
        assert_eq!(tx.numel(), b * t * h * d, "merge_heads numel");
        let src = tx.data();
        let mut data = vec![0.0f32; b * t * h * d];
        for bi in 0..b {
            for hi in 0..h {
                for ti in 0..t {
                    let s = ((bi * h + hi) * t + ti) * d;
                    let dst = ((bi * t + ti) * h + hi) * d;
                    data[dst..dst + d].copy_from_slice(&src[s..s + d]);
                }
            }
        }
        let out = Tensor::from_vec(&[b, t, h * d], data);
        self.push(Op::MergeHeads { x, b, t, h, d }, out, Saved::None)
    }

    // ------------------------------------------------------ structure / misc

    /// Concatenate along the last dimension (both viewed as `[rows, *]`).
    pub fn concat(&mut self, a: Var, b: Var) -> Var {
        let ta = self.value(a);
        let tb = self.value(b);
        let (ra, da) = ta.as_2d();
        let (rb, db) = tb.as_2d();
        assert_eq!(ra, rb, "concat row mismatch");
        let mut data = Vec::with_capacity(ra * (da + db));
        for r in 0..ra {
            data.extend_from_slice(&ta.data()[r * da..(r + 1) * da]);
            data.extend_from_slice(&tb.data()[r * db..(r + 1) * db]);
        }
        let out = Tensor::from_vec(&[ra, da + db], data);
        self.push(Op::Concat(a, b), out, Saved::None)
    }

    /// Gather rows of a 2-D tensor by index (rows may repeat).
    pub fn index_select(&mut self, x: Var, idx: &[u32]) -> Var {
        let tx = self.value(x);
        let (rows, d) = tx.as_2d();
        let mut data = Vec::with_capacity(idx.len() * d);
        for &i in idx {
            let i = i as usize;
            assert!(i < rows, "index_select row {i} out of {rows}");
            data.extend_from_slice(&tx.data()[i * d..(i + 1) * d]);
        }
        let out = Tensor::from_vec(&[idx.len(), d], data);
        self.push(
            Op::IndexSelect {
                x,
                idx: idx.to_vec(),
            },
            out,
            Saved::None,
        )
    }

    /// Sum rows into `nseg` output rows according to `seg[i]`.
    pub fn segment_sum(&mut self, x: Var, seg: &[u32], nseg: usize) -> Var {
        let tx = self.value(x);
        let (rows, d) = tx.as_2d();
        assert_eq!(rows, seg.len(), "segment ids length mismatch");
        let mut data = vec![0.0f32; nseg * d];
        for (r, &s) in seg.iter().enumerate() {
            let s = s as usize;
            assert!(s < nseg, "segment id {s} out of {nseg}");
            for i in 0..d {
                data[s * d + i] += tx.data()[r * d + i];
            }
        }
        let out = Tensor::from_vec(&[nseg, d], data);
        self.push(
            Op::SegmentSum {
                x,
                seg: seg.to_vec(),
            },
            out,
            Saved::None,
        )
    }

    /// Mean over consecutive groups of `group` rows:
    /// `[G*group, d] -> [G, d]`. Used for sequence mean-pooling.
    pub fn group_mean_rows(&mut self, x: Var, group: usize) -> Var {
        let tx = self.value(x);
        let (rows, d) = tx.as_2d();
        assert_eq!(rows % group, 0, "group_mean_rows: {rows} % {group} != 0");
        let g = rows / group;
        let mut data = vec![0.0f32; g * d];
        for r in 0..rows {
            let o = r / group;
            for i in 0..d {
                data[o * d + i] += tx.data()[r * d + i];
            }
        }
        let inv = 1.0 / group as f32;
        for v in data.iter_mut() {
            *v *= inv;
        }
        let out = Tensor::from_vec(&[g, d], data);
        self.push(Op::GroupMeanRows { x, group }, out, Saved::None)
    }

    /// Inverted dropout with keep-probability `1 - p`. A no-op when `p == 0`.
    pub fn dropout<R: Rng>(&mut self, x: Var, p: f32, rng: &mut R) -> Var {
        if p <= 0.0 {
            return x;
        }
        let tx = self.value(x);
        let keep = 1.0 - p;
        let inv = 1.0 / keep;
        let mask: Vec<f32> = (0..tx.numel())
            .map(|_| if rng.gen::<f32>() < keep { inv } else { 0.0 })
            .collect();
        let data = tx
            .data()
            .iter()
            .zip(mask.iter())
            .map(|(a, m)| a * m)
            .collect();
        let out = Tensor::from_vec(tx.shape(), data);
        self.push(Op::Dropout { x, mask }, out, Saved::None)
    }

    // -------------------------------------------------------------- backward

    /// Run the reverse sweep seeding `d loss = 1`.
    pub fn backward(&mut self, loss: Var) {
        assert_eq!(
            self.nodes[loss.0].value.numel(),
            1,
            "backward seed must be scalar"
        );
        let seed = Tensor::from_vec(self.nodes[loss.0].value.shape(), vec![1.0]);
        self.backward_from(loss, seed);
    }

    /// Run the reverse sweep from `out` seeded with an arbitrary
    /// upstream gradient — the pipeline-parallel entry point, where the
    /// seed is the activation gradient received back from the next
    /// stage.
    pub fn backward_from(&mut self, out: Var, seed: Tensor) {
        assert_eq!(
            seed.shape(),
            self.nodes[out.0].value.shape(),
            "backward_from seed shape mismatch"
        );
        match &mut self.grads[out.0] {
            Some(g) => g.add_assign(&seed),
            slot => *slot = Some(seed),
        }
        let Tape { nodes, grads, .. } = self;
        for id in (0..nodes.len()).rev() {
            let g = match grads[id].take() {
                Some(g) => g,
                None => continue,
            };
            backward_op(nodes, grads, id, &g);
            grads[id] = Some(g);
        }
    }

    /// Copy accumulated parameter gradients into `store` (adding to any
    /// gradient already there, so gradient accumulation across micro-batches
    /// falls out naturally).
    pub fn accumulate_param_grads(&self, store: &mut ParamStore) {
        for (id, node) in self.nodes.iter().enumerate() {
            if let Op::Param(pid) = node.op {
                if let Some(g) = &self.grads[id] {
                    store.grad_mut(pid).add_assign(g);
                }
            }
        }
    }
}

/// Target value that [`Tape::cross_entropy`] skips.
pub const IGNORE_INDEX: u32 = u32::MAX;

/// Apply (or, with `inverse`, un-apply) rotary embeddings in place over
/// `[*, T, D]` blocks using the half-split convention.
fn rotary_apply(data: &mut [f32], t: usize, d: usize, base: f32, inverse: bool) {
    let half = d / 2;
    let blocks = data.len() / (t * d);
    for b in 0..blocks {
        for ti in 0..t {
            let row = &mut data[(b * t + ti) * d..(b * t + ti + 1) * d];
            for i in 0..half {
                let theta = ti as f32 / base.powf(2.0 * i as f32 / d as f32);
                let (sin, cos) = theta.sin_cos();
                let sin = if inverse { -sin } else { sin };
                let x1 = row[i];
                let x2 = row[i + half];
                row[i] = x1 * cos - x2 * sin;
                row[i + half] = x2 * cos + x1 * sin;
            }
        }
    }
}

/// Ensure a gradient buffer exists for `id` and return it.
fn grad_buf<'a>(grads: &'a mut [Option<Tensor>], nodes: &[Node], id: usize) -> &'a mut Tensor {
    if grads[id].is_none() {
        grads[id] = Some(Tensor::zeros(nodes[id].value.shape()));
    }
    grads[id].as_mut().unwrap()
}

#[allow(clippy::too_many_lines)]
fn backward_op(nodes: &[Node], grads: &mut [Option<Tensor>], id: usize, g: &Tensor) {
    match &nodes[id].op {
        Op::Input | Op::Param(_) => {}
        Op::Add(a, b) => {
            grad_buf(grads, nodes, a.0).add_assign(g);
            grad_buf(grads, nodes, b.0).add_assign(g);
        }
        Op::Sub(a, b) => {
            grad_buf(grads, nodes, a.0).add_assign(g);
            let gb = grad_buf(grads, nodes, b.0);
            for (o, &gv) in gb.data_mut().iter_mut().zip(g.data()) {
                *o -= gv;
            }
        }
        Op::Mul(a, b) => {
            let (a, b) = (*a, *b);
            {
                let bval = nodes[b.0].value.data().to_vec();
                let ga = grad_buf(grads, nodes, a.0);
                for ((o, &gv), &bv) in ga.data_mut().iter_mut().zip(g.data()).zip(bval.iter()) {
                    *o += gv * bv;
                }
            }
            {
                let aval = nodes[a.0].value.data().to_vec();
                let gb = grad_buf(grads, nodes, b.0);
                for ((o, &gv), &av) in gb.data_mut().iter_mut().zip(g.data()).zip(aval.iter()) {
                    *o += gv * av;
                }
            }
        }
        Op::Scale(a, s) => {
            let s = *s;
            let ga = grad_buf(grads, nodes, a.0);
            for (o, &gv) in ga.data_mut().iter_mut().zip(g.data()) {
                *o += gv * s;
            }
        }
        Op::AddBias(x, b) => {
            grad_buf(grads, nodes, x.0).add_assign(g);
            let (rows, d) = nodes[x.0].value.as_2d();
            let gb = grad_buf(grads, nodes, b.0);
            let gbd = gb.data_mut();
            for r in 0..rows {
                for (i, gv) in gbd.iter_mut().enumerate().take(d) {
                    *gv += g.data()[r * d + i];
                }
            }
        }
        Op::MatMul(a, b) => {
            let (a, b) = (*a, *b);
            let (m, k) = nodes[a.0].value.as_2d();
            let n = nodes[b.0].value.dim(1);
            // dA += dC @ B^T  (B stored [k,n]; use bt kernel with B as [n,k]? —
            // matmul_bt_acc expects the transposed operand stored [n,k], but B is
            // [k,n]; dC @ B^T has inner dim n: dA[m,k] = dC[m,n] @ (B^T)[n,k],
            // where (B^T)[n,k] stored row-major equals B [k,n] column-major, i.e.
            // we need "dC times rows of B as columns" — that is exactly
            // matmul_bt_acc(dC, B, dA, m, n, k) with B interpreted [k, n].
            {
                let bval = nodes[b.0].value.data().to_vec();
                let ga = grad_buf(grads, nodes, a.0);
                matmul_bt_acc(g.data(), &bval, ga.data_mut(), m, n, k);
            }
            // dB += A^T @ dC
            {
                let aval = nodes[a.0].value.data().to_vec();
                let gb = grad_buf(grads, nodes, b.0);
                matmul_at_acc(&aval, g.data(), gb.data_mut(), m, k, n);
            }
        }
        Op::Gelu(x) => unary_bwd(nodes, grads, *x, g, act::gelu_grad),
        Op::Silu(x) => unary_bwd(nodes, grads, *x, g, act::silu_grad),
        Op::Relu(x) => unary_bwd(nodes, grads, *x, g, act::relu_grad),
        Op::Tanh(x) => unary_bwd(nodes, grads, *x, g, act::tanh_grad),
        Op::LayerNorm { x, gamma, beta } => {
            let (x, gamma, beta) = (*x, *gamma, *beta);
            let (rows, d) = nodes[x.0].value.as_2d();
            let (means, rstds) = match &nodes[id].saved {
                Saved::Norm(m, r) => (m.clone(), r.clone()),
                _ => unreachable!("layernorm saved state"),
            };
            let xval = nodes[x.0].value.data().to_vec();
            let gval = nodes[gamma.0].value.data().to_vec();
            let mut dx = vec![0.0f32; rows * d];
            let mut dgamma = vec![0.0f32; d];
            let mut dbeta = vec![0.0f32; d];
            norm::layernorm_bwd(
                &xval,
                &gval,
                g.data(),
                &means,
                &rstds,
                &mut dx,
                &mut dgamma,
                &mut dbeta,
                rows,
                d,
            );
            add_into(grad_buf(grads, nodes, x.0), &dx);
            add_into(grad_buf(grads, nodes, gamma.0), &dgamma);
            add_into(grad_buf(grads, nodes, beta.0), &dbeta);
        }
        Op::RmsNorm { x, gamma } => {
            let (x, gamma) = (*x, *gamma);
            let (rows, d) = nodes[x.0].value.as_2d();
            let rrms = match &nodes[id].saved {
                Saved::Rrms(r) => r.clone(),
                _ => unreachable!("rmsnorm saved state"),
            };
            let xval = nodes[x.0].value.data().to_vec();
            let gval = nodes[gamma.0].value.data().to_vec();
            let mut dx = vec![0.0f32; rows * d];
            let mut dgamma = vec![0.0f32; d];
            norm::rmsnorm_bwd(&xval, &gval, g.data(), &rrms, &mut dx, &mut dgamma, rows, d);
            add_into(grad_buf(grads, nodes, x.0), &dx);
            add_into(grad_buf(grads, nodes, gamma.0), &dgamma);
        }
        Op::Softmax(x) => {
            let x = *x;
            let (rows, d) = nodes[id].value.as_2d();
            let p = nodes[id].value.data().to_vec();
            let mut ds = vec![0.0f32; rows * d];
            softmax_rows_bwd(&p, g.data(), &mut ds, rows, d);
            add_into(grad_buf(grads, nodes, x.0), &ds);
        }
        Op::CrossEntropy {
            logits,
            targets,
            n_valid,
        } => {
            let logits = *logits;
            let n_valid = *n_valid;
            let (n, v) = nodes[logits.0].value.as_2d();
            let probs = match &nodes[id].saved {
                Saved::Probs(p) => p.clone(),
                _ => unreachable!("cross entropy saved state"),
            };
            let seed = g.item() / n_valid as f32;
            let targets = targets.clone();
            let gl = grad_buf(grads, nodes, logits.0);
            let gld = gl.data_mut();
            for (r, &t) in targets.iter().enumerate() {
                if t == IGNORE_INDEX {
                    continue;
                }
                for c in 0..v {
                    let mut dv = probs[r * v + c];
                    if c == t as usize {
                        dv -= 1.0;
                    }
                    gld[r * v + c] += seed * dv;
                }
            }
            let _ = n;
        }
        Op::Mse { pred, target } => {
            let pred = *pred;
            let n = nodes[pred.0].value.numel() as f32;
            let seed = g.item() * 2.0 / n;
            let pval = nodes[pred.0].value.data().to_vec();
            let tval = target.data().to_vec();
            let gp = grad_buf(grads, nodes, pred.0);
            for ((o, &p), &t) in gp.data_mut().iter_mut().zip(pval.iter()).zip(tval.iter()) {
                *o += seed * (p - t);
            }
        }
        Op::Sum(x) => {
            let seed = g.item();
            let gx = grad_buf(grads, nodes, x.0);
            for o in gx.data_mut().iter_mut() {
                *o += seed;
            }
        }
        Op::Mean(x) => {
            let n = nodes[x.0].value.numel() as f32;
            let seed = g.item() / n;
            let gx = grad_buf(grads, nodes, x.0);
            for o in gx.data_mut().iter_mut() {
                *o += seed;
            }
        }
        Op::Embedding { table, ids } => {
            let table = *table;
            let d = nodes[table.0].value.dim(1);
            let ids = ids.clone();
            let gt = grad_buf(grads, nodes, table.0);
            let gtd = gt.data_mut();
            for (r, &idx) in ids.iter().enumerate() {
                let idx = idx as usize;
                for i in 0..d {
                    gtd[idx * d + i] += g.data()[r * d + i];
                }
            }
        }
        Op::Rotary { x, t, d, base } => {
            // Rotation is orthogonal: the gradient transforms by the inverse
            // rotation.
            let (x, t, d, base) = (*x, *t, *d, *base);
            let mut dg = g.data().to_vec();
            rotary_apply(&mut dg, t, d, base, true);
            add_into(grad_buf(grads, nodes, x.0), &dg);
        }
        Op::Attention {
            q,
            k,
            v,
            bh,
            t,
            d,
            causal,
        } => {
            let (q, k, v, bh, t, d, causal) = (*q, *k, *v, *bh, *t, *d, *causal);
            let saved = match &nodes[id].saved {
                Saved::Attn(s) => s.clone(),
                _ => unreachable!("attention saved state"),
            };
            let qv = nodes[q.0].value.data().to_vec();
            let kv = nodes[k.0].value.data().to_vec();
            let vv = nodes[v.0].value.data().to_vec();
            let ov = nodes[id].value.data().to_vec();
            let mut dq = vec![0.0f32; qv.len()];
            let mut dk = vec![0.0f32; kv.len()];
            let mut dv = vec![0.0f32; vv.len()];
            attention_bwd(
                &qv,
                &kv,
                &vv,
                &ov,
                g.data(),
                &saved,
                &mut dq,
                &mut dk,
                &mut dv,
                bh,
                t,
                d,
                causal,
            );
            add_into(grad_buf(grads, nodes, q.0), &dq);
            add_into(grad_buf(grads, nodes, k.0), &dk);
            add_into(grad_buf(grads, nodes, v.0), &dv);
        }
        Op::Reshape(x) => {
            let x = *x;
            let gx = grad_buf(grads, nodes, x.0);
            add_into(gx, g.data());
        }
        Op::SplitHeads { x, b, t, h, d } => {
            let (x, b, t, h, d) = (*x, *b, *t, *h, *d);
            let gx = grad_buf(grads, nodes, x.0);
            let gxd = gx.data_mut();
            for bi in 0..b {
                for ti in 0..t {
                    for hi in 0..h {
                        let dst = ((bi * t + ti) * h + hi) * d;
                        let s = ((bi * h + hi) * t + ti) * d;
                        for i in 0..d {
                            gxd[dst + i] += g.data()[s + i];
                        }
                    }
                }
            }
        }
        Op::MergeHeads { x, b, t, h, d } => {
            let (x, b, t, h, d) = (*x, *b, *t, *h, *d);
            let gx = grad_buf(grads, nodes, x.0);
            let gxd = gx.data_mut();
            for bi in 0..b {
                for hi in 0..h {
                    for ti in 0..t {
                        let dst = ((bi * h + hi) * t + ti) * d;
                        let s = ((bi * t + ti) * h + hi) * d;
                        for i in 0..d {
                            gxd[dst + i] += g.data()[s + i];
                        }
                    }
                }
            }
        }
        Op::Concat(a, b) => {
            let (a, b) = (*a, *b);
            let (ra, da) = nodes[a.0].value.as_2d();
            let (_, db) = nodes[b.0].value.as_2d();
            {
                let ga = grad_buf(grads, nodes, a.0);
                let gad = ga.data_mut();
                for r in 0..ra {
                    for i in 0..da {
                        gad[r * da + i] += g.data()[r * (da + db) + i];
                    }
                }
            }
            {
                let gb = grad_buf(grads, nodes, b.0);
                let gbd = gb.data_mut();
                for r in 0..ra {
                    for i in 0..db {
                        gbd[r * db + i] += g.data()[r * (da + db) + da + i];
                    }
                }
            }
        }
        Op::IndexSelect { x, idx } => {
            let x = *x;
            let (_, d) = nodes[x.0].value.as_2d();
            let idx = idx.clone();
            let gx = grad_buf(grads, nodes, x.0);
            let gxd = gx.data_mut();
            for (r, &i) in idx.iter().enumerate() {
                let i = i as usize;
                for c in 0..d {
                    gxd[i * d + c] += g.data()[r * d + c];
                }
            }
        }
        Op::SegmentSum { x, seg } => {
            let x = *x;
            let (_, d) = nodes[x.0].value.as_2d();
            let seg = seg.clone();
            let gx = grad_buf(grads, nodes, x.0);
            let gxd = gx.data_mut();
            for (r, &s) in seg.iter().enumerate() {
                let s = s as usize;
                for c in 0..d {
                    gxd[r * d + c] += g.data()[s * d + c];
                }
            }
        }
        Op::GroupMeanRows { x, group } => {
            let (x, group) = (*x, *group);
            let (rows, d) = nodes[x.0].value.as_2d();
            let inv = 1.0 / group as f32;
            let gx = grad_buf(grads, nodes, x.0);
            let gxd = gx.data_mut();
            for r in 0..rows {
                let o = r / group;
                for c in 0..d {
                    gxd[r * d + c] += g.data()[o * d + c] * inv;
                }
            }
        }
        Op::Dropout { x, mask } => {
            let x = *x;
            let mask = mask.clone();
            let gx = grad_buf(grads, nodes, x.0);
            for ((o, &gv), &m) in gx.data_mut().iter_mut().zip(g.data()).zip(mask.iter()) {
                *o += gv * m;
            }
        }
        Op::SyncSum { x } => {
            grad_buf(grads, nodes, x.0).add_assign(g);
        }
        Op::SyncGrad { x, comm } => {
            let x = *x;
            let comm = comm.clone();
            let mut buf = g.data().to_vec();
            comm.0.allreduce(&mut buf);
            add_into(grad_buf(grads, nodes, x.0), &buf);
        }
        Op::RingSum { parts } => {
            let parts = parts.clone();
            for p in parts {
                grad_buf(grads, nodes, p.0).add_assign(g);
            }
        }
        Op::TpPart => {}
        Op::TpJoin { x, parts } => {
            let x = *x;
            let parts = parts.clone();
            let n = parts.len() + 1;
            let mut vecs: Vec<Vec<f32>> = Vec::with_capacity(n);
            for p in &parts {
                match &grads[p.0] {
                    Some(gp) => vecs.push(gp.data().to_vec()),
                    None => vecs.push(vec![0.0; g.numel()]),
                }
            }
            vecs.push(g.data().to_vec());
            let folded = ring_fold(&vecs, &ring_chunks(g.numel(), n));
            add_into(grad_buf(grads, nodes, x.0), &folded);
        }
    }
}

fn unary_bwd(nodes: &[Node], grads: &mut [Option<Tensor>], x: Var, g: &Tensor, df: fn(f32) -> f32) {
    let xval = nodes[x.0].value.data().to_vec();
    let gx = grad_buf(grads, nodes, x.0);
    for ((o, &gv), &xv) in gx.data_mut().iter_mut().zip(g.data()).zip(xval.iter()) {
        *o += gv * df(xv);
    }
}

fn add_into(dst: &mut Tensor, src: &[f32]) {
    debug_assert_eq!(dst.numel(), src.len());
    for (o, &s) in dst.data_mut().iter_mut().zip(src.iter()) {
        *o += s;
    }
}
