//! Property-based tests for the synthetic materials universe and corpus
//! pipeline.

use matgpt_corpus::materials::gap_model;
use matgpt_corpus::{BandGapClass, MaterialGenerator, ELEMENTS};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every generated material is internally consistent.
    #[test]
    fn materials_are_well_formed(seed in 0u64..5000) {
        let mats = MaterialGenerator::new(seed).generate(5);
        for m in &mats {
            // composition indices valid, counts positive
            for &(e, c) in &m.composition {
                prop_assert!(e < ELEMENTS.len());
                prop_assert!(c >= 1);
            }
            // sites reference composition entries
            let n_atoms: usize = m.composition.iter().map(|&(_, c)| c as usize).sum();
            prop_assert_eq!(m.sites.len(), n_atoms);
            for s in &m.sites {
                prop_assert!(s.species < m.composition.len());
            }
            // class matches gap
            prop_assert_eq!(m.class, BandGapClass::from_gap(m.band_gap));
            // gap in range
            prop_assert!((0.0..=9.0).contains(&m.band_gap));
            // physicochemical summaries finite
            prop_assert!(m.ionicity().is_finite());
            prop_assert!((0.0..=1.0).contains(&m.metallic_fraction()));
            prop_assert!(m.mean_bond_length() > 0.0);
        }
    }

    /// The ground-truth decomposition holds: the gap equals
    /// f(structure) + g(composition) up to the bounded noise and clamping.
    #[test]
    fn gap_decomposition_holds(seed in 0u64..5000) {
        let mats = MaterialGenerator::new(seed).generate(4);
        for m in &mats {
            let f = gap_model::f_structure(m.mean_bond_length());
            let g = gap_model::g_composition(m.ionicity(), m.metallic_fraction());
            let raw = f + g;
            // band_gap = clamp(raw + noise); noise is ~N(0, 0.15), so the
            // reconstruction is within 6 sigma unless clamped
            if m.band_gap > 0.0 && m.band_gap < 9.0 {
                prop_assert!(
                    (m.band_gap - raw).abs() < 6.0 * gap_model::NOISE,
                    "gap {} vs f+g {}",
                    m.band_gap,
                    raw
                );
            }
        }
    }

    /// Distances satisfy the metric triangle inequality under the
    /// minimum-image convention... within a periodic-cell tolerance; we
    /// check symmetry and identity which must hold exactly.
    #[test]
    fn distance_axioms(seed in 0u64..2000) {
        let mats = MaterialGenerator::new(seed).generate(2);
        for m in &mats {
            let n = m.sites.len();
            for i in 0..n {
                prop_assert!(m.distance(i, i) < 1e-6);
                for j in 0..n {
                    prop_assert!((m.distance(i, j) - m.distance(j, i)).abs() < 1e-6);
                    prop_assert!(m.distance(i, j) >= 0.0);
                }
            }
        }
    }

    /// Generators with different seeds produce different universes, and
    /// the same seed reproduces exactly.
    #[test]
    fn seeding_behaviour(seed in 0u64..2000) {
        let a = MaterialGenerator::new(seed).generate(3);
        let b = MaterialGenerator::new(seed).generate(3);
        let c = MaterialGenerator::new(seed ^ 0xffff_ffff).generate(3);
        for (x, y) in a.iter().zip(b.iter()) {
            prop_assert_eq!(&x.formula, &y.formula);
            prop_assert_eq!(x.band_gap, y.band_gap);
        }
        let same = a.iter().zip(c.iter()).filter(|(x, y)| x.formula == y.formula).count();
        prop_assert!(same < 3, "different seeds should diverge");
    }
}

#[test]
fn corpus_statistics_track_universe() {
    use matgpt_corpus::{build_corpus, CorpusConfig};
    let c = build_corpus(&CorpusConfig {
        n_materials: 80,
        total_docs: 250,
        offtopic_fraction: 0.25,
        seed: 99,
    });
    // every document mentions at least one formula from the universe
    let mentioned = c
        .documents
        .iter()
        .filter(|d| c.materials.iter().any(|m| d.contains(&m.formula)))
        .count();
    assert!(
        mentioned * 10 >= c.documents.len() * 9,
        "{mentioned}/{}",
        c.documents.len()
    );
}
