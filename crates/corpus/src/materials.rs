//! The synthetic materials universe.
//!
//! Every downstream experiment shares this generative model. A material's
//! band gap decomposes as
//!
//! ```text
//! gap = f(structure) + g(composition) + noise
//! ```
//!
//! where `f` depends on bond lengths (visible to a structure-fed GNN) and
//! `g` depends on composition chemistry (electronegativity spread and
//! metallic fraction — the information the text corpus *writes about* and
//! an LLM embedding can therefore capture). This is the causal mechanism
//! behind the paper's Table V: GNN + LLM-embedding fusion beats
//! structure-only GNNs because the embedding carries `g`.

use crate::elements::{Element, ELEMENTS};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Band-gap category, as the paper describes ("materials in nature can be
/// classified by band gap into a few categories").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum BandGapClass {
    /// Essentially zero gap.
    Conductor,
    /// 0.1 – 3 eV.
    Semiconductor,
    /// > 3 eV.
    Insulator,
}

impl BandGapClass {
    /// Classify a gap value in eV.
    pub fn from_gap(gap: f32) -> Self {
        if gap < 0.1 {
            BandGapClass::Conductor
        } else if gap < 3.0 {
            BandGapClass::Semiconductor
        } else {
            BandGapClass::Insulator
        }
    }

    /// Lower-case English name used in generated text.
    pub fn name(&self) -> &'static str {
        match self {
            BandGapClass::Conductor => "conductor",
            BandGapClass::Semiconductor => "semiconductor",
            BandGapClass::Insulator => "insulator",
        }
    }
}

/// One atomic site in the unit cell.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Site {
    /// Index into [`Material::composition`].
    pub species: usize,
    /// Fractional coordinates in the unit cell.
    pub frac: [f32; 3],
}

/// A synthetic crystalline material.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Material {
    /// Canonical chemical formula, e.g. `BaTiO3`.
    pub formula: String,
    /// (element index into [`ELEMENTS`], count in formula unit).
    pub composition: Vec<(usize, u8)>,
    /// Cubic lattice parameter in Å.
    pub lattice_a: f32,
    /// Atomic sites.
    pub sites: Vec<Site>,
    /// Ground-truth band gap in eV.
    pub band_gap: f32,
    /// Ground-truth formation energy in eV/atom (secondary property).
    pub formation_energy: f32,
    /// Band-gap class.
    pub class: BandGapClass,
}

impl Material {
    /// The element struct for a site.
    pub fn element_of_site(&self, site: usize) -> &'static Element {
        &ELEMENTS[self.composition[self.sites[site].species].0]
    }

    /// Cartesian coordinates of a site in Å.
    pub fn cartesian(&self, site: usize) -> [f32; 3] {
        let f = self.sites[site].frac;
        [
            f[0] * self.lattice_a,
            f[1] * self.lattice_a,
            f[2] * self.lattice_a,
        ]
    }

    /// Minimum-image distance between two sites in Å.
    pub fn distance(&self, i: usize, j: usize) -> f32 {
        let a = self.sites[i].frac;
        let b = self.sites[j].frac;
        let mut d2 = 0.0f32;
        for k in 0..3 {
            let mut df = (a[k] - b[k]).abs();
            if df > 0.5 {
                df = 1.0 - df;
            }
            let dx = df * self.lattice_a;
            d2 += dx * dx;
        }
        d2.sqrt()
    }

    /// Mean nearest-neighbour bond length in Å (the structure signal).
    pub fn mean_bond_length(&self) -> f32 {
        let n = self.sites.len();
        if n < 2 {
            return self.lattice_a;
        }
        let mut total = 0.0f32;
        for i in 0..n {
            let mut best = f32::INFINITY;
            for j in 0..n {
                if i != j {
                    best = best.min(self.distance(i, j));
                }
            }
            total += best;
        }
        total / n as f32
    }

    /// Composition-weighted electronegativity spread (ionicity proxy).
    pub fn ionicity(&self) -> f32 {
        let chis: Vec<(f32, f32)> = self
            .composition
            .iter()
            .map(|&(e, c)| (ELEMENTS[e].electronegativity, c as f32))
            .collect();
        let total: f32 = chis.iter().map(|&(_, c)| c).sum();
        let mean: f32 = chis.iter().map(|&(x, c)| x * c).sum::<f32>() / total;
        (chis
            .iter()
            .map(|&(x, c)| c * (x - mean) * (x - mean))
            .sum::<f32>()
            / total)
            .sqrt()
    }

    /// Composition-weighted metallic fraction.
    pub fn metallic_fraction(&self) -> f32 {
        let total: f32 = self.composition.iter().map(|&(_, c)| c as f32).sum();
        self.composition
            .iter()
            .filter(|&&(e, _)| ELEMENTS[e].metallic)
            .map(|&(_, c)| c as f32)
            .sum::<f32>()
            / total
    }
}

/// Coefficients of the ground-truth band-gap model. Exposed so tests and
/// DESIGN.md can reference the exact construction.
pub mod gap_model {
    /// Weight of the structure term (bond-length driven).
    pub const STRUCTURE_W: f32 = 2.0;
    /// Bond-length offset (Å).
    pub const BOND_REF: f32 = 2.1;
    /// Weight of the ionicity (composition) term.
    pub const IONICITY_W: f32 = 2.4;
    /// Weight of the non-metallic-fraction (composition) term.
    pub const NONMETAL_W: f32 = 1.6;
    /// Global offset.
    pub const OFFSET: f32 = -0.9;
    /// Gaussian noise sigma (eV).
    pub const NOISE: f32 = 0.15;

    /// Structure component of the gap.
    pub fn f_structure(mean_bond: f32) -> f32 {
        STRUCTURE_W * (mean_bond - BOND_REF)
    }

    /// Composition component of the gap.
    pub fn g_composition(ionicity: f32, metallic_fraction: f32) -> f32 {
        IONICITY_W * ionicity + NONMETAL_W * (1.0 - metallic_fraction) + OFFSET
    }
}

/// Deterministic generator of synthetic materials.
pub struct MaterialGenerator {
    rng: ChaCha8Rng,
}

impl MaterialGenerator {
    /// New generator with a fixed seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Generate `n` materials.
    pub fn generate(&mut self, n: usize) -> Vec<Material> {
        (0..n).map(|_| self.one()).collect()
    }

    fn one(&mut self) -> Material {
        let rng = &mut self.rng;
        // composition: 2-4 distinct elements with counts 1-3
        let k = rng.gen_range(2..=4usize);
        let mut picked: Vec<usize> = Vec::new();
        while picked.len() < k {
            let e = rng.gen_range(0..ELEMENTS.len());
            if !picked.contains(&e) {
                picked.push(e);
            }
        }
        picked.sort_unstable(); // canonical element order by table position
        let composition: Vec<(usize, u8)> = picked
            .into_iter()
            .map(|e| (e, rng.gen_range(1..=3u8)))
            .collect();
        let formula = composition
            .iter()
            .map(|&(e, c)| {
                if c == 1 {
                    ELEMENTS[e].symbol.to_string()
                } else {
                    format!("{}{}", ELEMENTS[e].symbol, c)
                }
            })
            .collect::<String>();

        // sites: one per formula-unit atom on a jittered grid
        let n_atoms: usize = composition.iter().map(|&(_, c)| c as usize).sum();
        let grid = (n_atoms as f32).cbrt().ceil() as usize;
        let lattice_a = rng.gen_range(3.4..6.8f32);
        let mut sites = Vec::with_capacity(n_atoms);
        let mut cell = 0usize;
        for (sp, &(_, count)) in composition.iter().enumerate() {
            for _ in 0..count {
                let gx = cell % grid;
                let gy = (cell / grid) % grid;
                let gz = cell / (grid * grid);
                cell += 1;
                let jitter = 0.25 / grid as f32;
                let frac = [
                    (gx as f32 + 0.5) / grid as f32 + rng.gen_range(-jitter..jitter),
                    (gy as f32 + 0.5) / grid as f32 + rng.gen_range(-jitter..jitter),
                    (gz as f32 + 0.5) / grid as f32 + rng.gen_range(-jitter..jitter),
                ];
                sites.push(Site { species: sp, frac });
            }
        }

        let mut m = Material {
            formula,
            composition,
            lattice_a,
            sites,
            band_gap: 0.0,
            formation_energy: 0.0,
            class: BandGapClass::Conductor,
        };
        let noise: f32 = {
            // Box-Muller
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
        };
        let raw = gap_model::f_structure(m.mean_bond_length())
            + gap_model::g_composition(m.ionicity(), m.metallic_fraction())
            + gap_model::NOISE * noise;
        m.band_gap = raw.clamp(0.0, 9.0);
        m.class = BandGapClass::from_gap(m.band_gap);
        // formation energy: a smoother function of the same physics with
        // far less noise — the paper notes it is easier to predict than
        // the band gap
        m.formation_energy = -(1.5 * m.ionicity()
            + 0.8 * (1.0 - m.metallic_fraction())
            + 0.3 * (m.mean_bond_length() - 2.1))
            + 0.02 * noise;
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = MaterialGenerator::new(7).generate(5);
        let b = MaterialGenerator::new(7).generate(5);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.formula, y.formula);
            assert_eq!(x.band_gap, y.band_gap);
        }
    }

    #[test]
    fn gaps_cover_all_classes() {
        let mats = MaterialGenerator::new(1).generate(500);
        let mut counts = [0usize; 3];
        for m in &mats {
            match m.class {
                BandGapClass::Conductor => counts[0] += 1,
                BandGapClass::Semiconductor => counts[1] += 1,
                BandGapClass::Insulator => counts[2] += 1,
            }
        }
        assert!(counts.iter().all(|&c| c > 10), "class counts {counts:?}");
    }

    #[test]
    fn gap_is_bounded_and_finite() {
        for m in MaterialGenerator::new(2).generate(200) {
            assert!(m.band_gap.is_finite());
            assert!((0.0..=9.0).contains(&m.band_gap), "{}", m.band_gap);
        }
    }

    #[test]
    fn class_thresholds() {
        assert_eq!(BandGapClass::from_gap(0.0), BandGapClass::Conductor);
        assert_eq!(BandGapClass::from_gap(1.5), BandGapClass::Semiconductor);
        assert_eq!(BandGapClass::from_gap(5.0), BandGapClass::Insulator);
    }

    #[test]
    fn formula_is_canonical_and_nonempty() {
        for m in MaterialGenerator::new(3).generate(50) {
            assert!(!m.formula.is_empty());
            assert!(m.formula.chars().next().unwrap().is_ascii_uppercase());
            // element order follows the table, so regenerating from
            // composition reproduces the formula
            let rebuilt: String = m
                .composition
                .iter()
                .map(|&(e, c)| {
                    if c == 1 {
                        ELEMENTS[e].symbol.to_string()
                    } else {
                        format!("{}{}", ELEMENTS[e].symbol, c)
                    }
                })
                .collect();
            assert_eq!(rebuilt, m.formula);
        }
    }

    #[test]
    fn minimum_image_distance_is_symmetric_and_bounded() {
        let mats = MaterialGenerator::new(4).generate(10);
        for m in &mats {
            let n = m.sites.len();
            for i in 0..n {
                for j in 0..n {
                    let dij = m.distance(i, j);
                    let dji = m.distance(j, i);
                    assert!((dij - dji).abs() < 1e-6);
                    // max minimum-image distance is a*sqrt(3)/2
                    assert!(dij <= m.lattice_a * 0.9);
                }
            }
        }
    }

    #[test]
    fn composition_signal_moves_the_gap() {
        // ionic, non-metallic composition must out-gap a fully metallic one
        let g_ionic = gap_model::g_composition(1.2, 0.2);
        let g_metal = gap_model::g_composition(0.1, 1.0);
        assert!(g_ionic > g_metal + 1.0);
    }

    #[test]
    fn structure_signal_moves_the_gap() {
        assert!(gap_model::f_structure(2.8) > gap_model::f_structure(1.8) + 1.0);
    }
}
