//! Domain screening of aggregated sources.
//!
//! The paper fine-tunes SciBERT on a small domain-labelled dataset and uses
//! the resulting classifier to filter materials-science documents out of
//! CORE/MAG/Aminer. Our substitute is a from-scratch logistic-regression
//! classifier over hashed bag-of-words features, trained on a small
//! labelled set exactly as the paper describes — same pipeline role, much
//! lighter model.

use serde::{Deserialize, Serialize};

/// Hashed bag-of-words logistic regression.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScreeningClassifier {
    weights: Vec<f32>,
    bias: f32,
    dims: usize,
}

fn hash_word(word: &str, dims: usize) -> usize {
    // FNV-1a, stable across runs/platforms
    let mut h: u64 = 0xcbf29ce484222325;
    for b in word.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    (h % dims as u64) as usize
}

impl ScreeningClassifier {
    /// Feature vector of a document (L2-normalised hashed counts).
    fn featurize(&self, text: &str) -> Vec<(usize, f32)> {
        featurize(text, self.dims)
    }

    /// Train on `(text, is_materials)` pairs with plain SGD.
    pub fn train(labeled: &[(String, bool)], dims: usize, epochs: usize, lr: f32) -> Self {
        let mut clf = Self {
            weights: vec![0.0; dims],
            bias: 0.0,
            dims,
        };
        let feats: Vec<(Vec<(usize, f32)>, f32)> = labeled
            .iter()
            .map(|(t, y)| (featurize(t, dims), if *y { 1.0 } else { 0.0 }))
            .collect();
        for _ in 0..epochs {
            for (f, y) in &feats {
                let p = clf.raw_score(f);
                let err = sigmoid(p) - y;
                clf.bias -= lr * err;
                for &(i, v) in f {
                    clf.weights[i] -= lr * err * v;
                }
            }
        }
        clf
    }

    fn raw_score(&self, feats: &[(usize, f32)]) -> f32 {
        self.bias + feats.iter().map(|&(i, v)| self.weights[i] * v).sum::<f32>()
    }

    /// Probability that `text` is materials science.
    pub fn probability(&self, text: &str) -> f32 {
        sigmoid(self.raw_score(&self.featurize(text)))
    }

    /// Binary decision at threshold 0.5.
    pub fn is_materials(&self, text: &str) -> bool {
        self.probability(text) >= 0.5
    }

    /// Partition a mixed document stream, returning (kept, dropped).
    pub fn screen(&self, docs: Vec<String>) -> (Vec<String>, Vec<String>) {
        let mut keep = Vec::new();
        let mut drop = Vec::new();
        for d in docs {
            if self.is_materials(&d) {
                keep.push(d);
            } else {
                drop.push(d);
            }
        }
        (keep, drop)
    }

    /// Accuracy on a labelled set.
    pub fn accuracy(&self, labeled: &[(String, bool)]) -> f64 {
        if labeled.is_empty() {
            return 0.0;
        }
        let correct = labeled
            .iter()
            .filter(|(t, y)| self.is_materials(t) == *y)
            .count();
        correct as f64 / labeled.len() as f64
    }
}

fn featurize(text: &str, dims: usize) -> Vec<(usize, f32)> {
    let mut counts: std::collections::HashMap<usize, f32> = std::collections::HashMap::new();
    for w in text.split_whitespace() {
        let w = w.to_ascii_lowercase();
        *counts.entry(hash_word(&w, dims)).or_insert(0.0) += 1.0;
    }
    let norm: f32 = counts.values().map(|v| v * v).sum::<f32>().sqrt();
    let inv = if norm > 0.0 { 1.0 / norm } else { 0.0 };
    let mut v: Vec<(usize, f32)> = counts.into_iter().map(|(i, c)| (i, c * inv)).collect();
    v.sort_unstable_by_key(|&(i, _)| i);
    v
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::materials::MaterialGenerator;
    use crate::templates::{material_abstract, offtopic_abstract};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn labeled_set(n: usize, seed: u64) -> Vec<(String, bool)> {
        let mats = MaterialGenerator::new(seed).generate(n);
        let mut rng = ChaCha8Rng::seed_from_u64(seed + 1);
        let mut out = Vec::new();
        for m in &mats {
            out.push((material_abstract(m, &mut rng), true));
            out.push((offtopic_abstract(&mut rng), false));
        }
        out
    }

    #[test]
    fn classifier_learns_the_domain() {
        let train = labeled_set(60, 10);
        let test = labeled_set(40, 99);
        let clf = ScreeningClassifier::train(&train, 1024, 20, 0.5);
        let acc = clf.accuracy(&test);
        assert!(acc > 0.95, "screening accuracy {acc}");
    }

    #[test]
    fn screen_partitions_stream() {
        let train = labeled_set(60, 20);
        let clf = ScreeningClassifier::train(&train, 1024, 20, 0.5);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mats = MaterialGenerator::new(30).generate(10);
        let mut docs: Vec<String> = mats
            .iter()
            .map(|m| material_abstract(m, &mut rng))
            .collect();
        let n_pos = docs.len();
        docs.extend((0..10).map(|_| offtopic_abstract(&mut rng)));
        let (keep, drop) = clf.screen(docs);
        assert!(keep.len() >= n_pos - 2, "kept {}", keep.len());
        assert!(drop.len() >= 8, "dropped {}", drop.len());
    }

    #[test]
    fn hashing_is_stable() {
        assert_eq!(hash_word("band", 512), hash_word("band", 512));
        assert_ne!(hash_word("band", 512), hash_word("gap", 512));
    }

    #[test]
    fn untrained_classifier_is_uncertain() {
        let clf = ScreeningClassifier {
            weights: vec![0.0; 64],
            bias: 0.0,
            dims: 64,
        };
        assert!((clf.probability("anything at all") - 0.5).abs() < 1e-6);
    }
}
