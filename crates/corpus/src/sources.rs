//! The data-source registry mirroring the paper's Table I.
//!
//! The paper aggregates four bibliographic sources (CORE, MAG, Aminer,
//! SCOPUS) totalling 26.5 M abstracts, 0.3 M full texts and ~15 B tokens.
//! We reproduce the registry with the paper's headline numbers and a
//! configurable down-scaling factor that maps each source to a synthetic
//! document budget for actual generation.

use serde::{Deserialize, Serialize};

/// One bibliographic data source.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DataSource {
    /// Source name as in Table I.
    pub name: &'static str,
    /// Millions of abstracts in the paper.
    pub abstracts_m: f64,
    /// Millions of full-text documents in the paper (0 if none).
    pub full_text_m: f64,
    /// Billions of tokens contributed in the paper.
    pub tokens_b: f64,
    /// Whether the source arrives pre-filtered to materials science
    /// (SCOPUS does; the rest require classifier screening).
    pub prefiltered: bool,
}

/// The paper's Table I.
pub const SOURCES: &[DataSource] = &[
    DataSource {
        name: "CORE",
        abstracts_m: 2.5,
        full_text_m: 0.3,
        tokens_b: 8.8,
        prefiltered: false,
    },
    DataSource {
        name: "MAG",
        abstracts_m: 15.0,
        full_text_m: 0.0,
        tokens_b: 3.5,
        prefiltered: false,
    },
    DataSource {
        name: "Aminer",
        abstracts_m: 3.0,
        full_text_m: 0.0,
        tokens_b: 1.2,
        prefiltered: false,
    },
    DataSource {
        name: "SCOPUS",
        abstracts_m: 6.0,
        full_text_m: 0.0,
        tokens_b: 1.5,
        prefiltered: true,
    },
];

/// Aggregate totals across sources — must match Table I's "All" row.
pub fn totals() -> (f64, f64, f64) {
    let a = SOURCES.iter().map(|s| s.abstracts_m).sum();
    let f = SOURCES.iter().map(|s| s.full_text_m).sum();
    let t = SOURCES.iter().map(|s| s.tokens_b).sum();
    (a, f, t)
}

/// Number of synthetic documents to generate for a source, given a total
/// synthetic budget. Budgets are proportional to the paper's abstract
/// counts.
pub fn synthetic_budget(source: &DataSource, total_docs: usize) -> usize {
    let (all_abstracts, _, _) = totals();
    ((source.abstracts_m / all_abstracts) * total_docs as f64).round() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_match_table_one() {
        let (a, f, t) = totals();
        assert!((a - 26.5).abs() < 1e-9, "abstracts {a}");
        assert!((f - 0.3).abs() < 1e-9, "full texts {f}");
        assert!((t - 15.0).abs() < 1e-9, "tokens {t}");
    }

    #[test]
    fn budgets_sum_to_total_within_rounding() {
        let total = 10_000;
        let sum: usize = SOURCES.iter().map(|s| synthetic_budget(s, total)).sum();
        assert!((sum as i64 - total as i64).abs() <= SOURCES.len() as i64);
    }

    #[test]
    fn scopus_is_prefiltered_others_not() {
        for s in SOURCES {
            assert_eq!(s.prefiltered, s.name == "SCOPUS");
        }
    }

    #[test]
    fn mag_is_largest_by_abstracts() {
        let max = SOURCES
            .iter()
            .max_by(|a, b| a.abstracts_m.partial_cmp(&b.abstracts_m).unwrap())
            .unwrap();
        assert_eq!(max.name, "MAG");
    }
}
