//! A compact periodic-table excerpt with the physical properties the
//! synthetic materials model needs.
//!
//! Values are approximate (Pauling electronegativity, covalent radius in
//! Å, typical valence) — the generator only needs realistic *relative*
//! magnitudes, not reference-grade data.

/// One chemical element.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Element {
    /// Chemical symbol.
    pub symbol: &'static str,
    /// Atomic number.
    pub z: u8,
    /// Pauling electronegativity.
    pub electronegativity: f32,
    /// Covalent radius in Å.
    pub radius: f32,
    /// Typical valence electron count.
    pub valence: u8,
    /// Atomic mass (u).
    pub mass: f32,
    /// True for metallic elements.
    pub metallic: bool,
}

/// The element table used by the generator.
pub const ELEMENTS: &[Element] = &[
    Element {
        symbol: "Li",
        z: 3,
        electronegativity: 0.98,
        radius: 1.28,
        valence: 1,
        mass: 6.94,
        metallic: true,
    },
    Element {
        symbol: "Be",
        z: 4,
        electronegativity: 1.57,
        radius: 0.96,
        valence: 2,
        mass: 9.01,
        metallic: true,
    },
    Element {
        symbol: "B",
        z: 5,
        electronegativity: 2.04,
        radius: 0.84,
        valence: 3,
        mass: 10.81,
        metallic: false,
    },
    Element {
        symbol: "C",
        z: 6,
        electronegativity: 2.55,
        radius: 0.76,
        valence: 4,
        mass: 12.01,
        metallic: false,
    },
    Element {
        symbol: "N",
        z: 7,
        electronegativity: 3.04,
        radius: 0.71,
        valence: 5,
        mass: 14.01,
        metallic: false,
    },
    Element {
        symbol: "O",
        z: 8,
        electronegativity: 3.44,
        radius: 0.66,
        valence: 6,
        mass: 16.00,
        metallic: false,
    },
    Element {
        symbol: "F",
        z: 9,
        electronegativity: 3.98,
        radius: 0.57,
        valence: 7,
        mass: 19.00,
        metallic: false,
    },
    Element {
        symbol: "Na",
        z: 11,
        electronegativity: 0.93,
        radius: 1.66,
        valence: 1,
        mass: 22.99,
        metallic: true,
    },
    Element {
        symbol: "Mg",
        z: 12,
        electronegativity: 1.31,
        radius: 1.41,
        valence: 2,
        mass: 24.31,
        metallic: true,
    },
    Element {
        symbol: "Al",
        z: 13,
        electronegativity: 1.61,
        radius: 1.21,
        valence: 3,
        mass: 26.98,
        metallic: true,
    },
    Element {
        symbol: "Si",
        z: 14,
        electronegativity: 1.90,
        radius: 1.11,
        valence: 4,
        mass: 28.09,
        metallic: false,
    },
    Element {
        symbol: "P",
        z: 15,
        electronegativity: 2.19,
        radius: 1.07,
        valence: 5,
        mass: 30.97,
        metallic: false,
    },
    Element {
        symbol: "S",
        z: 16,
        electronegativity: 2.58,
        radius: 1.05,
        valence: 6,
        mass: 32.06,
        metallic: false,
    },
    Element {
        symbol: "Cl",
        z: 17,
        electronegativity: 3.16,
        radius: 1.02,
        valence: 7,
        mass: 35.45,
        metallic: false,
    },
    Element {
        symbol: "K",
        z: 19,
        electronegativity: 0.82,
        radius: 2.03,
        valence: 1,
        mass: 39.10,
        metallic: true,
    },
    Element {
        symbol: "Ca",
        z: 20,
        electronegativity: 1.00,
        radius: 1.76,
        valence: 2,
        mass: 40.08,
        metallic: true,
    },
    Element {
        symbol: "Ti",
        z: 22,
        electronegativity: 1.54,
        radius: 1.60,
        valence: 4,
        mass: 47.87,
        metallic: true,
    },
    Element {
        symbol: "V",
        z: 23,
        electronegativity: 1.63,
        radius: 1.53,
        valence: 5,
        mass: 50.94,
        metallic: true,
    },
    Element {
        symbol: "Cr",
        z: 24,
        electronegativity: 1.66,
        radius: 1.39,
        valence: 6,
        mass: 52.00,
        metallic: true,
    },
    Element {
        symbol: "Mn",
        z: 25,
        electronegativity: 1.55,
        radius: 1.39,
        valence: 7,
        mass: 54.94,
        metallic: true,
    },
    Element {
        symbol: "Fe",
        z: 26,
        electronegativity: 1.83,
        radius: 1.32,
        valence: 8,
        mass: 55.85,
        metallic: true,
    },
    Element {
        symbol: "Co",
        z: 27,
        electronegativity: 1.88,
        radius: 1.26,
        valence: 9,
        mass: 58.93,
        metallic: true,
    },
    Element {
        symbol: "Ni",
        z: 28,
        electronegativity: 1.91,
        radius: 1.24,
        valence: 10,
        mass: 58.69,
        metallic: true,
    },
    Element {
        symbol: "Cu",
        z: 29,
        electronegativity: 1.90,
        radius: 1.32,
        valence: 11,
        mass: 63.55,
        metallic: true,
    },
    Element {
        symbol: "Zn",
        z: 30,
        electronegativity: 1.65,
        radius: 1.22,
        valence: 12,
        mass: 65.38,
        metallic: true,
    },
    Element {
        symbol: "Ga",
        z: 31,
        electronegativity: 1.81,
        radius: 1.22,
        valence: 3,
        mass: 69.72,
        metallic: true,
    },
    Element {
        symbol: "Ge",
        z: 32,
        electronegativity: 2.01,
        radius: 1.20,
        valence: 4,
        mass: 72.63,
        metallic: false,
    },
    Element {
        symbol: "As",
        z: 33,
        electronegativity: 2.18,
        radius: 1.19,
        valence: 5,
        mass: 74.92,
        metallic: false,
    },
    Element {
        symbol: "Se",
        z: 34,
        electronegativity: 2.55,
        radius: 1.20,
        valence: 6,
        mass: 78.97,
        metallic: false,
    },
    Element {
        symbol: "Sr",
        z: 38,
        electronegativity: 0.95,
        radius: 1.95,
        valence: 2,
        mass: 87.62,
        metallic: true,
    },
    Element {
        symbol: "Zr",
        z: 40,
        electronegativity: 1.33,
        radius: 1.75,
        valence: 4,
        mass: 91.22,
        metallic: true,
    },
    Element {
        symbol: "Nb",
        z: 41,
        electronegativity: 1.60,
        radius: 1.64,
        valence: 5,
        mass: 92.91,
        metallic: true,
    },
    Element {
        symbol: "Mo",
        z: 42,
        electronegativity: 2.16,
        radius: 1.54,
        valence: 6,
        mass: 95.95,
        metallic: true,
    },
    Element {
        symbol: "Ag",
        z: 47,
        electronegativity: 1.93,
        radius: 1.45,
        valence: 11,
        mass: 107.87,
        metallic: true,
    },
    Element {
        symbol: "Cd",
        z: 48,
        electronegativity: 1.69,
        radius: 1.44,
        valence: 12,
        mass: 112.41,
        metallic: true,
    },
    Element {
        symbol: "In",
        z: 49,
        electronegativity: 1.78,
        radius: 1.42,
        valence: 3,
        mass: 114.82,
        metallic: true,
    },
    Element {
        symbol: "Sn",
        z: 50,
        electronegativity: 1.96,
        radius: 1.39,
        valence: 4,
        mass: 118.71,
        metallic: true,
    },
    Element {
        symbol: "Sb",
        z: 51,
        electronegativity: 2.05,
        radius: 1.39,
        valence: 5,
        mass: 121.76,
        metallic: false,
    },
    Element {
        symbol: "Te",
        z: 52,
        electronegativity: 2.10,
        radius: 1.38,
        valence: 6,
        mass: 127.60,
        metallic: false,
    },
    Element {
        symbol: "Ba",
        z: 56,
        electronegativity: 0.89,
        radius: 2.15,
        valence: 2,
        mass: 137.33,
        metallic: true,
    },
    Element {
        symbol: "W",
        z: 74,
        electronegativity: 2.36,
        radius: 1.62,
        valence: 6,
        mass: 183.84,
        metallic: true,
    },
    Element {
        symbol: "Pb",
        z: 82,
        electronegativity: 2.33,
        radius: 1.46,
        valence: 4,
        mass: 207.20,
        metallic: true,
    },
    Element {
        symbol: "Bi",
        z: 83,
        electronegativity: 2.02,
        radius: 1.48,
        valence: 5,
        mass: 208.98,
        metallic: false,
    },
];

/// Look up an element by symbol.
pub fn by_symbol(symbol: &str) -> Option<&'static Element> {
    ELEMENTS.iter().find(|e| e.symbol == symbol)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_no_duplicate_symbols() {
        for (i, a) in ELEMENTS.iter().enumerate() {
            for b in &ELEMENTS[i + 1..] {
                assert_ne!(a.symbol, b.symbol);
            }
        }
    }

    #[test]
    fn lookup_by_symbol() {
        assert_eq!(by_symbol("O").unwrap().z, 8);
        assert_eq!(by_symbol("Ti").unwrap().valence, 4);
        assert!(by_symbol("Xx").is_none());
    }

    #[test]
    fn properties_in_physical_ranges() {
        for e in ELEMENTS {
            assert!(
                e.electronegativity > 0.5 && e.electronegativity < 4.5,
                "{}",
                e.symbol
            );
            assert!(e.radius > 0.3 && e.radius < 2.5, "{}", e.symbol);
            assert!(e.mass > 5.0 && e.mass < 250.0, "{}", e.symbol);
        }
    }

    #[test]
    fn mix_of_metals_and_nonmetals() {
        let metals = ELEMENTS.iter().filter(|e| e.metallic).count();
        assert!(metals > 10 && metals < ELEMENTS.len() - 5);
    }
}
