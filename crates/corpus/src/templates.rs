//! Text templates turning synthetic materials into abstracts.
//!
//! The generated prose deliberately co-locates each formula with its
//! band-gap class and approximate gap value, so a language model trained on
//! the corpus can encode composition→property knowledge in its embeddings —
//! the mechanism the paper exploits in its scientific downstream task.

use crate::materials::{BandGapClass, Material};
use rand::Rng;

const APPLICATIONS: &[&str] = &[
    "photovoltaic absorbers",
    "transparent electronics",
    "thermoelectric generators",
    "solid state batteries",
    "catalytic converters",
    "optical coatings",
    "power electronics",
    "gas sensing devices",
    "light emitting diodes",
    "radiation detectors",
];

const METHODS: &[&str] = &[
    "density functional theory calculations",
    "high throughput screening",
    "solid state synthesis followed by x ray diffraction",
    "molecular beam epitaxy",
    "sol gel processing",
    "spark plasma sintering",
    "first principles calculations",
    "chemical vapor deposition",
];

const LATTICES: &[&str] = &["cubic", "tetragonal", "orthorhombic", "hexagonal"];

/// Generate one materials-science abstract for `m`.
pub fn material_abstract<R: Rng>(m: &Material, rng: &mut R) -> String {
    let lattice = LATTICES[rng.gen_range(0..LATTICES.len())];
    let app = APPLICATIONS[rng.gen_range(0..APPLICATIONS.len())];
    let method = METHODS[rng.gen_range(0..METHODS.len())];
    let gap_word = match m.class {
        BandGapClass::Conductor => "negligible",
        BandGapClass::Semiconductor => {
            if m.band_gap < 1.5 {
                "narrow"
            } else {
                "moderate"
            }
        }
        BandGapClass::Insulator => "wide",
    };
    let mut s = String::with_capacity(512);
    match rng.gen_range(0..4) {
        0 => {
            s.push_str(&format!(
                "We investigate the compound {} using {} . ",
                m.formula, method
            ));
            s.push_str(&format!(
                "The material crystallizes in a {} structure with a lattice parameter of {:.2} angstrom . ",
                lattice, m.lattice_a
            ));
            s.push_str(&format!(
                "Our results show that {} is a {} with a {} band gap of {:.1} eV . ",
                m.formula,
                m.class.name(),
                gap_word,
                m.band_gap
            ));
            s.push_str(&format!(
                "These properties make {} a promising candidate for {} .",
                m.formula, app
            ));
        }
        1 => {
            s.push_str(&format!(
                "The electronic structure of {} is studied by {} . ",
                m.formula, method
            ));
            s.push_str(&format!(
                "We find a {} band gap of {:.1} eV indicating {} behavior . ",
                gap_word,
                m.band_gap,
                m.class.name()
            ));
            s.push_str(&format!(
                "The computed formation energy of {:.2} eV per atom suggests the {} phase is stable . ",
                m.formation_energy, lattice
            ));
            s.push_str(&format!(
                "We discuss the potential of {} for {} .",
                m.formula, app
            ));
        }
        2 => {
            s.push_str(&format!(
                "Novel {} {} is synthesized and characterized by {} . ",
                m.class.name(),
                m.formula,
                method
            ));
            s.push_str(&format!(
                "Measurements reveal a band gap of approximately {:.1} eV consistent with the {} gap expected for this composition . ",
                m.band_gap, gap_word
            ));
            s.push_str(&format!(
                "The {} unit cell has a lattice constant of {:.2} angstrom . ",
                lattice, m.lattice_a
            ));
            s.push_str(&format!("Applications in {} are discussed .", app));
        }
        _ => {
            s.push_str(&format!(
                "Band gap engineering of {} for {} is reported . ",
                m.formula, app
            ));
            s.push_str(&format!(
                "Using {} we determine that the material behaves as a {} . ",
                method,
                m.class.name()
            ));
            s.push_str(&format!(
                "The {} band gap of {:.1} eV and the {} lattice with parameter {:.2} angstrom agree with prior reports on {} .",
                gap_word,
                m.band_gap,
                lattice,
                m.lattice_a,
                m.formula
            ));
        }
    }
    s
}

const OFFTOPIC_SUBJECTS: &[&str] = &[
    "protein folding kinetics in aqueous solution",
    "galaxy cluster dynamics at high redshift",
    "monetary policy transmission in emerging markets",
    "gene regulatory networks in drosophila development",
    "ocean circulation response to wind forcing",
    "reinforcement learning for robotic manipulation",
    "seismic wave propagation in layered media",
    "epidemic spreading on temporal contact networks",
];

const OFFTOPIC_VERBS: &[&str] = &[
    "We model",
    "This paper analyzes",
    "We present new observations of",
    "We develop a framework for",
    "Simulations reveal the role of",
];

/// Generate a non-materials-science abstract (screening negative class).
pub fn offtopic_abstract<R: Rng>(rng: &mut R) -> String {
    let subj = OFFTOPIC_SUBJECTS[rng.gen_range(0..OFFTOPIC_SUBJECTS.len())];
    let verb = OFFTOPIC_VERBS[rng.gen_range(0..OFFTOPIC_VERBS.len())];
    let subj2 = OFFTOPIC_SUBJECTS[rng.gen_range(0..OFFTOPIC_SUBJECTS.len())];
    format!(
        "{} {} . The analysis combines statistical inference with mechanistic models of {} . \
         We quantify uncertainty and discuss implications for future studies .",
        verb, subj, subj2
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::materials::MaterialGenerator;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn abstract_mentions_formula_and_class() {
        let mats = MaterialGenerator::new(1).generate(20);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        for m in &mats {
            let a = material_abstract(m, &mut rng);
            assert!(a.contains(&m.formula), "missing formula in: {a}");
            assert!(a.contains(m.class.name()), "missing class in: {a}");
            assert!(a.contains("band gap"), "missing property in: {a}");
        }
    }

    #[test]
    fn abstract_mentions_rounded_gap_value() {
        let mats = MaterialGenerator::new(2).generate(10);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for m in &mats {
            let a = material_abstract(m, &mut rng);
            let val = format!("{:.1} eV", m.band_gap);
            assert!(a.contains(&val), "missing '{val}' in: {a}");
        }
    }

    #[test]
    fn offtopic_has_no_band_gap() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..20 {
            let a = offtopic_abstract(&mut rng);
            assert!(!a.contains("band gap"));
            assert!(!a.is_empty());
        }
    }

    #[test]
    fn templates_vary() {
        let mats = MaterialGenerator::new(3).generate(1);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let outs: Vec<String> = (0..8)
            .map(|_| material_abstract(&mats[0], &mut rng))
            .collect();
        let distinct: std::collections::HashSet<&String> = outs.iter().collect();
        assert!(distinct.len() > 1, "templates should vary");
    }
}
