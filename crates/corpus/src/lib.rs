#![warn(missing_docs)]

//! # matgpt-corpus
//!
//! The synthetic materials-science data pipeline, reproducing the paper's
//! Sec. III "Data Sources" at laptop scale:
//!
//! * [`materials`] — a generative materials universe with a known
//!   `gap = f(structure) + g(composition) + noise` ground truth;
//! * [`templates`] — abstract generation that co-locates formulas with
//!   their band-gap class/values (the signal LLM embeddings later carry);
//! * [`sources`] — the Table I registry (CORE/MAG/Aminer/SCOPUS) with
//!   proportional synthetic budgets;
//! * [`screening`] — the SciBERT-classifier substitute: a from-scratch
//!   logistic regression trained on a small labelled set, used to filter
//!   unfiltered sources;
//! * [`dataset`] — corpus assembly ([`build_corpus`]) and `[B, T]`
//!   next-token batching ([`TokenDataset`]).

pub mod dataset;
pub mod elements;
pub mod materials;
pub mod screening;
pub mod sources;
pub mod templates;

pub use dataset::{build_corpus, Batch, Corpus, CorpusConfig, SourceStats, TokenDataset};
pub use elements::{Element, ELEMENTS};
pub use materials::{BandGapClass, Material, MaterialGenerator};
pub use screening::ScreeningClassifier;
