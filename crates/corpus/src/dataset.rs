//! Corpus assembly and token batching.
//!
//! [`build_corpus`] runs the paper's data pipeline end-to-end at synthetic
//! scale: per-source document generation (Table I proportions), classifier
//! screening of the unfiltered sources, and aggregation. [`TokenDataset`]
//! then tokenizes the documents into one contiguous EOS-separated stream
//! and serves `[B, T]` next-token-prediction batches.

use crate::materials::{Material, MaterialGenerator};
use crate::screening::ScreeningClassifier;
use crate::sources::{synthetic_budget, SOURCES};
use crate::templates::{material_abstract, offtopic_abstract};
use matgpt_tokenizer::{special, Tokenizer};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Configuration for synthetic corpus construction.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CorpusConfig {
    /// Number of distinct materials in the universe.
    pub n_materials: usize,
    /// Total document budget across all sources.
    pub total_docs: usize,
    /// Fraction of *unfiltered* source docs that are off-topic (and should
    /// be screened away).
    pub offtopic_fraction: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        Self {
            n_materials: 400,
            total_docs: 2_000,
            offtopic_fraction: 0.3,
            seed: 42,
        }
    }
}

/// Per-source generation/screening statistics (the synthetic Table I).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SourceStats {
    /// Source name.
    pub name: &'static str,
    /// Documents generated for the source.
    pub generated: usize,
    /// Documents kept after screening.
    pub kept: usize,
    /// Tokens contributed (filled by [`TokenDataset`] when built with a
    /// tokenizer; 0 until then).
    pub tokens: usize,
}

/// A built synthetic corpus.
#[derive(Clone, Debug)]
pub struct Corpus {
    /// The material universe the text talks about.
    pub materials: Vec<Material>,
    /// Kept documents (all materials-science).
    pub documents: Vec<String>,
    /// Per-source stats.
    pub stats: Vec<SourceStats>,
    /// Screening accuracy on a held-out labelled set.
    pub screening_accuracy: f64,
}

/// Build the corpus per `cfg`: generate materials, emit documents per
/// source (with off-topic contamination on unfiltered sources), train the
/// screening classifier on a small labelled set, screen, and aggregate.
pub fn build_corpus(cfg: &CorpusConfig) -> Corpus {
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let materials = MaterialGenerator::new(cfg.seed ^ 0x6d61_7467).generate(cfg.n_materials);

    // labelled set for the screening classifier (paper: "a small
    // domain-labeled dataset")
    let mut labeled = Vec::new();
    for m in materials.iter().take(50) {
        labeled.push((material_abstract(m, &mut rng), true));
        labeled.push((offtopic_abstract(&mut rng), false));
    }
    let mut holdout: Vec<(String, bool)> = Vec::with_capacity(60);
    for m in materials.iter().skip(50).take(30) {
        holdout.push((material_abstract(m, &mut rng), true));
    }
    for _ in 0..30 {
        holdout.push((offtopic_abstract(&mut rng), false));
    }
    let clf = ScreeningClassifier::train(&labeled, 2048, 20, 0.5);
    let screening_accuracy = clf.accuracy(&holdout);

    let mut documents = Vec::with_capacity(cfg.total_docs);
    let mut stats = Vec::new();
    for source in SOURCES {
        let budget = synthetic_budget(source, cfg.total_docs);
        let mut raw = Vec::with_capacity(budget);
        for _ in 0..budget {
            let offtopic =
                !source.prefiltered && rng.gen_bool(cfg.offtopic_fraction.clamp(0.0, 1.0));
            if offtopic {
                raw.push(offtopic_abstract(&mut rng));
            } else {
                let m = &materials[rng.gen_range(0..materials.len())];
                raw.push(material_abstract(m, &mut rng));
            }
        }
        let kept = if source.prefiltered {
            raw
        } else {
            clf.screen(raw).0
        };
        stats.push(SourceStats {
            name: source.name,
            generated: budget,
            kept: kept.len(),
            tokens: 0,
        });
        documents.extend(kept);
    }

    Corpus {
        materials,
        documents,
        stats,
        screening_accuracy,
    }
}

/// One training batch: `inputs[b][t]` predicts `targets[b][t]`.
#[derive(Clone, Debug)]
pub struct Batch {
    /// Token ids, row-major `[batch, seq]`.
    pub inputs: Vec<u32>,
    /// Next-token targets, same layout.
    pub targets: Vec<u32>,
    /// Batch size.
    pub batch: usize,
    /// Sequence length.
    pub seq: usize,
}

/// A tokenized corpus serving next-token batches.
pub struct TokenDataset {
    train: Vec<u32>,
    val: Vec<u32>,
    rng: ChaCha8Rng,
}

impl TokenDataset {
    /// Tokenize `documents` (EOS-joined) and split `val_fraction` off the
    /// tail for validation.
    pub fn new<T: Tokenizer + ?Sized>(
        documents: &[String],
        tokenizer: &T,
        val_fraction: f64,
        seed: u64,
    ) -> Self {
        let mut stream = Vec::new();
        for d in documents {
            stream.extend(tokenizer.encode(d));
            stream.push(special::EOS);
        }
        let n_val = ((stream.len() as f64) * val_fraction) as usize;
        let split = stream.len().saturating_sub(n_val);
        let val = stream.split_off(split);
        Self {
            train: stream,
            val,
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// The sampling-RNG stream cursor. Rebuilding the dataset with the
    /// same documents/tokenizer/seed and seeking to this position via
    /// [`TokenDataset::seek`] reproduces the exact batch sequence an
    /// interrupted run would have seen — the data-loader half of
    /// checkpoint-restart.
    pub fn cursor(&self) -> u128 {
        self.rng.get_word_pos()
    }

    /// Seek the sampling RNG to a cursor from [`TokenDataset::cursor`].
    pub fn seek(&mut self, cursor: u128) {
        self.rng.set_word_pos(cursor);
    }

    /// Training tokens available.
    pub fn train_tokens(&self) -> usize {
        self.train.len()
    }

    /// Validation tokens available.
    pub fn val_tokens(&self) -> usize {
        self.val.len()
    }

    /// Sample a random training batch of shape `[batch, seq]`.
    pub fn sample_batch(&mut self, batch: usize, seq: usize) -> Batch {
        assert!(
            self.train.len() > seq + 1,
            "dataset too small: {} tokens for seq {}",
            self.train.len(),
            seq
        );
        let mut inputs = Vec::with_capacity(batch * seq);
        let mut targets = Vec::with_capacity(batch * seq);
        for _ in 0..batch {
            let start = self.rng.gen_range(0..self.train.len() - seq - 1);
            inputs.extend_from_slice(&self.train[start..start + seq]);
            targets.extend_from_slice(&self.train[start + 1..start + seq + 1]);
        }
        Batch {
            inputs,
            targets,
            batch,
            seq,
        }
    }

    /// Deterministic validation batches covering the validation split.
    pub fn val_batches(&self, batch: usize, seq: usize) -> Vec<Batch> {
        let mut out = Vec::new();
        let window = seq + 1;
        let mut starts: Vec<usize> = (0..self.val.len().saturating_sub(window))
            .step_by(seq)
            .collect();
        while !starts.len().is_multiple_of(batch) {
            starts.pop();
        }
        for chunk in starts.chunks(batch) {
            if chunk.len() < batch {
                break;
            }
            let mut inputs = Vec::with_capacity(batch * seq);
            let mut targets = Vec::with_capacity(batch * seq);
            for &s in chunk {
                inputs.extend_from_slice(&self.val[s..s + seq]);
                targets.extend_from_slice(&self.val[s + 1..s + seq + 1]);
            }
            out.push(Batch {
                inputs,
                targets,
                batch,
                seq,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matgpt_tokenizer::BpeTokenizer;

    fn small_corpus() -> Corpus {
        build_corpus(&CorpusConfig {
            n_materials: 60,
            total_docs: 200,
            offtopic_fraction: 0.3,
            seed: 11,
        })
    }

    #[test]
    fn corpus_build_screens_offtopic() {
        let c = small_corpus();
        assert!(c.screening_accuracy > 0.9, "acc {}", c.screening_accuracy);
        // Unfiltered sources should have dropped roughly the off-topic share
        for s in &c.stats {
            if s.name != "SCOPUS" {
                assert!(
                    s.kept < s.generated,
                    "{}: {} of {}",
                    s.name,
                    s.kept,
                    s.generated
                );
            } else {
                assert_eq!(s.kept, s.generated);
            }
        }
        // documents should all talk about materials
        let with_gap = c
            .documents
            .iter()
            .filter(|d| d.contains("band gap"))
            .count();
        assert!(
            with_gap * 10 >= c.documents.len() * 9,
            "{with_gap}/{}",
            c.documents.len()
        );
    }

    #[test]
    fn dataset_batches_have_shifted_targets() {
        let c = small_corpus();
        let tok = BpeTokenizer::train(&c.documents, 512);
        let mut ds = TokenDataset::new(&c.documents, &tok, 0.1, 3);
        assert!(ds.train_tokens() > 1000);
        assert!(ds.val_tokens() > 50);
        let b = ds.sample_batch(4, 32);
        assert_eq!(b.inputs.len(), 4 * 32);
        assert_eq!(b.targets.len(), 4 * 32);
        // target[t] should equal input[t+1] within each row
        for row in 0..4 {
            for t in 0..31 {
                assert_eq!(b.targets[row * 32 + t], b.inputs[row * 32 + t + 1]);
            }
        }
    }

    #[test]
    fn val_batches_are_deterministic_and_within_split() {
        let c = small_corpus();
        let tok = BpeTokenizer::train(&c.documents, 512);
        let ds = TokenDataset::new(&c.documents, &tok, 0.2, 3);
        let a = ds.val_batches(2, 16);
        let b = ds.val_batches(2, 16);
        assert!(!a.is_empty());
        assert_eq!(a.len(), b.len());
        assert_eq!(a[0].inputs, b[0].inputs);
    }

    #[test]
    fn cursor_seek_replays_the_batch_stream() {
        let c = small_corpus();
        let tok = BpeTokenizer::train(&c.documents, 512);
        let mut warm = TokenDataset::new(&c.documents, &tok, 0.1, 7);
        for _ in 0..5 {
            warm.sample_batch(3, 16);
        }
        let cursor = warm.cursor();
        let mut fresh = TokenDataset::new(&c.documents, &tok, 0.1, 7);
        fresh.seek(cursor);
        for _ in 0..4 {
            let a = warm.sample_batch(3, 16);
            let b = fresh.sample_batch(3, 16);
            assert_eq!(a.inputs, b.inputs);
            assert_eq!(a.targets, b.targets);
        }
    }

    #[test]
    fn sampling_is_seed_deterministic() {
        let c = small_corpus();
        let tok = BpeTokenizer::train(&c.documents, 512);
        let mut d1 = TokenDataset::new(&c.documents, &tok, 0.1, 9);
        let mut d2 = TokenDataset::new(&c.documents, &tok, 0.1, 9);
        assert_eq!(d1.sample_batch(2, 8).inputs, d2.sample_batch(2, 8).inputs);
    }
}
