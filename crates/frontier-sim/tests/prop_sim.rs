//! Property-based tests for the Frontier simulator: cost-model sanity
//! laws that must hold for any configuration.

use matgpt_frontier_sim::parallel::Strategy as ParStrategy;
use matgpt_frontier_sim::{
    collective_time, peak_memory_gib, simulate_step, Collective, Constraints, FlashVersion,
    KernelModel, MachineConfig, Partitioning, TrainSetup,
};
use matgpt_model::{ArchKind, GptConfig};
use proptest::prelude::*;

fn arb_cfg() -> impl Strategy<Value = GptConfig> {
    (1usize..=8, 1usize..=8).prop_map(|(layers4, heads)| {
        let heads = heads * 4;
        let layers = layers4 * 4;
        GptConfig {
            layers,
            heads,
            hidden: heads * 64, // head dim 64 — always valid
            ..GptConfig::paper_1_7b(ArchKind::NeoX, 52_000)
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Collective time increases with message size.
    #[test]
    fn collective_monotone_in_bytes(kb in 1u64..1_000_000, extra in 1u64..1_000_000) {
        let m = MachineConfig::frontier();
        let ranks: Vec<usize> = (0..16).collect();
        let small = collective_time(&m, Collective::AllReduce, kb as f64 * 1e3, &ranks);
        let large = collective_time(&m, Collective::AllReduce, (kb + extra) as f64 * 1e3, &ranks);
        prop_assert!(large > small);
    }

    /// Collective time never beats the pure-bandwidth lower bound.
    #[test]
    fn collective_respects_bandwidth_bound(mb in 1u64..10_000) {
        let m = MachineConfig::frontier();
        let bytes = mb as f64 * 1e6;
        let ranks: Vec<usize> = (0..8).collect();
        let t = collective_time(&m, Collective::AllReduce, bytes, &ranks);
        let volume = 2.0 * 7.0 / 8.0 * bytes;
        let bound = volume / (m.intra_node_gbps * 1e9);
        prop_assert!(t >= bound * 0.999, "{} vs bound {}", t, bound);
    }

    /// Memory grows monotonically with sequence length and micro-batch.
    #[test]
    fn memory_monotone(cfg in arb_cfg(), seq_k in 1usize..16, mb in 1usize..4) {
        let part = Partitioning::data_parallel(1);
        let seq = seq_k * 512;
        let m1 = peak_memory_gib(&cfg, mb, seq, FlashVersion::None, &part);
        let m2 = peak_memory_gib(&cfg, mb, seq + 512, FlashVersion::None, &part);
        let m3 = peak_memory_gib(&cfg, mb + 1, seq, FlashVersion::None, &part);
        prop_assert!(m2 > m1);
        prop_assert!(m3 > m1);
        // flash never uses more memory than naive
        let mf = peak_memory_gib(&cfg, mb, seq, FlashVersion::V2, &part);
        prop_assert!(mf <= m1 + 1e-9);
    }

    /// ZeRO sharding is monotone: more ranks, less per-GCD memory.
    #[test]
    fn zero_memory_monotone_in_dp(cfg in arb_cfg(), dp_pow in 1u32..8) {
        let dp = 1usize << dp_pow;
        let p1 = Partitioning { dp, zero1: true, tp: 1, pp: 1 };
        let p2 = Partitioning { dp: dp * 2, zero1: true, tp: 1, pp: 1 };
        let m1 = peak_memory_gib(&cfg, 1, 2048, FlashVersion::V2, &p1);
        let m2 = peak_memory_gib(&cfg, 1, 2048, FlashVersion::V2, &p2);
        prop_assert!(m2 < m1);
    }

    /// Achieved throughput never exceeds the GCD peak.
    #[test]
    fn throughput_below_peak(cfg in arb_cfg(), seq_k in 1usize..4) {
        let km = KernelModel::default();
        for flash in [FlashVersion::None, FlashVersion::V1, FlashVersion::V2] {
            let t = km.achieved_tflops(&cfg, 8, seq_k * 1024, flash);
            prop_assert!(t > 0.0 && t < 191.5, "{t}");
        }
    }

    /// Simulated step reports are internally consistent.
    #[test]
    fn step_report_consistency(
        n_pow in 3u32..9,
        strat_idx in 0usize..4,
        mb in 1usize..4,
    ) {
        let n = 1usize << n_pow;
        let strat = [
            ParStrategy::DataParallel,
            ParStrategy::Zero1,
            ParStrategy::TensorParallel(2),
            ParStrategy::PipelineParallel(2),
        ][strat_idx];
        let mut setup = TrainSetup::new(GptConfig::paper_6_7b(ArchKind::Llama, 52_000), n, strat);
        setup.micro_batch = mb;
        let r = simulate_step(&setup);
        prop_assert!(r.step_s > 0.0);
        prop_assert!(r.compute_s > 0.0);
        prop_assert!(r.comm_exposed_s >= 0.0);
        prop_assert!(r.comm_exposed_s <= r.comm_s + 1e-12);
        prop_assert!(r.step_s >= r.compute_s);
        prop_assert!((r.step_s - (r.compute_s + r.comm_exposed_s + r.io_s)).abs() < 1e-9);
        let (a, b, c) = r.breakdown();
        prop_assert!((a + b + c - 1.0).abs() < 1e-9);
        prop_assert!(r.tflops_per_gcd > 0.0);
        prop_assert!(r.tokens_per_step > 0);
    }

    /// Aggregate throughput never decreases when adding GPUs (weak scaling
    /// with fixed per-device batch).
    #[test]
    fn aggregate_throughput_monotone(n_pow in 3u32..8) {
        let n = 1usize << n_pow;
        let small = simulate_step(&TrainSetup::new(
            GptConfig::paper_1_7b(ArchKind::Llama, 52_000), n, ParStrategy::DataParallel));
        let large = simulate_step(&TrainSetup::new(
            GptConfig::paper_1_7b(ArchKind::Llama, 52_000), n * 2, ParStrategy::DataParallel));
        prop_assert!(large.aggregate_pflops > small.aggregate_pflops);
    }

    /// Constraint checker: satisfied configs really satisfy every equation.
    #[test]
    fn constraints_soundness(
        hidden in 64usize..4096,
        layers in 1usize..48,
        heads in 1usize..64,
        tp in 1usize..4,
        pp in 1usize..4,
        dp in 1usize..64,
    ) {
        let c = Constraints { tp, pp, dp, device_multiple: 8 };
        if c.satisfied(hidden, layers, heads) {
            prop_assert_eq!(hidden % heads, 0);
            prop_assert_eq!(hidden % tp, 0);
            prop_assert_eq!(layers % pp, 0);
            prop_assert_eq!(heads % tp, 0);
            prop_assert_eq!((tp * pp * dp) % 8, 0);
        }
    }
}
