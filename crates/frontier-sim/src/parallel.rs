//! Distributed-training strategy simulation (paper Figs. 7, 8, 11).
//!
//! Each strategy turns one optimizer step into compute phases plus a list
//! of collective calls, then prices them against the machine model.
//! Communication overlaps with the backward pass up to a configurable
//! window, as DeepSpeed/Megatron do; whatever does not fit is exposed on
//! the critical path.

use crate::collectives::{collective_time, wire_bytes, Collective};
use crate::kernels::{FlashVersion, KernelModel};
use crate::machine::MachineConfig;
use crate::memory::{peak_memory_gib, Partitioning};
use matgpt_model::count::total_params;
use matgpt_model::GptConfig;
use serde::{Deserialize, Serialize};

/// Where the two ranks of a TP=2 group live — the paper's Observation 2:
/// "map the partition of model parallelism to the platform network
/// topology to maximize the network bandwidth utilization."
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TpMapping {
    /// Both GCDs of one MI250X (200 GB/s) — the paper's choice.
    IntraMi250x,
    /// Two GPUs in the same node on Infinity Fabric (100 GB/s).
    IntraNode,
    /// Two GPUs on different nodes over Slingshot (100 GB/s + contention).
    InterNode,
}

impl TpMapping {
    /// Representative rank pair for the mapping.
    pub fn ranks(&self) -> [usize; 2] {
        match self {
            TpMapping::IntraMi250x => [0, 1],
            TpMapping::IntraNode => [0, 2],
            TpMapping::InterNode => [0, 8],
        }
    }
}

/// The four strategies the paper evaluates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Strategy {
    /// Vanilla data parallelism (model replicated per GCD).
    DataParallel,
    /// DeepSpeed ZeRO stage 1: optimizer states sharded over all ranks.
    Zero1,
    /// Megatron tensor parallelism with the given partition degree
    /// (the paper studies TP = 2, mapped onto one MI250X).
    TensorParallel(usize),
    /// Pipeline parallelism with the given stage count.
    PipelineParallel(usize),
}

impl Strategy {
    /// Label as used in the paper's figures.
    pub fn label(&self) -> String {
        match self {
            Strategy::DataParallel => "DP".into(),
            Strategy::Zero1 => "ZeRO=1".into(),
            Strategy::TensorParallel(t) => format!("TP={t}"),
            Strategy::PipelineParallel(p) => format!("PP={p}"),
        }
    }
}

/// A full training setup to be simulated.
#[derive(Clone, Debug)]
pub struct TrainSetup {
    /// Model architecture.
    pub cfg: GptConfig,
    /// Machine description.
    pub machine: MachineConfig,
    /// Kernel performance model.
    pub kernel: KernelModel,
    /// Flash attention setting.
    pub flash: FlashVersion,
    /// Number of GCDs used.
    pub n_gcds: usize,
    /// Parallelism strategy.
    pub strategy: Strategy,
    /// Micro-batch size per model replica.
    pub micro_batch: usize,
    /// Sequence length.
    pub seq: usize,
    /// Micro-batches per pipeline flush (controls the PP bubble).
    pub pipeline_chunks: usize,
    /// Fraction of backward compute that can hide communication.
    pub overlap_window: f64,
    /// Gradient-bucket bytes for fused DP all-reduce.
    pub dp_bucket_bytes: f64,
    /// Bucket bytes for ZeRO reduce-scatter / all-gather (smaller, as the
    /// per-tensor launches fuse less).
    pub zero_bucket_bytes: f64,
    /// Topology placement of tensor-parallel groups.
    pub tp_mapping: TpMapping,
    /// Bytes per scalar on the wire (2.0 = bf16, the paper's setting;
    /// the executed-topology cross-check sets 4.0 for its f32 rings).
    pub dtype_bytes: f64,
}

impl TrainSetup {
    /// Reasonable defaults matching the paper's experiments.
    pub fn new(cfg: GptConfig, n_gcds: usize, strategy: Strategy) -> Self {
        Self {
            cfg,
            machine: MachineConfig::frontier(),
            kernel: KernelModel::default(),
            flash: FlashVersion::V2,
            n_gcds,
            strategy,
            micro_batch: 1,
            seq: 2048,
            pipeline_chunks: 2,
            overlap_window: 0.7,
            dp_bucket_bytes: 500e6,
            zero_bucket_bytes: 128e6,
            tp_mapping: TpMapping::IntraMi250x,
            dtype_bytes: 2.0,
        }
    }

    /// Transformer layers resident on one GCD: the busiest pipeline
    /// stage under `PipelineParallel` — the first stage of the executed
    /// topology's first-heavy split ([`matgpt_model::tp::stage_ranges`],
    /// so the simulator prices exactly the split the executor runs) —
    /// all layers otherwise. The single source of truth shared by
    /// [`simulate_step`] and [`crate::trace::step_timeline`]: both must
    /// split compute over the same layer count or the trace timeline
    /// drifts from the priced step.
    pub fn stage_layers(&self) -> usize {
        match self.strategy {
            Strategy::PipelineParallel(p) => {
                let p = p.max(1).min(self.cfg.layers);
                matgpt_model::tp::stage_ranges(self.cfg.layers, p)[0].len()
            }
            _ => self.cfg.layers,
        }
    }

    /// The memory partitioning implied by the strategy.
    pub fn partitioning(&self) -> Partitioning {
        match self.strategy {
            Strategy::DataParallel => Partitioning {
                dp: self.n_gcds,
                zero1: false,
                tp: 1,
                pp: 1,
            },
            Strategy::Zero1 => Partitioning {
                dp: self.n_gcds,
                zero1: true,
                tp: 1,
                pp: 1,
            },
            Strategy::TensorParallel(t) => Partitioning {
                dp: self.n_gcds / t,
                zero1: false,
                tp: t,
                pp: 1,
            },
            Strategy::PipelineParallel(p) => Partitioning {
                dp: self.n_gcds / p,
                zero1: false,
                tp: 1,
                pp: p,
            },
        }
    }
}

/// One recorded class of RCCL calls.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MsgRecord {
    /// Collective type.
    pub collective: Collective,
    /// Bytes per call (buffer size handed to RCCL).
    pub bytes_per_call: f64,
    /// Calls per step per GPU.
    pub calls: usize,
    /// Group size.
    pub group: usize,
}

impl MsgRecord {
    /// Total wire bytes per step per GPU for this record.
    pub fn wire_total(&self) -> f64 {
        wire_bytes(self.collective, self.bytes_per_call, self.group) * self.calls as f64
    }
}

/// The simulated cost of one training step.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StepReport {
    /// Pure compute seconds per step.
    pub compute_s: f64,
    /// Total communication seconds issued (before overlap).
    pub comm_s: f64,
    /// Communication seconds exposed on the critical path.
    pub comm_exposed_s: f64,
    /// Data-movement (IO kernel class) seconds.
    pub io_s: f64,
    /// End-to-end step seconds.
    pub step_s: f64,
    /// Achieved model TFLOPS per GCD.
    pub tflops_per_gcd: f64,
    /// Aggregate PFLOPS across all GCDs.
    pub aggregate_pflops: f64,
    /// Peak memory per GCD (GiB).
    pub memory_gib: f64,
    /// Whether the setup fits in HBM.
    pub fits_memory: bool,
    /// RCCL call records (Fig. 11 input).
    pub msgs: Vec<MsgRecord>,
    /// Tokens processed per step across the job.
    pub tokens_per_step: usize,
}

impl StepReport {
    /// Total RCCL calls per step per GPU.
    pub fn total_calls(&self) -> usize {
        self.msgs.iter().map(|m| m.calls).sum()
    }

    /// Total wire bytes per step per GPU.
    pub fn total_wire_bytes(&self) -> f64 {
        self.msgs.iter().map(|m| m.wire_total()).sum()
    }

    /// Compute / comm / io shares of the critical path (sums to 1) —
    /// what the wall clock and the power sensor see.
    pub fn breakdown(&self) -> (f64, f64, f64) {
        let busy = self.compute_s + self.comm_exposed_s + self.io_s;
        (
            self.compute_s / busy,
            self.comm_exposed_s / busy,
            self.io_s / busy,
        )
    }

    /// Compute / comm / io shares by *kernel time* (sums to 1) — what a
    /// rocprof aggregation reports (Fig. 8 bottom): overlapped
    /// communication kernels still accrue device time.
    pub fn profile_breakdown(&self) -> (f64, f64, f64) {
        let busy = self.compute_s + self.comm_s + self.io_s;
        (self.compute_s / busy, self.comm_s / busy, self.io_s / busy)
    }

    /// Each message record's share of total wire traffic, as
    /// `(collective, bytes_per_call, share)` — the Fig. 11 message-size
    /// breakdown in the same shape the executed topology reports, so
    /// the two histograms can be compared bin by bin.
    pub fn message_shares(&self) -> Vec<(Collective, f64, f64)> {
        let total: f64 = self.msgs.iter().map(MsgRecord::wire_total).sum();
        self.msgs
            .iter()
            .map(|m| {
                (
                    m.collective,
                    m.bytes_per_call,
                    if total > 0.0 {
                        m.wire_total() / total
                    } else {
                        0.0
                    },
                )
            })
            .collect()
    }
}

/// Simulate one training step of `setup`.
pub fn simulate_step(setup: &TrainSetup) -> StepReport {
    let cfg = &setup.cfg;
    let m = &setup.machine;
    let km = &setup.kernel;
    let part = setup.partitioning();
    let params = total_params(cfg) as f64;
    let grad_bytes = setup.dtype_bytes * params; // bf16 by default
    let n = setup.n_gcds;
    assert!(n >= 1, "need at least one GCD");

    let mut msgs: Vec<MsgRecord> = Vec::new();
    let mut comm_critical = 0.0f64; // not overlappable (in forward path)
    let mut comm_overlappable = 0.0f64;

    // ---- compute time per GCD
    let (mut compute, replicas): (f64, usize) = match setup.strategy {
        Strategy::DataParallel | Strategy::Zero1 => (
            km.step_compute_time(
                cfg,
                setup.micro_batch,
                setup.seq,
                setup.flash,
                cfg.layers,
                1,
            ),
            n,
        ),
        Strategy::TensorParallel(t) => {
            // TP halves the GEMM shapes; small efficiency loss from the
            // narrower matrices.
            // narrower sharded GEMMs run further from peak
            let c = km.step_compute_time(
                cfg,
                setup.micro_batch,
                setup.seq,
                setup.flash,
                cfg.layers,
                t,
            ) * 1.15;
            (c, n / t)
        }
        Strategy::PipelineParallel(p) => {
            let layers_here = setup.stage_layers();
            let per_chunk = km.step_compute_time(
                cfg,
                setup.micro_batch,
                setup.seq,
                setup.flash,
                layers_here,
                1,
            );
            // 1F1B-style schedule: bubble fraction (p-1)/(chunks+p-1)
            let chunks = setup.pipeline_chunks.max(1);
            let busy = per_chunk * chunks as f64;
            let total = busy * (chunks + p - 1) as f64 / chunks as f64;
            (total, n / p)
        }
    };

    // ---- communication per strategy
    match setup.strategy {
        Strategy::DataParallel => {
            if n > 1 {
                let group: Vec<usize> = (0..n).collect();
                let calls = (grad_bytes / setup.dp_bucket_bytes).ceil() as usize;
                let per_call = grad_bytes / calls as f64;
                comm_overlappable +=
                    collective_time(m, Collective::AllReduce, per_call, &group) * calls as f64;
                msgs.push(MsgRecord {
                    collective: Collective::AllReduce,
                    bytes_per_call: per_call,
                    calls,
                    group: n,
                });
            }
        }
        Strategy::Zero1 => {
            if n > 1 {
                let group: Vec<usize> = (0..n).collect();
                let calls = (grad_bytes / setup.zero_bucket_bytes).ceil() as usize;
                let per_call = grad_bytes / calls as f64;
                // reduce-scatter of gradients: ZeRO's per-bucket launches
                // overlap the backward only partially
                let rs =
                    collective_time(m, Collective::ReduceScatter, per_call, &group) * calls as f64;
                comm_overlappable += 0.5 * rs;
                comm_critical += 0.5 * rs;
                msgs.push(MsgRecord {
                    collective: Collective::ReduceScatter,
                    bytes_per_call: per_call,
                    calls,
                    group: n,
                });
                // all-gather of updated parameters (blocks next forward —
                // half of it still hides behind the optimizer/step tail)
                let ag = collective_time(m, Collective::AllGather, per_call, &group) * calls as f64;
                comm_overlappable += 0.5 * ag;
                comm_critical += 0.5 * ag;
                msgs.push(MsgRecord {
                    collective: Collective::AllGather,
                    bytes_per_call: per_call,
                    calls,
                    group: n,
                });
            }
        }
        Strategy::TensorParallel(t) => {
            // per-layer activation all-reduces inside the TP group:
            // 2 in forward + 2 in backward (Megatron), on the critical path
            let tp_group: Vec<usize> = if t == 2 {
                setup.tp_mapping.ranks().to_vec()
            } else {
                (0..t).collect()
            };
            let act_bytes = (setup.micro_batch * setup.seq * cfg.hidden) as f64 * setup.dtype_bytes;
            let tp_calls = 4 * cfg.layers;
            comm_critical +=
                collective_time(m, Collective::AllReduce, act_bytes, &tp_group) * tp_calls as f64;
            msgs.push(MsgRecord {
                collective: Collective::AllReduce,
                bytes_per_call: act_bytes,
                calls: tp_calls,
                group: t,
            });
            // DP gradient all-reduce over the replicas (sharded params)
            if replicas > 1 {
                let dp_group: Vec<usize> = (0..replicas).map(|i| i * t).collect();
                let shard_bytes = grad_bytes / t as f64;
                let calls = (shard_bytes / setup.dp_bucket_bytes).ceil() as usize;
                let per_call = shard_bytes / calls as f64;
                comm_overlappable +=
                    collective_time(m, Collective::AllReduce, per_call, &dp_group) * calls as f64;
                msgs.push(MsgRecord {
                    collective: Collective::AllReduce,
                    bytes_per_call: per_call,
                    calls,
                    group: replicas,
                });
            }
        }
        Strategy::PipelineParallel(p) => {
            // stage-boundary activations, twice per chunk (fwd + bwd)
            let act_bytes = (setup.micro_batch * setup.seq * cfg.hidden) as f64 * setup.dtype_bytes;
            let p2p_calls = 2 * setup.pipeline_chunks * (p - 1);
            comm_critical +=
                collective_time(m, Collective::P2p, act_bytes, &[0, 2]) * p2p_calls as f64;
            msgs.push(MsgRecord {
                collective: Collective::P2p,
                bytes_per_call: act_bytes,
                calls: p2p_calls,
                group: 2,
            });
            if replicas > 1 {
                let dp_group: Vec<usize> = (0..replicas).map(|i| i * p).collect();
                let shard_bytes = grad_bytes / p as f64;
                let calls = (shard_bytes / setup.dp_bucket_bytes).ceil() as usize;
                let per_call = shard_bytes / calls as f64;
                comm_overlappable +=
                    collective_time(m, Collective::AllReduce, per_call, &dp_group) * calls as f64;
                msgs.push(MsgRecord {
                    collective: Collective::AllReduce,
                    bytes_per_call: per_call,
                    calls,
                    group: replicas,
                });
            }
            // the bubble already extended compute; chunks multiply compute
            compute *= 1.0;
        }
    }

    // ---- IO kernel class (h2d batch staging + d2h logging + ZeRO d2d)
    let batch_bytes = (setup.micro_batch * setup.seq * replicas / n.max(1)).max(1) as f64 * 8.0;
    let mut io = batch_bytes / (m.staging_gbps * 1e9) + 0.01 * compute;
    if matches!(setup.strategy, Strategy::Zero1) {
        // optimizer-shard gather/scatter staging: the paper observes ZeRO
        // has the most data movement, ~5 % of step time
        io += 0.04 * (compute + comm_overlappable);
    }

    // ---- overlap model
    let window = setup.overlap_window * compute;
    let comm_exposed = comm_critical + (comm_overlappable - window).max(0.0);
    let step = compute + comm_exposed + io;

    // ---- throughput accounting (model FLOPs convention). A pipeline
    // replica processes `pipeline_chunks` micro-batches per step.
    let chunk_mult = match setup.strategy {
        Strategy::PipelineParallel(_) => setup.pipeline_chunks.max(1),
        _ => 1,
    };
    let flops_per_replica =
        matgpt_model::count::train_flops_per_step(cfg, setup.micro_batch, setup.seq)
            * chunk_mult as f64;
    let total_flops = flops_per_replica * replicas as f64;
    let tflops_per_gcd = total_flops / step / n as f64 / 1e12;

    let part_mem = peak_memory_gib(cfg, setup.micro_batch, setup.seq, setup.flash, &part);

    StepReport {
        compute_s: compute,
        comm_s: comm_critical + comm_overlappable,
        comm_exposed_s: comm_exposed,
        io_s: io,
        step_s: step,
        tflops_per_gcd,
        aggregate_pflops: total_flops / step / 1e15,
        memory_gib: part_mem,
        fits_memory: part_mem <= m.gcd_memory_gib,
        msgs,
        tokens_per_step: setup.micro_batch * setup.seq * replicas * chunk_mult,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matgpt_model::ArchKind;

    fn cfg_1_7b() -> GptConfig {
        GptConfig::paper_1_7b(ArchKind::NeoX, 52_000)
    }

    fn cfg_6_7b() -> GptConfig {
        GptConfig::paper_6_7b(ArchKind::NeoX, 52_000)
    }

    #[test]
    fn fig7_single_node_ordering() {
        // Paper Fig. 7 (8 GCDs, 6.7B): ZeRO-1 best (~81 TFLOPS/GCD), then
        // TP=2, with PP=2 performing much worse.
        let zero = simulate_step(&TrainSetup::new(cfg_6_7b(), 8, Strategy::Zero1));
        let tp = simulate_step(&TrainSetup::new(cfg_6_7b(), 8, Strategy::TensorParallel(2)));
        let pp = simulate_step(&TrainSetup::new(
            cfg_6_7b(),
            8,
            Strategy::PipelineParallel(2),
        ));
        assert!(
            zero.tflops_per_gcd > tp.tflops_per_gcd,
            "ZeRO {} vs TP {}",
            zero.tflops_per_gcd,
            tp.tflops_per_gcd
        );
        assert!(
            tp.tflops_per_gcd > pp.tflops_per_gcd * 1.1,
            "TP {} vs PP {}",
            tp.tflops_per_gcd,
            pp.tflops_per_gcd
        );
        assert!(
            (70.0..95.0).contains(&zero.tflops_per_gcd),
            "ZeRO single node {}",
            zero.tflops_per_gcd
        );
    }

    #[test]
    fn fig7_memory_feasibility() {
        // 6.7B pure DP on one GCD does not fit; all three strategies fit.
        let dp1 = simulate_step(&TrainSetup::new(cfg_6_7b(), 1, Strategy::DataParallel));
        assert!(!dp1.fits_memory);
        for s in [
            Strategy::Zero1,
            Strategy::TensorParallel(2),
            Strategy::PipelineParallel(2),
        ] {
            let r = simulate_step(&TrainSetup::new(cfg_6_7b(), 8, s));
            assert!(r.fits_memory, "{} should fit", s.label());
        }
    }

    #[test]
    fn fig8_dp_scaling_efficiency() {
        // Paper: 1.7B DP reaches >18 PFLOPS at 256 GCDs with 88 % scaling
        // efficiency.
        let base = simulate_step(&TrainSetup::new(cfg_1_7b(), 8, Strategy::DataParallel));
        let big = simulate_step(&TrainSetup::new(cfg_1_7b(), 256, Strategy::DataParallel));
        let eff = big.tflops_per_gcd / base.tflops_per_gcd;
        assert!(eff > 0.75, "DP scaling efficiency {eff}");
        assert!(
            big.aggregate_pflops > 15.0,
            "aggregate {} PFLOPS",
            big.aggregate_pflops
        );
    }

    #[test]
    fn fig8_zero_drops_at_scale_tp_sustains() {
        // Paper: 6.7B per-device throughput is about the same for ≤64 GPUs
        // with ZeRO-1, then drops; TP=2 sustains better efficiency at 256.
        let z64 = simulate_step(&TrainSetup::new(cfg_6_7b(), 64, Strategy::Zero1));
        let z256 = simulate_step(&TrainSetup::new(cfg_6_7b(), 256, Strategy::Zero1));
        let t256 = simulate_step(&TrainSetup::new(
            cfg_6_7b(),
            256,
            Strategy::TensorParallel(2),
        ));
        assert!(
            z256.tflops_per_gcd < z64.tflops_per_gcd * 0.95,
            "ZeRO should drop: {} -> {}",
            z64.tflops_per_gcd,
            z256.tflops_per_gcd
        );
        assert!(
            t256.tflops_per_gcd > z256.tflops_per_gcd,
            "TP=2 at 256 ({}) should beat ZeRO at 256 ({})",
            t256.tflops_per_gcd,
            z256.tflops_per_gcd
        );
    }

    #[test]
    fn fig8_zero_comm_fraction_at_scale() {
        // Paper: at 256 GPUs with ZeRO-1 on 6.7B, communication accounts
        // for ~40 % of the step; IO for ~5 %.
        let r = simulate_step(&TrainSetup::new(cfg_6_7b(), 256, Strategy::Zero1));
        let (comp, comm, io) = r.profile_breakdown();
        assert!((0.2..0.6).contains(&comm), "comm share {comm}");
        assert!((0.01..0.12).contains(&io), "io share {io}");
        assert!(comp > 0.4, "compute share {comp}");
    }

    #[test]
    fn fig11_message_accounting() {
        // Paper: ZeRO-1/TP incur over an order of magnitude more RCCL calls
        // than vanilla DP; DP/ZeRO move ~2× the model size per step, TP ~3×.
        // per-device batch matching the paper's production runs (4M-token
        // global batch over 256 GCDs ≈ 8 sequences of 2048 per GCD)
        let at_batch = |cfg: GptConfig, strat: Strategy| {
            let mut s = TrainSetup::new(cfg, 256, strat);
            s.micro_batch = 8;
            simulate_step(&s)
        };
        let dp = at_batch(cfg_1_7b(), Strategy::DataParallel);
        let zero = at_batch(cfg_6_7b(), Strategy::Zero1);
        let tp = at_batch(cfg_6_7b(), Strategy::TensorParallel(2));
        assert!(
            zero.total_calls() > 10 * dp.total_calls(),
            "ZeRO calls {} vs DP {}",
            zero.total_calls(),
            dp.total_calls()
        );
        assert!(
            tp.total_calls() > 10 * dp.total_calls(),
            "TP calls {} vs DP {}",
            tp.total_calls(),
            dp.total_calls()
        );
        let model_bytes_17 = 2.0 * total_params(&cfg_1_7b()) as f64;
        let model_bytes_67 = 2.0 * total_params(&cfg_6_7b()) as f64;
        let dp_ratio = dp.total_wire_bytes() / model_bytes_17;
        let zero_ratio = zero.total_wire_bytes() / model_bytes_67;
        let tp_ratio = tp.total_wire_bytes() / model_bytes_67;
        assert!((1.5..2.5).contains(&dp_ratio), "DP ratio {dp_ratio}");
        assert!((1.5..2.5).contains(&zero_ratio), "ZeRO ratio {zero_ratio}");
        assert!(tp_ratio > zero_ratio, "TP {tp_ratio} vs ZeRO {zero_ratio}");
    }

    #[test]
    fn observation_2_tp_mapping_matters() {
        // Mapping the TP pair onto one MI250X (200 GB/s) beats spreading it
        // within the node, which beats crossing nodes.
        let mut t = [0.0f64; 3];
        for (i, mapping) in [
            TpMapping::IntraMi250x,
            TpMapping::IntraNode,
            TpMapping::InterNode,
        ]
        .iter()
        .enumerate()
        {
            let mut s = TrainSetup::new(cfg_6_7b(), 256, Strategy::TensorParallel(2));
            s.tp_mapping = *mapping;
            t[i] = simulate_step(&s).tflops_per_gcd;
        }
        assert!(t[0] > t[1], "intra-MI250X {} vs intra-node {}", t[0], t[1]);
        assert!(t[1] >= t[2], "intra-node {} vs inter-node {}", t[1], t[2]);
    }

    #[test]
    fn pipeline_bubble_shrinks_with_more_chunks() {
        let mut s = TrainSetup::new(cfg_6_7b(), 8, Strategy::PipelineParallel(2));
        s.pipeline_chunks = 1;
        let few = simulate_step(&s);
        s.pipeline_chunks = 8;
        let many = simulate_step(&s);
        assert!(many.tflops_per_gcd > few.tflops_per_gcd);
    }

    #[test]
    fn flash_improves_throughput_under_any_strategy() {
        for strat in [Strategy::Zero1, Strategy::TensorParallel(2)] {
            let mut s = TrainSetup::new(cfg_6_7b(), 8, strat);
            s.flash = FlashVersion::None;
            let base = simulate_step(&s);
            s.flash = FlashVersion::V2;
            let fast = simulate_step(&s);
            assert!(
                fast.tflops_per_gcd > base.tflops_per_gcd,
                "{}",
                strat.label()
            );
        }
    }
}
