//! Architecture grid search under the paper's constraints, Eqs. (1)–(5),
//! regenerating the Fig. 4 heatmap and the A–H architecture marking.

use crate::kernels::{FlashVersion, KernelModel};
use matgpt_model::count::total_params;
use matgpt_model::{ArchKind, GptConfig};
use serde::{Deserialize, Serialize};

/// The paper's architecture-search constraints.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Constraints {
    /// Tensor-parallel degree `TP`.
    pub tp: usize,
    /// Pipeline-parallel degree `PP`.
    pub pp: usize,
    /// Data-parallel degree `DP`.
    pub dp: usize,
    /// Device-count granularity (8 GCDs per Frontier node).
    pub device_multiple: usize,
}

impl Default for Constraints {
    fn default() -> Self {
        Self {
            tp: 1,
            pp: 1,
            dp: 8,
            device_multiple: 8,
        }
    }
}

impl Constraints {
    /// Check Eqs. (1)–(5) for a candidate `(N_h, N_l, N_a)`.
    pub fn satisfied(&self, hidden: usize, layers: usize, heads: usize) -> bool {
        hidden.is_multiple_of(heads)                                   // (1) N_h % N_a == 0
            && hidden.is_multiple_of(self.tp)                          // (2) N_h % TP == 0
            && layers.is_multiple_of(self.pp)                          // (3) N_l % PP == 0
            && heads.is_multiple_of(self.tp)                           // (4) N_a % TP == 0
            && (self.tp * self.pp * self.dp).is_multiple_of(self.device_multiple)
        // (5)
    }
}

/// One evaluated grid cell.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GridCell {
    /// Layers.
    pub layers: usize,
    /// Hidden size.
    pub hidden: usize,
    /// Heads (the paper couples heads to layers as in Table II).
    pub heads: usize,
    /// Head dimension.
    pub head_dim: usize,
    /// Total parameters.
    pub params: usize,
    /// Throughput without flash attention (TFLOPS/GCD).
    pub tflops_base: f64,
    /// Throughput with flash v1 (equals base when ineligible).
    pub tflops_v1: f64,
    /// Throughput with flash v2.
    pub tflops_v2: f64,
    /// Whether the head dim is a multiple of 8 (the A–H marking).
    pub head_mod8: bool,
}

/// Run the ~1B grid search of Fig. 4: for each layer count, hidden sizes
/// near the 1B-parameter iso-line, heads tied to layers (as in Table II),
/// filtered by the constraints.
pub fn one_b_grid(vocab: usize, seq: usize, km: &KernelModel, cons: &Constraints) -> Vec<GridCell> {
    let layer_options = [16usize, 20, 24, 28, 32];
    let mut cells = Vec::new();
    for &layers in &layer_options {
        let heads = layers; // Table II couples N_a = N_l
                            // scan hidden sizes (multiples of the head count, Eq. 1) across the
                            // band the paper's Fig. 4 heatmap covers
        let lo = 1536usize.div_ceil(heads) * heads;
        let mut hidden = lo;
        while hidden <= 2880 {
            if !cons.satisfied(hidden, layers, heads) {
                hidden += heads;
                continue;
            }
            let cfg = GptConfig {
                hidden,
                layers,
                heads,
                max_seq: seq,
                ..GptConfig::paper_1_7b(ArchKind::NeoX, vocab)
            };
            let params = total_params(&cfg);
            // keep the "around 1B" band (the paper's winner, 24×2304, sits
            // at 1.77B with the 52K vocabulary)
            if !(8e8..2.0e9).contains(&(params as f64)) {
                hidden += heads;
                continue;
            }
            let head_dim = hidden / heads;
            cells.push(GridCell {
                layers,
                hidden,
                heads,
                head_dim,
                params,
                tflops_base: km.achieved_tflops(&cfg, 16, seq, FlashVersion::None),
                tflops_v1: km.achieved_tflops(&cfg, 16, seq, FlashVersion::V1),
                tflops_v2: km.achieved_tflops(&cfg, 16, seq, FlashVersion::V2),
                head_mod8: head_dim % 8 == 0,
            });
            hidden += heads;
        }
    }
    cells
}

/// The best cell by base throughput.
pub fn best_cell(cells: &[GridCell]) -> Option<&GridCell> {
    cells
        .iter()
        .max_by(|a, b| a.tflops_base.partial_cmp(&b.tflops_base).unwrap())
}

/// Extrapolate the grid-search winner to a larger budget, as the paper
/// does for the 6.7B model: keep head_dim a "nice" multiple of 8 (128) and
/// scale layers/hidden together.
pub fn extrapolate_to_6_7b(arch: ArchKind, vocab: usize) -> GptConfig {
    GptConfig::paper_6_7b(arch, vocab)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constraints_match_paper_equations() {
        let c = Constraints {
            tp: 2,
            pp: 2,
            dp: 4,
            device_multiple: 8,
        };
        // 2304 % 24 == 0, 2304 % 2 == 0, 24 % 2 == 0, 24 % 2 == 0, 16 % 8 == 0
        assert!(c.satisfied(2304, 24, 24));
        // violates Eq. (1)
        assert!(!c.satisfied(2300, 24, 24));
        // violates Eq. (3)
        assert!(!c.satisfied(2304, 23, 24));
        // violates Eq. (4)
        assert!(!c.satisfied(2304, 24, 27));
        // violates Eq. (5)
        let c2 = Constraints {
            tp: 1,
            pp: 1,
            dp: 3,
            device_multiple: 8,
        };
        assert!(!c2.satisfied(2304, 24, 24));
    }

    #[test]
    fn grid_covers_multiple_layer_counts_and_param_band() {
        let cells = one_b_grid(
            52_000,
            2048,
            &KernelModel::default(),
            &Constraints::default(),
        );
        assert!(cells.len() >= 15, "grid size {}", cells.len());
        let layer_set: std::collections::BTreeSet<usize> = cells.iter().map(|c| c.layers).collect();
        assert!(layer_set.len() >= 4);
        for c in &cells {
            assert!(
                (8e8..2.0e9).contains(&(c.params as f64)),
                "{} params {}",
                c.hidden,
                c.params
            );
        }
    }

    #[test]
    fn winner_is_24_layers_2304_hidden() {
        // Paper Fig. 4: the best case corresponds to 24 layers with a
        // hidden size of 2304.
        let cells = one_b_grid(
            52_000,
            2048,
            &KernelModel::default(),
            &Constraints::default(),
        );
        let best = best_cell(&cells).unwrap();
        assert_eq!((best.layers, best.hidden), (24, 2304), "winner {best:?}");
    }

    #[test]
    fn mod8_cells_dominate_top_of_each_layer_row() {
        // "We marked all the architectures with head dimensions satisfying
        // this criteria, and indeed they are among top performers for each
        // layer size."
        let cells = one_b_grid(
            52_000,
            2048,
            &KernelModel::default(),
            &Constraints::default(),
        );
        for layers in [16usize, 24, 32] {
            let row: Vec<&GridCell> = cells.iter().filter(|c| c.layers == layers).collect();
            if row.is_empty() {
                continue;
            }
            let best = row
                .iter()
                .max_by(|a, b| a.tflops_base.partial_cmp(&b.tflops_base).unwrap())
                .unwrap();
            assert!(best.head_mod8, "layer row {layers} best {best:?}");
        }
    }

    #[test]
    fn flash_only_boosts_eligible_cells() {
        let cells = one_b_grid(
            52_000,
            2048,
            &KernelModel::default(),
            &Constraints::default(),
        );
        let mut saw_ineligible = false;
        for c in &cells {
            if FlashVersion::V1.eligible(c.head_dim) {
                assert!(c.tflops_v1 > c.tflops_base, "{c:?}");
                assert!(c.tflops_v2 > c.tflops_v1, "{c:?}");
            } else {
                // v1 falls back to the naive kernel
                assert!((c.tflops_v1 - c.tflops_base).abs() < 1e-9, "{c:?}");
            }
            if FlashVersion::V2.eligible(c.head_dim) {
                assert!(c.tflops_v2 > c.tflops_base, "{c:?}");
            } else {
                saw_ineligible = true;
                assert!((c.tflops_v2 - c.tflops_base).abs() < 1e-9, "{c:?}");
            }
        }
        assert!(saw_ineligible, "grid should include non-mod-8 head dims");
    }
}
