//! The GPU kernel performance model.
//!
//! Calibrated-not-fitted: three knobs are set once from the paper's
//! headline numbers (≈40 % of MI250X peak for the best no-flash
//! architecture; flash attention v1/v2 gaining ≈14 %/19 % on average);
//! everything else — the heatmap shape, who-wins orderings, sequence-length
//! scaling — emerges from matrix shapes and FLOP counts supplied by
//! `matgpt_model::count`.

use matgpt_model::count::{layer_flops, LayerFlops};
use matgpt_model::GptConfig;
use serde::{Deserialize, Serialize};

/// Flash-attention availability, mirroring the paper's v1/v2 study on the
/// ROCm composable-kernel port.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlashVersion {
    /// No flash attention: naive attention, memory-bound softmax.
    None,
    /// Flash attention v1 (head dim must be a multiple of 8, ≤ 128).
    V1,
    /// Flash attention v2 (head dim multiple of 8, ≤ 256).
    V2,
}

impl FlashVersion {
    /// Whether this version can run for a given head dimension.
    pub fn eligible(&self, head_dim: usize) -> bool {
        match self {
            FlashVersion::None => true,
            FlashVersion::V1 => head_dim.is_multiple_of(8) && head_dim <= 128,
            FlashVersion::V2 => head_dim.is_multiple_of(8) && head_dim <= 256,
        }
    }
}

/// GEMM/attention efficiency model for one GCD.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct KernelModel {
    /// Base GEMM efficiency (fraction of peak) for well-shaped matrices.
    pub base_efficiency: f64,
    /// Multiplier when the attention head dim is a multiple of 8 (matrix
    /// cores fully engaged — the paper's Observation 1).
    pub head_mod8_bonus: f64,
    /// Penalty multiplier when it is not.
    pub head_misaligned_penalty: f64,
    /// Bonus when the hidden size is a multiple of 256.
    pub hidden_aligned_bonus: f64,
    /// Efficiency slope with log2(hidden/2304) — bigger GEMMs run closer
    /// to peak.
    pub size_slope: f64,
    /// Per-layer kernel-launch overhead slope (relative, per layer above 24).
    pub layer_overhead: f64,
    /// Relative efficiency of *naive* attention kernels (memory-bound
    /// softmax + score materialisation).
    pub attn_naive_rel_eff: f64,
    /// Relative efficiency of flash v1 attention.
    pub attn_flash1_rel_eff: f64,
    /// Relative efficiency of flash v2 attention.
    pub attn_flash2_rel_eff: f64,
    /// Relative efficiency of non-GEMM elementwise/norm kernels.
    pub other_rel_eff: f64,
    /// Extra time multiplier on the MLP block for SwiGLU (three narrower
    /// GEMMs instead of two — the paper's explanation for NeoX's slight
    /// edge in Fig. 6).
    pub swiglu_overhead: f64,
}

impl Default for KernelModel {
    fn default() -> Self {
        Self {
            base_efficiency: 0.419,
            head_mod8_bonus: 1.10,
            head_misaligned_penalty: 0.87,
            hidden_aligned_bonus: 1.03,
            size_slope: 0.045,
            layer_overhead: 0.0003,
            attn_naive_rel_eff: 0.42,
            attn_flash1_rel_eff: 0.80,
            attn_flash2_rel_eff: 1.12,
            other_rel_eff: 0.10,
            swiglu_overhead: 1.025,
        }
    }
}

impl KernelModel {
    /// Dense-GEMM efficiency (fraction of peak) for an architecture.
    pub fn gemm_efficiency(&self, cfg: &GptConfig) -> f64 {
        let head_dim = cfg.hidden / cfg.heads;
        let mut eff = self.base_efficiency;
        eff *= if head_dim.is_multiple_of(8) {
            self.head_mod8_bonus
        } else {
            self.head_misaligned_penalty
        };
        if cfg.hidden.is_multiple_of(256) {
            eff *= self.hidden_aligned_bonus;
        }
        // beyond the matrix-core sweet spot (head tiles of 128+ start
        // spilling LDS on CDNA2) efficiency dips, increasingly so
        if head_dim >= 160 {
            eff *= 0.92;
        } else if head_dim >= 128 {
            eff *= 0.97;
        }
        eff *= 1.0 + self.size_slope * (cfg.hidden as f64 / 2304.0).log2();
        eff *= 1.0 - self.layer_overhead * (cfg.layers as f64 - 24.0);
        eff.clamp(0.05, 0.95)
    }

    /// Attention-kernel relative efficiency under a flash setting.
    /// Ineligible head dims silently fall back to the naive kernel, as the
    /// ROCm port does.
    pub fn attention_rel_eff(&self, cfg: &GptConfig, flash: FlashVersion) -> f64 {
        let head_dim = cfg.hidden / cfg.heads;
        match flash {
            FlashVersion::None => self.attn_naive_rel_eff,
            FlashVersion::V1 if flash.eligible(head_dim) => self.attn_flash1_rel_eff,
            FlashVersion::V2 if flash.eligible(head_dim) => self.attn_flash2_rel_eff,
            _ => self.attn_naive_rel_eff,
        }
    }

    /// Wall-clock seconds for one *forward* pass of one layer on one GCD.
    pub fn layer_forward_time(
        &self,
        cfg: &GptConfig,
        batch: usize,
        seq: usize,
        flash: FlashVersion,
    ) -> f64 {
        let f = layer_flops(cfg, batch, seq);
        self.time_of(cfg, &f, flash)
    }

    fn time_of(&self, cfg: &GptConfig, f: &LayerFlops, flash: FlashVersion) -> f64 {
        let peak = 191.5e12 * self.gemm_efficiency(cfg); // effective flop/s
        let mlp_mult = match cfg.arch {
            matgpt_model::ArchKind::Llama => self.swiglu_overhead,
            matgpt_model::ArchKind::NeoX => 1.0,
        };
        let gemm_nonattn = f.qkv + f.linproj + f.mlp * mlp_mult;
        let attn = f.score + f.aov;
        let attn_eff = self.attention_rel_eff(cfg, flash);
        gemm_nonattn / peak + attn / (peak * attn_eff) + f.other / (peak * self.other_rel_eff)
    }

    /// Seconds for one full *training step* (fwd + bwd ≈ 3× fwd) of the
    /// whole model on one GCD, excluding communication. `layers_on_gcd` and
    /// `tp` shard layers (pipeline) and within-layer work (tensor
    /// parallelism).
    #[allow(clippy::too_many_arguments)]
    pub fn step_compute_time(
        &self,
        cfg: &GptConfig,
        batch: usize,
        seq: usize,
        flash: FlashVersion,
        layers_on_gcd: usize,
        tp: usize,
    ) -> f64 {
        let layer = self.layer_forward_time(cfg, batch, seq, flash) / tp as f64;
        // LM head + embedding GEMM
        let head_flops =
            2.0 * (batch * seq) as f64 * cfg.hidden as f64 * cfg.vocab_size as f64 / tp as f64;
        let peak = 191.5e12 * self.gemm_efficiency(cfg);
        let fwd = layer * layers_on_gcd as f64 + head_flops / peak;
        3.0 * fwd
    }

    /// Achieved training TFLOPS per GCD: *model* FLOPs (counted as if the
    /// attention were dense — the convention HPC papers report) divided by
    /// the simulated wall time.
    pub fn achieved_tflops(
        &self,
        cfg: &GptConfig,
        batch: usize,
        seq: usize,
        flash: FlashVersion,
    ) -> f64 {
        let step = self.step_compute_time(cfg, batch, seq, flash, cfg.layers, 1);
        let flops = matgpt_model::count::train_flops_per_step(cfg, batch, seq);
        flops / step / 1e12
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matgpt_model::ArchKind;

    fn arch(layers: usize, hidden: usize, heads: usize) -> GptConfig {
        GptConfig {
            layers,
            hidden,
            heads,
            ..GptConfig::paper_1_7b(ArchKind::NeoX, 52_000)
        }
    }

    #[test]
    fn best_no_flash_architecture_hits_paper_range() {
        // Paper Fig. 4: best case (24 layers, hidden 2304) ≈ 76 TFLOPS/GCD,
        // about 40 % of the 191.5 TFLOPS GCD peak, without flash attention.
        let km = KernelModel::default();
        let t = km.achieved_tflops(&arch(24, 2304, 24), 16, 2048, FlashVersion::None);
        assert!((70.0..82.0).contains(&t), "no-flash best {t}");
    }

    #[test]
    fn heatmap_range_matches_paper() {
        // Paper: throughput varies from 58 to 76 TFLOPS across the ~1B grid.
        let km = KernelModel::default();
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for (l, h, a) in [
            (16usize, 2816usize, 16usize),
            (20, 2520, 20),
            (24, 2304, 24),
            (28, 2128, 28),
            (32, 1992, 32),
            (24, 2292, 24),
        ] {
            let t = km.achieved_tflops(&arch(l, h, a), 16, 2048, FlashVersion::None);
            lo = lo.min(t);
            hi = hi.max(t);
        }
        assert!(lo > 50.0 && lo < 68.0, "low end {lo}");
        assert!(hi > 70.0 && hi < 85.0, "high end {hi}");
    }

    #[test]
    fn flash_boost_matches_paper_averages() {
        // Paper: +14 % (v1) and +19 % (v2) on average across eligible
        // architectures at seq 2048.
        let km = KernelModel::default();
        let cases = [
            (24usize, 2304usize, 24usize),
            (16, 2816, 16),
            (32, 2048, 32),
            (24, 2496, 24),
        ];
        let mut b1 = 0.0;
        let mut b2 = 0.0;
        for (l, h, a) in cases {
            let base = km.achieved_tflops(&arch(l, h, a), 16, 2048, FlashVersion::None);
            let v1 = km.achieved_tflops(&arch(l, h, a), 16, 2048, FlashVersion::V1);
            let v2 = km.achieved_tflops(&arch(l, h, a), 16, 2048, FlashVersion::V2);
            b1 += v1 / base - 1.0;
            b2 += v2 / base - 1.0;
        }
        b1 /= cases.len() as f64;
        b2 /= cases.len() as f64;
        assert!((0.08..0.22).contains(&b1), "v1 boost {b1}");
        assert!((0.12..0.28).contains(&b2), "v2 boost {b2}");
        assert!(b2 > b1, "v2 must beat v1");
    }

    #[test]
    fn best_flash_throughput_hits_82_84() {
        let km = KernelModel::default();
        let v1 = km.achieved_tflops(&arch(24, 2304, 24), 16, 2048, FlashVersion::V1);
        let v2 = km.achieved_tflops(&arch(24, 2304, 24), 16, 2048, FlashVersion::V2);
        assert!((76.0..90.0).contains(&v1), "v1 best {v1}");
        assert!((78.0..92.0).contains(&v2), "v2 best {v2}");
    }

    #[test]
    fn misaligned_head_dim_is_penalised() {
        let km = KernelModel::default();
        // hidden 2310 / 22 heads = 105 (not mod 8) vs 2304/24 = 96
        let good = km.achieved_tflops(&arch(24, 2304, 24), 16, 2048, FlashVersion::None);
        let bad = km.achieved_tflops(&arch(24, 2310, 22), 16, 2048, FlashVersion::None);
        assert!(good > bad * 1.1, "aligned {good} vs misaligned {bad}");
    }

    #[test]
    fn flash_ineligible_head_dim_gets_no_boost() {
        let km = KernelModel::default();
        let cfg = arch(24, 2310, 22); // head dim 105
        let base = km.achieved_tflops(&cfg, 16, 2048, FlashVersion::None);
        let v2 = km.achieved_tflops(&cfg, 16, 2048, FlashVersion::V2);
        assert!((base - v2).abs() < 1e-9);
    }

    #[test]
    fn v1_eligibility_caps_at_128() {
        assert!(FlashVersion::V1.eligible(96));
        assert!(FlashVersion::V1.eligible(128));
        assert!(!FlashVersion::V1.eligible(136));
        assert!(FlashVersion::V2.eligible(136));
        assert!(!FlashVersion::V2.eligible(100)); // not mod 8
    }

    #[test]
    fn neox_has_slight_throughput_edge_over_llama() {
        // Paper Fig. 6: "NeoX showing a slight edge in 7 out of 8 cases ...
        // the difference likely comes from the parameterization of MLP
        // layers (2 linear layers with GELU versus 3 linear layers with
        // SILU)."
        let km = KernelModel::default();
        let neox = GptConfig::paper_1_7b(ArchKind::NeoX, 52_000);
        let llama = GptConfig::paper_1_7b(ArchKind::Llama, 52_000);
        let tn = km.achieved_tflops(&neox, 16, 2048, FlashVersion::V2);
        let tl = km.achieved_tflops(&llama, 16, 2048, FlashVersion::V2);
        assert!(tn > tl, "NeoX {tn} vs LLaMA {tl}");
        assert!(tn / tl < 1.06, "the edge must stay slight: {}", tn / tl);
    }

    #[test]
    fn longer_sequences_shift_time_toward_attention() {
        let km = KernelModel::default();
        let cfg = arch(24, 2304, 24);
        // flash helps more at longer sequence lengths
        let gain = |seq: usize| {
            km.achieved_tflops(&cfg, 1, seq, FlashVersion::V2)
                / km.achieved_tflops(&cfg, 1, seq, FlashVersion::None)
        };
        assert!(gain(8192) > gain(2048));
    }
}
