//! Step timelines and device traces — the OmniTrace / rocm-smi substitute
//! behind the paper's Figs. 9 and 12.
//!
//! Two consumers share these timelines: the figure harnesses render
//! them as ASCII/series output, and [`record_chrome`] re-targets them
//! onto the unified `matgpt-obs` Chrome-trace emitter so the simulated
//! Fig. 9 step timeline, Fig. 12 power trace and Fig. 11 RCCL message
//! statistics land in the same `trace.json` / Prometheus registry as
//! *measured* trainer and serving telemetry — one viewer, one schema.

use crate::kernels::FlashVersion;
use crate::parallel::{StepReport, TrainSetup};
use crate::power::PowerModel;
use matgpt_model::count::layer_flops;
use matgpt_obs::{pids, Recorder, Registry, TraceEvent as ObsEvent};
use serde::{Deserialize, Serialize};

/// What the device is doing during an interval.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PhaseKind {
    /// Forward compute of one layer.
    Forward,
    /// Backward compute of one layer.
    Backward,
    /// Exposed communication (all-reduce etc.).
    Communication,
    /// Optimizer update / data movement.
    Io,
}

/// One timeline interval.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Start time within the step, seconds.
    pub start_s: f64,
    /// End time, seconds.
    pub end_s: f64,
    /// Phase class.
    pub kind: PhaseKind,
    /// Layer index for compute phases.
    pub layer: Option<usize>,
}

impl TraceEvent {
    /// Interval duration.
    pub fn duration(&self) -> f64 {
        self.end_s - self.start_s
    }
}

/// Build the one-step timeline of Fig. 9: forward per layer, backward per
/// layer (with communication trailing the backward, as rocprof shows for
/// ZeRO), then IO/optimizer.
pub fn step_timeline(setup: &TrainSetup, report: &StepReport) -> Vec<TraceEvent> {
    // Shared with `simulate_step`: under `PipelineParallel` both price
    // the busiest `div_ceil` stage, so the timeline tiles the step
    // exactly even when `layers % p != 0`.
    let layers = setup.stage_layers();
    let fwd_total = report.compute_s / 3.0;
    let bwd_total = report.compute_s * 2.0 / 3.0;
    let fwd_layer = fwd_total / layers as f64;
    let bwd_layer = bwd_total / layers as f64;
    let mut t = 0.0;
    let mut events = Vec::with_capacity(2 * layers + 2);
    for l in 0..layers {
        events.push(TraceEvent {
            start_s: t,
            end_s: t + fwd_layer,
            kind: PhaseKind::Forward,
            layer: Some(l),
        });
        t += fwd_layer;
    }
    for l in (0..layers).rev() {
        events.push(TraceEvent {
            start_s: t,
            end_s: t + bwd_layer,
            kind: PhaseKind::Backward,
            layer: Some(l),
        });
        t += bwd_layer;
    }
    if report.comm_exposed_s > 0.0 {
        events.push(TraceEvent {
            start_s: t,
            end_s: t + report.comm_exposed_s,
            kind: PhaseKind::Communication,
            layer: None,
        });
        t += report.comm_exposed_s;
    }
    if report.io_s > 0.0 {
        events.push(TraceEvent {
            start_s: t,
            end_s: t + report.io_s,
            kind: PhaseKind::Io,
            layer: None,
        });
    }
    events
}

/// The Fig. 9 step timeline's phase ordering in the *measured* trace
/// analyzer's vocabulary ([`matgpt_obs::critical_path::PhaseClass`]),
/// deduplicated to its shape — normally forward → backward →
/// communication → io. This is the simulated reference a measured
/// critical path's `phase_order` is cross-checked against: the trainer
/// and the simulator describing the same step must agree on what
/// happens in what order, even though one is clocked and one is priced.
pub fn phase_order(
    setup: &TrainSetup,
    report: &StepReport,
) -> Vec<matgpt_obs::critical_path::PhaseClass> {
    use matgpt_obs::critical_path::PhaseClass;
    matgpt_obs::critical_path::dedup_order(step_timeline(setup, report).iter().map(
        |e| match e.kind {
            PhaseKind::Forward => PhaseClass::Forward,
            PhaseKind::Backward => PhaseClass::Backward,
            PhaseKind::Communication => PhaseClass::Communication,
            PhaseKind::Io => PhaseClass::Io,
        },
    ))
}

/// One kernel-class interval inside a single layer's forward pass — the
/// Fig. 9 "boxed snapshot" zoom.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct KernelSpan {
    /// Kernel class name (QKV, flash/score+AOV, Linproj, MLP, other).
    pub name: &'static str,
    /// Start offset within the layer, seconds.
    pub start_s: f64,
    /// End offset, seconds.
    pub end_s: f64,
}

/// Break one layer's forward time into kernel-class spans, priced with the
/// same efficiency model as the step simulation.
pub fn layer_zoom(setup: &TrainSetup) -> Vec<KernelSpan> {
    let km = &setup.kernel;
    let cfg = &setup.cfg;
    let f = layer_flops(cfg, setup.micro_batch, setup.seq);
    let peak = 191.5e12 * km.gemm_efficiency(cfg);
    let attn_eff = km.attention_rel_eff(cfg, setup.flash);
    let attn_name = if matches!(setup.flash, FlashVersion::None) {
        "score+AOV (naive)"
    } else {
        "flash attention"
    };
    let parts: [(&'static str, f64); 5] = [
        ("QKV", f.qkv / peak),
        (attn_name, (f.score + f.aov) / (peak * attn_eff)),
        ("Linproj", f.linproj / peak),
        ("MLP", f.mlp / peak),
        ("LN+DR+other", f.other / (peak * km.other_rel_eff)),
    ];
    let mut t = 0.0;
    parts
        .iter()
        .map(|&(name, dur)| {
            let span = KernelSpan {
                name,
                start_s: t,
                end_s: t + dur,
            };
            t += dur;
            span
        })
        .collect()
}

/// One sample of the rocm-smi-style device trace (Fig. 12).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DeviceSample {
    /// Time, seconds.
    pub t_s: f64,
    /// MI250X power, watts.
    pub power_w: f64,
    /// Memory used, percent of HBM.
    pub memory_pct: f64,
    /// Reported GPU utilisation, percent.
    pub utilization_pct: f64,
}

/// Sample `n_steps` consecutive steps at interval `dt` — the power
/// oscillation between compute and communication phases emerges directly.
pub fn device_trace(
    setup: &TrainSetup,
    report: &StepReport,
    power: &PowerModel,
    n_steps: usize,
    dt: f64,
) -> Vec<DeviceSample> {
    let timeline = step_timeline(setup, report);
    let step_len = report.step_s;
    let mem_pct = (report.memory_gib / setup.machine.gcd_memory_gib * 100.0).min(100.0);
    let total = step_len * n_steps as f64;
    let mut out = Vec::with_capacity((total / dt) as usize + 1);
    let mut t = 0.0;
    while t < total {
        let within = t % step_len;
        let kind = timeline
            .iter()
            .find(|e| within >= e.start_s && within < e.end_s)
            .map(|e| e.kind)
            .unwrap_or(PhaseKind::Io);
        let power_w = match kind {
            PhaseKind::Forward | PhaseKind::Backward => power.compute_w,
            PhaseKind::Communication => power.comm_w,
            PhaseKind::Io => power.io_w,
        };
        // the paper notes utilisation pins near 100 % because comm kernels
        // also occupy the GPU — power is the honest signal
        let utilization_pct = match kind {
            PhaseKind::Io => 65.0,
            _ => 99.0,
        };
        out.push(DeviceSample {
            t_s: t,
            power_w,
            memory_pct: mem_pct,
            utilization_pct,
        });
        t += dt;
    }
    out
}

// ------------------------------------------------ matgpt-obs re-target

/// Track ids within the simulator's trace process ([`pids::SIM`]).
pub mod sim_tids {
    /// Fig. 9 step timeline (per-layer forward/backward, comm, io).
    pub const TIMELINE: u64 = 1;
    /// Fig. 12 rocm-smi-style power/utilisation samples.
    pub const POWER: u64 = 2;
}

impl PhaseKind {
    /// Chrome-trace event name for this phase class.
    pub fn label(self) -> &'static str {
        match self {
            PhaseKind::Forward => "forward",
            PhaseKind::Backward => "backward",
            PhaseKind::Communication => "comm (exposed)",
            PhaseKind::Io => "io/optimizer",
        }
    }
}

/// Map `n_steps` repetitions of the Fig. 9 step timeline onto
/// Chrome-trace complete events on the [`sim_tids::TIMELINE`] track,
/// starting at `t0_us` on the recorder timebase. Simulated seconds
/// become trace microseconds one-for-one, so a 1 s simulated step reads
/// as 1 s in the viewer.
pub fn chrome_step_events(
    setup: &TrainSetup,
    report: &StepReport,
    n_steps: usize,
    t0_us: f64,
) -> Vec<ObsEvent> {
    let timeline = step_timeline(setup, report);
    let step_us = report.step_s * 1e6;
    let mut out = Vec::with_capacity(timeline.len() * n_steps);
    for step in 0..n_steps {
        let base = t0_us + step as f64 * step_us;
        for e in &timeline {
            let mut ev = ObsEvent::complete(
                pids::SIM,
                sim_tids::TIMELINE,
                "sim.step",
                e.kind.label(),
                base + e.start_s * 1e6,
                e.duration() * 1e6,
            )
            .arg("step", step as f64);
            if let Some(layer) = e.layer {
                ev = ev.arg("layer", layer as f64);
            }
            out.push(ev);
        }
    }
    out
}

/// Map the Fig. 12 device trace onto the [`sim_tids::POWER`] track:
/// each rocm-smi sample becomes one `dt`-wide complete event carrying
/// `power_w` / `memory_pct` / `utilization_pct` args, so the power
/// oscillation is scrubbing-visible next to the step timeline.
pub fn chrome_power_events(
    setup: &TrainSetup,
    report: &StepReport,
    power: &PowerModel,
    n_steps: usize,
    dt: f64,
    t0_us: f64,
) -> Vec<ObsEvent> {
    device_trace(setup, report, power, n_steps, dt)
        .iter()
        .map(|s| {
            ObsEvent::complete(
                pids::SIM,
                sim_tids::POWER,
                "sim.power",
                "sample",
                t0_us + s.t_s * 1e6,
                dt * 1e6,
            )
            .arg("power_w", s.power_w)
            .arg("memory_pct", s.memory_pct)
            .arg("utilization_pct", s.utilization_pct)
        })
        .collect()
}

/// Publish the Fig. 11 RCCL message statistics and headline step costs
/// into a metrics registry: one `sim_rccl_calls_total` /
/// `sim_rccl_wire_bytes_total` counter series per collective, plus
/// step-time / throughput / memory gauges.
pub fn record_rccl_metrics(registry: &Registry, report: &StepReport) {
    for m in &report.msgs {
        let labels: &[(&str, &str)] = &[("collective", m.collective.name())];
        registry
            .counter_with(
                "sim_rccl_calls_total",
                labels,
                "simulated RCCL calls per step per GPU",
            )
            .add(m.calls as u64);
        registry
            .counter_with(
                "sim_rccl_wire_bytes_total",
                labels,
                "simulated RCCL wire bytes per step per GPU",
            )
            .add(m.wire_total() as u64);
    }
    registry
        .gauge("sim_step_seconds", "simulated end-to-end step seconds")
        .set(report.step_s);
    registry
        .gauge("sim_tflops_per_gcd", "simulated achieved TFLOPS per GCD")
        .set(report.tflops_per_gcd);
    registry
        .gauge(
            "sim_comm_exposed_seconds",
            "simulated exposed communication seconds per step",
        )
        .set(report.comm_exposed_s);
}

/// Record the whole simulated picture — Fig. 9 timeline, Fig. 12 power
/// trace, Fig. 11 RCCL counters — onto a shared recorder/registry pair,
/// alongside whatever measured trainer/serving telemetry they already
/// hold. Events are placed at the recorder's current time so simulated
/// tracks don't overlap earlier recorded spans.
pub fn record_chrome(
    recorder: &Recorder,
    registry: &Registry,
    setup: &TrainSetup,
    report: &StepReport,
    power: &PowerModel,
    n_steps: usize,
    dt: f64,
) {
    let t0 = recorder.now_us();
    recorder.set_track_name(
        pids::SIM,
        sim_tids::TIMELINE,
        format!("step timeline ({:?})", setup.strategy),
    );
    recorder.set_track_name(pids::SIM, sim_tids::POWER, "rocm-smi power");
    recorder.extend(chrome_step_events(setup, report, n_steps, t0));
    recorder.extend(chrome_power_events(setup, report, power, n_steps, dt, t0));
    record_rccl_metrics(registry, report);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::{simulate_step, Strategy};
    use matgpt_model::{ArchKind, GptConfig};

    fn setup_67b() -> (TrainSetup, StepReport) {
        let s = TrainSetup::new(
            GptConfig::paper_6_7b(ArchKind::Llama, 52_000),
            256,
            Strategy::Zero1,
        );
        let r = simulate_step(&s);
        (s, r)
    }

    #[test]
    fn timeline_covers_step_without_gaps() {
        let (s, r) = setup_67b();
        let tl = step_timeline(&s, &r);
        for w in tl.windows(2) {
            assert!((w[0].end_s - w[1].start_s).abs() < 1e-9, "gap in timeline");
        }
        let total = tl.last().unwrap().end_s;
        assert!((total - r.step_s).abs() / r.step_s < 1e-6);
    }

    #[test]
    fn phase_order_matches_fig9_shape() {
        use matgpt_obs::critical_path::PhaseClass;
        let (s, r) = setup_67b();
        let order = phase_order(&s, &r);
        assert_eq!(order[..2], [PhaseClass::Forward, PhaseClass::Backward]);
        assert_eq!(*order.last().unwrap(), PhaseClass::Io, "io closes the step");
        assert!(
            order.len() <= 4,
            "dedup keeps at most one entry per class: {order:?}"
        );
    }

    #[test]
    fn timeline_has_forward_then_backward_per_layer() {
        let (s, r) = setup_67b();
        let tl = step_timeline(&s, &r);
        let fwd = tl.iter().filter(|e| e.kind == PhaseKind::Forward).count();
        let bwd = tl.iter().filter(|e| e.kind == PhaseKind::Backward).count();
        assert_eq!(fwd, 32);
        assert_eq!(bwd, 32);
        // backward walks layers in reverse
        let bwd_layers: Vec<usize> = tl
            .iter()
            .filter(|e| e.kind == PhaseKind::Backward)
            .map(|e| e.layer.unwrap())
            .collect();
        assert_eq!(bwd_layers[0], 31);
        assert_eq!(*bwd_layers.last().unwrap(), 0);
    }

    #[test]
    fn power_trace_oscillates_between_levels() {
        let (s, r) = setup_67b();
        let pm = PowerModel::default();
        let trace = device_trace(&s, &r, &pm, 3, r.step_s / 200.0);
        let max = trace.iter().map(|x| x.power_w).fold(0.0, f64::max);
        let min = trace
            .iter()
            .map(|x| x.power_w)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(max, pm.compute_w);
        assert!(min < pm.compute_w, "trace must dip during comm/io");
    }

    #[test]
    fn memory_is_flat_and_positive() {
        let (s, r) = setup_67b();
        let pm = PowerModel::default();
        let trace = device_trace(&s, &r, &pm, 2, r.step_s / 50.0);
        let first = trace[0].memory_pct;
        assert!(first > 10.0 && first <= 100.0);
        assert!(trace.iter().all(|x| (x.memory_pct - first).abs() < 1e-9));
    }

    #[test]
    fn layer_zoom_spans_are_contiguous_and_attention_dominated() {
        let (s, _) = setup_67b();
        let zoom = layer_zoom(&s);
        assert_eq!(zoom.len(), 5);
        for w in zoom.windows(2) {
            assert!((w[0].end_s - w[1].start_s).abs() < 1e-12);
        }
        // the flash span out-runs the small kernels at seq 2048 …
        let dur = |z: &[KernelSpan], name: &str| {
            let k = z.iter().find(|k| k.name == name).unwrap();
            k.end_s - k.start_s
        };
        assert!(dur(&zoom, "flash attention") > dur(&zoom, "LN+DR+other"));
        assert!(dur(&zoom, "flash attention") > dur(&zoom, "Linproj") * 0.3);
        // … and dominates every class at the longer contexts the paper's
        // Fig. 9 snapshot was taken in the regime of
        let mut long = s.clone();
        long.seq = 8192;
        long.cfg.max_seq = 8192;
        let zoom_long = layer_zoom(&long);
        for name in ["QKV", "Linproj", "LN+DR+other"] {
            assert!(
                dur(&zoom_long, "flash attention") > dur(&zoom_long, name),
                "{name} out-runs flash at seq 8192"
            );
        }
    }

    #[test]
    fn trace_length_matches_requested_steps() {
        let (s, r) = setup_67b();
        let pm = PowerModel::default();
        let dt = r.step_s / 100.0;
        let trace = device_trace(&s, &r, &pm, 4, dt);
        let expect = (4.0 * r.step_s / dt) as usize;
        assert!((trace.len() as i64 - expect as i64).abs() <= 2);
    }

    #[test]
    fn pipeline_remainder_layers_stay_consistent_with_pricing() {
        // 33 layers over PP=2 doesn't divide evenly: the busiest stage
        // holds div_ceil(33, 2) = 17 layers, and both `simulate_step`
        // and the timeline must agree on that count or the trace stops
        // tiling the priced step.
        let mut cfg = GptConfig::paper_6_7b(ArchKind::NeoX, 52_000);
        cfg.layers = 33;
        let s = TrainSetup::new(cfg, 256, Strategy::PipelineParallel(2));
        assert_eq!(s.stage_layers(), 17);
        let r = simulate_step(&s);
        let tl = step_timeline(&s, &r);
        let fwd = tl.iter().filter(|e| e.kind == PhaseKind::Forward).count();
        let bwd = tl.iter().filter(|e| e.kind == PhaseKind::Backward).count();
        assert_eq!(fwd, 17, "timeline must split over the div_ceil stage");
        assert_eq!(bwd, 17);
        for w in tl.windows(2) {
            assert!((w[0].end_s - w[1].start_s).abs() < 1e-9, "gap in timeline");
        }
        let total = tl.last().unwrap().end_s;
        assert!(
            (total - r.step_s).abs() / r.step_s < 1e-6,
            "timeline {total} drifted from priced step {}",
            r.step_s
        );
    }

    #[test]
    fn chrome_retarget_emits_valid_trace_and_rccl_counters() {
        let (s, r) = setup_67b();
        let pm = PowerModel::default();
        let rec = Recorder::new();
        rec.enable();
        let reg = Registry::new();
        record_chrome(&rec, &reg, &s, &r, &pm, 2, r.step_s / 40.0);

        let events = rec.snapshot();
        assert!(events.iter().all(|e| e.pid == pids::SIM));
        let timeline = events
            .iter()
            .filter(|e| e.tid == sim_tids::TIMELINE)
            .count();
        let power = events.iter().filter(|e| e.tid == sim_tids::POWER).count();
        assert_eq!(timeline, 2 * step_timeline(&s, &r).len());
        assert!(power > 0);

        let json = rec.to_chrome_json();
        let stats = matgpt_obs::chrome::validate(&json).expect("sim trace must validate");
        assert_eq!(stats.complete_events, events.len());
        assert_eq!(stats.tracks, 2);

        // ZeRO-1 issues all-gather + reduce-scatter traffic; the
        // counters must carry it with per-collective labels.
        let names = reg.names();
        assert!(names
            .iter()
            .any(|(n, k)| n == "sim_rccl_calls_total" && *k == matgpt_obs::MetricKind::Counter));
        assert!(names.iter().any(|(n, _)| n == "sim_step_seconds"));
        let text = matgpt_obs::prom::render(&reg);
        assert!(
            text.contains("collective=\"AllGather\"")
                || text.contains("collective=\"ReduceScatter\"")
        );
    }
}
