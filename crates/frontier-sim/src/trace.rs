//! Step timelines and device traces — the OmniTrace / rocm-smi substitute
//! behind the paper's Figs. 9 and 12.

use crate::kernels::FlashVersion;
use crate::parallel::{StepReport, Strategy, TrainSetup};
use crate::power::PowerModel;
use matgpt_model::count::layer_flops;
use serde::{Deserialize, Serialize};

/// What the device is doing during an interval.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PhaseKind {
    /// Forward compute of one layer.
    Forward,
    /// Backward compute of one layer.
    Backward,
    /// Exposed communication (all-reduce etc.).
    Communication,
    /// Optimizer update / data movement.
    Io,
}

/// One timeline interval.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Start time within the step, seconds.
    pub start_s: f64,
    /// End time, seconds.
    pub end_s: f64,
    /// Phase class.
    pub kind: PhaseKind,
    /// Layer index for compute phases.
    pub layer: Option<usize>,
}

impl TraceEvent {
    /// Interval duration.
    pub fn duration(&self) -> f64 {
        self.end_s - self.start_s
    }
}

/// Build the one-step timeline of Fig. 9: forward per layer, backward per
/// layer (with communication trailing the backward, as rocprof shows for
/// ZeRO), then IO/optimizer.
pub fn step_timeline(setup: &TrainSetup, report: &StepReport) -> Vec<TraceEvent> {
    let layers = match setup.strategy {
        Strategy::PipelineParallel(p) => setup.cfg.layers.div_ceil(p),
        _ => setup.cfg.layers,
    };
    let fwd_total = report.compute_s / 3.0;
    let bwd_total = report.compute_s * 2.0 / 3.0;
    let fwd_layer = fwd_total / layers as f64;
    let bwd_layer = bwd_total / layers as f64;
    let mut t = 0.0;
    let mut events = Vec::with_capacity(2 * layers + 2);
    for l in 0..layers {
        events.push(TraceEvent {
            start_s: t,
            end_s: t + fwd_layer,
            kind: PhaseKind::Forward,
            layer: Some(l),
        });
        t += fwd_layer;
    }
    for l in (0..layers).rev() {
        events.push(TraceEvent {
            start_s: t,
            end_s: t + bwd_layer,
            kind: PhaseKind::Backward,
            layer: Some(l),
        });
        t += bwd_layer;
    }
    if report.comm_exposed_s > 0.0 {
        events.push(TraceEvent {
            start_s: t,
            end_s: t + report.comm_exposed_s,
            kind: PhaseKind::Communication,
            layer: None,
        });
        t += report.comm_exposed_s;
    }
    if report.io_s > 0.0 {
        events.push(TraceEvent {
            start_s: t,
            end_s: t + report.io_s,
            kind: PhaseKind::Io,
            layer: None,
        });
    }
    events
}

/// One kernel-class interval inside a single layer's forward pass — the
/// Fig. 9 "boxed snapshot" zoom.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct KernelSpan {
    /// Kernel class name (QKV, flash/score+AOV, Linproj, MLP, other).
    pub name: &'static str,
    /// Start offset within the layer, seconds.
    pub start_s: f64,
    /// End offset, seconds.
    pub end_s: f64,
}

/// Break one layer's forward time into kernel-class spans, priced with the
/// same efficiency model as the step simulation.
pub fn layer_zoom(setup: &TrainSetup) -> Vec<KernelSpan> {
    let km = &setup.kernel;
    let cfg = &setup.cfg;
    let f = layer_flops(cfg, setup.micro_batch, setup.seq);
    let peak = 191.5e12 * km.gemm_efficiency(cfg);
    let attn_eff = km.attention_rel_eff(cfg, setup.flash);
    let attn_name = if matches!(setup.flash, FlashVersion::None) {
        "score+AOV (naive)"
    } else {
        "flash attention"
    };
    let parts: [(&'static str, f64); 5] = [
        ("QKV", f.qkv / peak),
        (attn_name, (f.score + f.aov) / (peak * attn_eff)),
        ("Linproj", f.linproj / peak),
        ("MLP", f.mlp / peak),
        ("LN+DR+other", f.other / (peak * km.other_rel_eff)),
    ];
    let mut t = 0.0;
    parts
        .iter()
        .map(|&(name, dur)| {
            let span = KernelSpan {
                name,
                start_s: t,
                end_s: t + dur,
            };
            t += dur;
            span
        })
        .collect()
}

/// One sample of the rocm-smi-style device trace (Fig. 12).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DeviceSample {
    /// Time, seconds.
    pub t_s: f64,
    /// MI250X power, watts.
    pub power_w: f64,
    /// Memory used, percent of HBM.
    pub memory_pct: f64,
    /// Reported GPU utilisation, percent.
    pub utilization_pct: f64,
}

/// Sample `n_steps` consecutive steps at interval `dt` — the power
/// oscillation between compute and communication phases emerges directly.
pub fn device_trace(
    setup: &TrainSetup,
    report: &StepReport,
    power: &PowerModel,
    n_steps: usize,
    dt: f64,
) -> Vec<DeviceSample> {
    let timeline = step_timeline(setup, report);
    let step_len = report.step_s;
    let mem_pct = (report.memory_gib / setup.machine.gcd_memory_gib * 100.0).min(100.0);
    let total = step_len * n_steps as f64;
    let mut out = Vec::with_capacity((total / dt) as usize + 1);
    let mut t = 0.0;
    while t < total {
        let within = t % step_len;
        let kind = timeline
            .iter()
            .find(|e| within >= e.start_s && within < e.end_s)
            .map(|e| e.kind)
            .unwrap_or(PhaseKind::Io);
        let power_w = match kind {
            PhaseKind::Forward | PhaseKind::Backward => power.compute_w,
            PhaseKind::Communication => power.comm_w,
            PhaseKind::Io => power.io_w,
        };
        // the paper notes utilisation pins near 100 % because comm kernels
        // also occupy the GPU — power is the honest signal
        let utilization_pct = match kind {
            PhaseKind::Io => 65.0,
            _ => 99.0,
        };
        out.push(DeviceSample {
            t_s: t,
            power_w,
            memory_pct: mem_pct,
            utilization_pct,
        });
        t += dt;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::simulate_step;
    use matgpt_model::{ArchKind, GptConfig};

    fn setup_67b() -> (TrainSetup, StepReport) {
        let s = TrainSetup::new(
            GptConfig::paper_6_7b(ArchKind::Llama, 52_000),
            256,
            Strategy::Zero1,
        );
        let r = simulate_step(&s);
        (s, r)
    }

    #[test]
    fn timeline_covers_step_without_gaps() {
        let (s, r) = setup_67b();
        let tl = step_timeline(&s, &r);
        for w in tl.windows(2) {
            assert!((w[0].end_s - w[1].start_s).abs() < 1e-9, "gap in timeline");
        }
        let total = tl.last().unwrap().end_s;
        assert!((total - r.step_s).abs() / r.step_s < 1e-6);
    }

    #[test]
    fn timeline_has_forward_then_backward_per_layer() {
        let (s, r) = setup_67b();
        let tl = step_timeline(&s, &r);
        let fwd = tl.iter().filter(|e| e.kind == PhaseKind::Forward).count();
        let bwd = tl.iter().filter(|e| e.kind == PhaseKind::Backward).count();
        assert_eq!(fwd, 32);
        assert_eq!(bwd, 32);
        // backward walks layers in reverse
        let bwd_layers: Vec<usize> = tl
            .iter()
            .filter(|e| e.kind == PhaseKind::Backward)
            .map(|e| e.layer.unwrap())
            .collect();
        assert_eq!(bwd_layers[0], 31);
        assert_eq!(*bwd_layers.last().unwrap(), 0);
    }

    #[test]
    fn power_trace_oscillates_between_levels() {
        let (s, r) = setup_67b();
        let pm = PowerModel::default();
        let trace = device_trace(&s, &r, &pm, 3, r.step_s / 200.0);
        let max = trace.iter().map(|x| x.power_w).fold(0.0, f64::max);
        let min = trace
            .iter()
            .map(|x| x.power_w)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(max, pm.compute_w);
        assert!(min < pm.compute_w, "trace must dip during comm/io");
    }

    #[test]
    fn memory_is_flat_and_positive() {
        let (s, r) = setup_67b();
        let pm = PowerModel::default();
        let trace = device_trace(&s, &r, &pm, 2, r.step_s / 50.0);
        let first = trace[0].memory_pct;
        assert!(first > 10.0 && first <= 100.0);
        assert!(trace.iter().all(|x| (x.memory_pct - first).abs() < 1e-9));
    }

    #[test]
    fn layer_zoom_spans_are_contiguous_and_attention_dominated() {
        let (s, _) = setup_67b();
        let zoom = layer_zoom(&s);
        assert_eq!(zoom.len(), 5);
        for w in zoom.windows(2) {
            assert!((w[0].end_s - w[1].start_s).abs() < 1e-12);
        }
        // the flash span out-runs the small kernels at seq 2048 …
        let dur = |z: &[KernelSpan], name: &str| {
            let k = z.iter().find(|k| k.name == name).unwrap();
            k.end_s - k.start_s
        };
        assert!(dur(&zoom, "flash attention") > dur(&zoom, "LN+DR+other"));
        assert!(dur(&zoom, "flash attention") > dur(&zoom, "Linproj") * 0.3);
        // … and dominates every class at the longer contexts the paper's
        // Fig. 9 snapshot was taken in the regime of
        let mut long = s.clone();
        long.seq = 8192;
        long.cfg.max_seq = 8192;
        let zoom_long = layer_zoom(&long);
        for name in ["QKV", "Linproj", "LN+DR+other"] {
            assert!(
                dur(&zoom_long, "flash attention") > dur(&zoom_long, name),
                "{name} out-runs flash at seq 8192"
            );
        }
    }

    #[test]
    fn trace_length_matches_requested_steps() {
        let (s, r) = setup_67b();
        let pm = PowerModel::default();
        let dt = r.step_s / 100.0;
        let trace = device_trace(&s, &r, &pm, 4, dt);
        let expect = (4.0 * r.step_s / dt) as usize;
        assert!((trace.len() as i64 - expect as i64).abs() <= 2);
    }
}
