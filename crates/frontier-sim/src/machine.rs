//! The Frontier machine model.
//!
//! Frontier (OLCF): 9408 nodes, each with four AMD MI250X GPUs. Every
//! MI250X carries two Graphics Compute Dies (GCDs); a GCD is one
//! "effective GPU" with 64 GB HBM. The two GCDs of an MI250X are linked at
//! 200 GB/s; all GPUs within a node at 100 GB/s Infinity Fabric; nodes via
//! Slingshot-11 at 100 GB/s — exactly the numbers of the paper's Sec. IV-A.

use serde::{Deserialize, Serialize};

/// Static description of the machine.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MachineConfig {
    /// GCDs (effective GPUs) per node.
    pub gcds_per_node: usize,
    /// Peak bf16 throughput per GCD in TFLOPS (383/2 for an MI250X).
    pub gcd_peak_tflops: f64,
    /// HBM per GCD in GiB.
    pub gcd_memory_gib: f64,
    /// Bandwidth between the two GCDs of one MI250X (GB/s).
    pub intra_mi250x_gbps: f64,
    /// Bandwidth between GPUs within a node (GB/s).
    pub intra_node_gbps: f64,
    /// Slingshot bandwidth between nodes (GB/s).
    pub inter_node_gbps: f64,
    /// Per-message link latency (seconds).
    pub link_latency_s: f64,
    /// Total nodes in the machine.
    pub total_nodes: usize,
    /// Contention growth per doubling of participating nodes (dimensionless;
    /// models Slingshot congestion for large collectives).
    pub contention_per_doubling: f64,
    /// Host-to-device/device-to-device staging bandwidth (GB/s), for the IO
    /// kernel class of the rocprof breakdown.
    pub staging_gbps: f64,
    /// Message size at which a link reaches half its peak bandwidth
    /// (RCCL small-message inefficiency), bytes.
    pub half_peak_msg_bytes: f64,
}

impl MachineConfig {
    /// The Frontier configuration from the paper.
    pub fn frontier() -> Self {
        Self {
            gcds_per_node: 8,
            gcd_peak_tflops: 191.5,
            gcd_memory_gib: 64.0,
            intra_mi250x_gbps: 200.0,
            intra_node_gbps: 100.0,
            inter_node_gbps: 100.0,
            link_latency_s: 5e-6,
            total_nodes: 9408,
            contention_per_doubling: 0.30,
            staging_gbps: 50.0,
            half_peak_msg_bytes: 64e6,
        }
    }

    /// Total effective GPUs on the machine.
    pub fn total_gcds(&self) -> usize {
        self.total_nodes * self.gcds_per_node
    }

    /// Node index of a global rank.
    pub fn node_of(&self, rank: usize) -> usize {
        rank / self.gcds_per_node
    }

    /// MI250X index (within its node) of a global rank.
    pub fn mi250x_of(&self, rank: usize) -> usize {
        (rank % self.gcds_per_node) / 2
    }

    /// Point-to-point bandwidth between two ranks in GB/s.
    pub fn bandwidth_between(&self, a: usize, b: usize) -> f64 {
        if a == b {
            return f64::INFINITY;
        }
        if self.node_of(a) != self.node_of(b) {
            self.inter_node_gbps
        } else if self.mi250x_of(a) == self.mi250x_of(b) {
            self.intra_mi250x_gbps
        } else {
            self.intra_node_gbps
        }
    }

    /// The bottleneck bandwidth of a ring over `ranks` (the slowest link
    /// dominates a ring collective).
    pub fn ring_bandwidth(&self, ranks: &[usize]) -> f64 {
        if ranks.len() < 2 {
            return f64::INFINITY;
        }
        let mut min_bw = f64::INFINITY;
        for i in 0..ranks.len() {
            let a = ranks[i];
            let b = ranks[(i + 1) % ranks.len()];
            min_bw = min_bw.min(self.bandwidth_between(a, b));
        }
        min_bw
    }

    /// Bandwidth utilisation (0..1] of a message of `bytes` — small
    /// messages cannot saturate a link.
    pub fn msg_efficiency(&self, bytes: f64) -> f64 {
        bytes / (bytes + self.half_peak_msg_bytes)
    }

    /// Congestion multiplier (≥ 1) for a collective spanning `nodes` nodes.
    pub fn contention_factor(&self, nodes: usize) -> f64 {
        if nodes <= 1 {
            1.0
        } else {
            1.0 + self.contention_per_doubling * (nodes as f64).log2()
        }
    }

    /// The first `n` global ranks (the usual contiguous allocation).
    pub fn ranks(&self, n: usize) -> Vec<usize> {
        assert!(
            n <= self.total_gcds(),
            "machine has {} GCDs",
            self.total_gcds()
        );
        (0..n).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontier_headline_numbers() {
        let m = MachineConfig::frontier();
        assert_eq!(m.total_gcds(), 75_264);
        assert_eq!(m.gcds_per_node, 8);
        assert!((m.gcd_peak_tflops * 2.0 - 383.0).abs() < 0.1);
    }

    #[test]
    fn bandwidth_hierarchy() {
        let m = MachineConfig::frontier();
        // ranks 0,1 share an MI250X; 0,2 share a node; 0,8 are cross-node
        assert_eq!(m.bandwidth_between(0, 1), 200.0);
        assert_eq!(m.bandwidth_between(0, 2), 100.0);
        assert_eq!(m.bandwidth_between(0, 7), 100.0);
        assert_eq!(m.bandwidth_between(0, 8), 100.0);
        assert!(m.bandwidth_between(0, 1) > m.bandwidth_between(0, 8));
    }

    #[test]
    fn topology_mapping() {
        let m = MachineConfig::frontier();
        assert_eq!(m.node_of(0), 0);
        assert_eq!(m.node_of(8), 1);
        assert_eq!(m.mi250x_of(0), 0);
        assert_eq!(m.mi250x_of(1), 0);
        assert_eq!(m.mi250x_of(2), 1);
        assert_eq!(m.mi250x_of(9), 0);
    }

    #[test]
    fn ring_bandwidth_is_bottleneck() {
        let m = MachineConfig::frontier();
        // TP pair inside one MI250X gets the fast link
        assert_eq!(m.ring_bandwidth(&[0, 1]), 200.0);
        // a ring spanning two nodes is limited by Slingshot
        assert_eq!(m.ring_bandwidth(&(0..16).collect::<Vec<_>>()), 100.0);
        // single rank: no communication
        assert_eq!(m.ring_bandwidth(&[3]), f64::INFINITY);
    }

    #[test]
    fn contention_grows_with_node_count() {
        let m = MachineConfig::frontier();
        assert_eq!(m.contention_factor(1), 1.0);
        assert!(m.contention_factor(32) > m.contention_factor(4));
        assert!(m.contention_factor(32) < 3.0, "contention should stay sane");
    }
}
