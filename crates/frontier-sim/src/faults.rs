//! Failure injection and checkpoint-restart accounting.
//!
//! Jobs at Frontier scale see node failures as a matter of course: the
//! paper's training runs survive them with periodic checkpointing and
//! restart. This module injects a seeded failure process into the
//! analytic step model — per-node exponential failures, transient
//! straggler GCDs, degraded links — and accounts a full run under a
//! fail → detect → restart-from-checkpoint loop, reporting goodput,
//! lost work and overhead as functions of the checkpoint interval,
//! alongside the Young/Daly optimal-interval predictions.

use crate::parallel::{StepReport, TrainSetup};
use crate::power::{training_run, PowerModel, TrainingRun};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// The failure/perturbation model of one job allocation.
///
/// Failures are exponential per node (memoryless, the standard MTBF
/// abstraction); stragglers and degraded links are transient per-step
/// perturbations that slow the bulk-synchronous step without killing it.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct FaultModel {
    /// Mean time between failures of one node, hours.
    pub node_mtbf_hours: f64,
    /// GCDs per node (Frontier: 4 MI250X = 8 GCDs).
    pub gcds_per_node: usize,
    /// Time from failure to the scheduler noticing, seconds.
    pub detect_s: f64,
    /// Relaunch + checkpoint-reload time after detection, seconds.
    pub restart_s: f64,
    /// Blocking checkpoint write time, seconds (Daly's δ).
    pub checkpoint_write_s: f64,
    /// Per-GCD per-step probability of a transient straggler.
    pub straggler_prob: f64,
    /// Compute slowdown factor while a straggler drags the step.
    pub straggler_slowdown: f64,
    /// Per-node per-step probability of a degraded link.
    pub degraded_link_prob: f64,
    /// Exposed-communication slowdown factor on a degraded link.
    pub degraded_link_slowdown: f64,
    /// Master seed for the failure process.
    pub seed: u64,
}

impl Default for FaultModel {
    fn default() -> Self {
        Self {
            // ~25k node-hours between failures: a 32-node job fails
            // about every 33 days, the full 9408-node machine every
            // ~2.7 h — the order of magnitude leadership systems report.
            node_mtbf_hours: 25_000.0,
            gcds_per_node: 8,
            detect_s: 30.0,
            restart_s: 300.0,
            checkpoint_write_s: 60.0,
            straggler_prob: 1e-4,
            straggler_slowdown: 2.0,
            degraded_link_prob: 5e-5,
            degraded_link_slowdown: 3.0,
            seed: 0xfa17,
        }
    }
}

impl FaultModel {
    /// Mean time between failures of the whole `n_gcds`-GCD job, seconds
    /// (the per-node rate summed over the allocation).
    pub fn job_mtbf_s(&self, n_gcds: usize) -> f64 {
        let nodes = (n_gcds as f64 / self.gcds_per_node as f64).ceil().max(1.0);
        self.node_mtbf_hours * 3600.0 / nodes
    }

    /// Young's optimal checkpoint interval `sqrt(2 δ M)`, seconds.
    pub fn young_interval_s(&self, n_gcds: usize) -> f64 {
        (2.0 * self.checkpoint_write_s * self.job_mtbf_s(n_gcds)).sqrt()
    }

    /// Daly's higher-order refinement of the optimal interval, seconds.
    pub fn daly_interval_s(&self, n_gcds: usize) -> f64 {
        let delta = self.checkpoint_write_s;
        let m = self.job_mtbf_s(n_gcds);
        if delta >= 2.0 * m {
            return m;
        }
        let x = delta / (2.0 * m);
        (2.0 * delta * m).sqrt() * (1.0 + x.sqrt() / 3.0 + x / 9.0) - delta
    }

    /// Sample the seeded failure schedule one executed run would see:
    /// exponential arrivals at the job MTBF over `horizon_steps` steps
    /// of `step_s` seconds each, each failure killing a uniformly drawn
    /// rank in `0..workers`. Returned as `(step, rank)` pairs sorted by
    /// step — the input an executed-training fault injector replays, so
    /// measured goodput and [`resilient_training_run`] face the same
    /// failure process.
    pub fn sample_failure_schedule(
        &self,
        workers: usize,
        horizon_steps: usize,
        step_s: f64,
    ) -> Vec<(usize, usize)> {
        assert!(workers > 0, "need at least one rank");
        assert!(step_s > 0.0, "steps take positive time");
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ 0xfa17_5eed);
        let mtbf = self.job_mtbf_s(workers);
        let mut out = Vec::new();
        if !mtbf.is_finite() {
            return out;
        }
        let horizon_s = horizon_steps as f64 * step_s;
        let mut t = -mtbf * (1.0 - rng.gen::<f64>()).ln();
        while t < horizon_s {
            let step = (t / step_s) as usize;
            let rank = rng.gen_range(0..workers);
            out.push((step.min(horizon_steps.saturating_sub(1)), rank));
            t += -mtbf * (1.0 - rng.gen::<f64>()).ln();
        }
        out
    }
}

/// Executed-vs-predicted agreement on the goodput-vs-interval curve.
///
/// Given a measured sweep (`intervals` with their `goodput` values) and
/// a predicted optimal interval (e.g. [`FaultModel::daly_interval_s`]),
/// reports where the measured optimum landed, which grid point the
/// prediction names, and whether they are within one grid step of each
/// other — the acceptance form of the executed-vs-simulated claim.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct IntervalAgreement {
    /// Index of the measured goodput maximum in the sweep grid.
    pub measured_idx: usize,
    /// Index of the grid interval closest to the predicted optimum.
    pub predicted_idx: usize,
    /// `|measured_idx − predicted_idx| ≤ 1`.
    pub within_one_step: bool,
}

/// Compare a measured goodput sweep against a predicted optimal
/// interval. Panics on empty or mismatched inputs — the sweep is
/// caller-constructed, so shape errors are bugs, not data.
pub fn interval_agreement(intervals: &[f64], goodput: &[f64], predicted: f64) -> IntervalAgreement {
    assert!(!intervals.is_empty(), "sweep needs at least one interval");
    assert_eq!(intervals.len(), goodput.len(), "one goodput per interval");
    let argbest = |vals: &mut dyn Iterator<Item = (usize, f64)>| -> usize {
        vals.fold((0usize, f64::NEG_INFINITY), |best, (i, v)| {
            if v > best.1 {
                (i, v)
            } else {
                best
            }
        })
        .0
    };
    let measured_idx = argbest(&mut goodput.iter().copied().enumerate());
    let predicted_idx = argbest(
        &mut intervals
            .iter()
            .map(|&i| -(i - predicted).abs())
            .enumerate(),
    );
    IntervalAgreement {
        measured_idx,
        predicted_idx,
        within_one_step: measured_idx.abs_diff(predicted_idx) <= 1,
    }
}

/// Aggregate accounting of a failure-prone run (means over replications).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ResilientTrainingRun {
    /// The failure-free accounting of the same job ([`training_run`]).
    pub ideal: TrainingRun,
    /// Checkpoint interval used, seconds of useful work between writes.
    pub checkpoint_interval_s: f64,
    /// Mean failures survived per replication.
    pub failures: f64,
    /// Mean wall-clock hours to completion.
    pub wall_hours: f64,
    /// Committed productive hours (steps that made it into a
    /// checkpoint or the final state, at ideal step time).
    pub useful_hours: f64,
    /// Hours of work discarded by rollbacks.
    pub lost_hours: f64,
    /// Hours spent writing checkpoints.
    pub checkpoint_hours: f64,
    /// Hours of failure detection + restart downtime.
    pub downtime_hours: f64,
    /// Extra hours stragglers/degraded links added to committed steps.
    pub slowdown_hours: f64,
    /// `useful_hours / wall_hours` — the headline goodput.
    pub goodput: f64,
    /// Total energy in MWh, idle draw during downtime included.
    pub energy_mwh: f64,
    /// Seeded replications averaged over.
    pub replications: usize,
}

/// One replication's raw second-accounting.
#[derive(Clone, Copy, Debug, Default)]
struct RunTally {
    failures: f64,
    wall_s: f64,
    useful_s: f64,
    lost_s: f64,
    ckpt_s: f64,
    down_s: f64,
    slowdown_s: f64,
}

/// Account a full `total_tokens` run under `faults`, checkpointing every
/// `interval_s` seconds of useful work, averaged over `replications`
/// seeded failure histories.
pub fn resilient_training_run(
    setup: &TrainSetup,
    report: &StepReport,
    power: &PowerModel,
    faults: &FaultModel,
    total_tokens: f64,
    interval_s: f64,
    replications: usize,
) -> ResilientTrainingRun {
    let ideal = training_run(setup, report, power, total_tokens);
    let replications = replications.max(1);
    let mut mean = RunTally::default();
    for rep in 0..replications {
        let t = simulate_replication(setup, report, faults, ideal.steps, interval_s, rep as u64);
        mean.failures += t.failures;
        mean.wall_s += t.wall_s;
        mean.useful_s += t.useful_s;
        mean.lost_s += t.lost_s;
        mean.ckpt_s += t.ckpt_s;
        mean.down_s += t.down_s;
        mean.slowdown_s += t.slowdown_s;
    }
    let n = replications as f64;
    let (wall, useful) = (mean.wall_s / n, mean.useful_s / n);

    // energy: productive and discarded compute at the phase-weighted mean
    // power, checkpoint writes at IO power, downtime at idle
    let n_mi250x = (setup.n_gcds as f64 / 2.0).ceil();
    let busy = (mean.useful_s + mean.slowdown_s + mean.lost_s) / n;
    let energy_wh = n_mi250x
        * (busy * power.mean_power(report)
            + mean.ckpt_s / n * power.io_w
            + mean.down_s / n * power.idle_w)
        / 3600.0;

    ResilientTrainingRun {
        ideal,
        checkpoint_interval_s: interval_s,
        failures: mean.failures / n,
        wall_hours: wall / 3600.0,
        useful_hours: useful / 3600.0,
        lost_hours: mean.lost_s / n / 3600.0,
        checkpoint_hours: mean.ckpt_s / n / 3600.0,
        downtime_hours: mean.down_s / n / 3600.0,
        slowdown_hours: mean.slowdown_s / n / 3600.0,
        goodput: if wall > 0.0 { useful / wall } else { 1.0 },
        energy_mwh: energy_wh / 1e6,
        replications,
    }
}

/// Sweep checkpoint intervals, returning one accounting per interval —
/// the goodput-vs-interval curve whose peak Young/Daly predict.
#[allow(clippy::too_many_arguments)]
pub fn goodput_sweep(
    setup: &TrainSetup,
    report: &StepReport,
    power: &PowerModel,
    faults: &FaultModel,
    total_tokens: f64,
    intervals_s: &[f64],
    replications: usize,
) -> Vec<ResilientTrainingRun> {
    intervals_s
        .iter()
        .map(|&i| {
            resilient_training_run(setup, report, power, faults, total_tokens, i, replications)
        })
        .collect()
}

/// Walk one failure history: execute steps, checkpoint every
/// `interval_s` of useful work, roll back to the last checkpoint on
/// failure. Returns the second-accounting of the whole run.
fn simulate_replication(
    setup: &TrainSetup,
    report: &StepReport,
    faults: &FaultModel,
    steps_needed: usize,
    interval_s: f64,
    replication: u64,
) -> RunTally {
    let mut rng = ChaCha8Rng::seed_from_u64(faults.seed ^ (0x5eed << 8) ^ replication);
    let mtbf = faults.job_mtbf_s(setup.n_gcds);
    let interval = interval_s.max(report.step_s);
    let nodes = (setup.n_gcds as f64 / faults.gcds_per_node as f64).ceil();
    // a bulk-synchronous step waits for its slowest rank, so one
    // straggler (or bad link) anywhere slows everyone
    let p_straggle = 1.0 - (1.0 - faults.straggler_prob).powi(setup.n_gcds as i32);
    let p_link = 1.0 - (1.0 - faults.degraded_link_prob).powi(nodes as i32);

    let exp_sample = |rng: &mut ChaCha8Rng| -> f64 { -mtbf * (1.0 - rng.gen::<f64>()).ln() };

    let mut t = RunTally::default();
    let mut committed = 0usize; // steps safely in the last checkpoint
    let mut uncommitted = 0usize; // steps done since then
    let mut since_ckpt_s = 0.0; // actual seconds spent on those steps
    let mut next_fail = exp_sample(&mut rng);

    while committed + uncommitted < steps_needed {
        // duration of the next step under transient perturbations
        let mut d = report.step_s;
        if p_straggle > 0.0 && rng.gen_bool(p_straggle) {
            d += (faults.straggler_slowdown - 1.0) * report.compute_s;
        }
        if p_link > 0.0 && rng.gen_bool(p_link) {
            d += (faults.degraded_link_slowdown - 1.0) * report.comm_exposed_s;
        }

        if t.wall_s + d > next_fail {
            // failure mid-step: everything since the checkpoint is lost
            t.failures += 1.0;
            t.lost_s += since_ckpt_s + (next_fail - t.wall_s).max(0.0);
            t.wall_s = next_fail + faults.detect_s + faults.restart_s;
            t.down_s += faults.detect_s + faults.restart_s;
            uncommitted = 0;
            since_ckpt_s = 0.0;
            next_fail = t.wall_s + exp_sample(&mut rng);
            continue;
        }
        t.wall_s += d;
        since_ckpt_s += d;
        uncommitted += 1;

        let finished = committed + uncommitted >= steps_needed;
        if since_ckpt_s >= interval && !finished {
            // a failure during the write tears the checkpoint: the
            // in-flight interval is lost along with the write time
            if t.wall_s + faults.checkpoint_write_s > next_fail {
                t.failures += 1.0;
                t.lost_s += since_ckpt_s + (next_fail - t.wall_s).max(0.0);
                t.wall_s = next_fail + faults.detect_s + faults.restart_s;
                t.down_s += faults.detect_s + faults.restart_s;
                uncommitted = 0;
                since_ckpt_s = 0.0;
                next_fail = t.wall_s + exp_sample(&mut rng);
                continue;
            }
            t.wall_s += faults.checkpoint_write_s;
            t.ckpt_s += faults.checkpoint_write_s;
            let ideal = uncommitted as f64 * report.step_s;
            t.useful_s += ideal;
            t.slowdown_s += since_ckpt_s - ideal;
            committed += uncommitted;
            uncommitted = 0;
            since_ckpt_s = 0.0;
        }
    }
    // the final partial interval commits with the run's end state
    let ideal = uncommitted as f64 * report.step_s;
    t.useful_s += ideal;
    t.slowdown_s += since_ckpt_s - ideal;
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::{simulate_step, Strategy};
    use matgpt_model::{ArchKind, GptConfig};

    fn setup_256() -> (TrainSetup, StepReport) {
        let mut s = TrainSetup::new(
            GptConfig::paper_1_7b(ArchKind::Llama, 52_000),
            256,
            Strategy::DataParallel,
        );
        s.micro_batch = 8;
        let r = simulate_step(&s);
        (s, r)
    }

    /// A harsh model for fast statistics: job MTBF ≈ 1 h at 256 GCDs.
    fn harsh() -> FaultModel {
        FaultModel {
            node_mtbf_hours: 32.0,
            checkpoint_write_s: 60.0,
            ..FaultModel::default()
        }
    }

    #[test]
    fn young_and_daly_intervals_are_sane() {
        let fm = harsh();
        let m = fm.job_mtbf_s(256);
        assert!((m - 3600.0).abs() < 1.0, "job MTBF {m}");
        let young = fm.young_interval_s(256);
        assert!((young - (2.0f64 * 60.0 * 3600.0).sqrt()).abs() < 1.0);
        let daly = fm.daly_interval_s(256);
        // Daly's correction is small and downward-ish near this regime
        assert!(
            (daly - young).abs() < 0.2 * young,
            "daly {daly} vs young {young}"
        );
    }

    #[test]
    fn failure_free_goodput_is_checkpoint_bound() {
        let (s, r) = setup_256();
        let fm = FaultModel {
            node_mtbf_hours: f64::INFINITY,
            straggler_prob: 0.0,
            degraded_link_prob: 0.0,
            ..FaultModel::default()
        };
        let interval = 1800.0;
        let run = resilient_training_run(&s, &r, &PowerModel::default(), &fm, 15e9, interval, 4);
        assert_eq!(run.failures, 0.0);
        assert_eq!(run.lost_hours, 0.0);
        // goodput ≈ τ / (τ + δ), a touch above since the tail interval
        // skips its write
        let bound = interval / (interval + fm.checkpoint_write_s);
        assert!(
            run.goodput >= bound - 1e-6 && run.goodput < 1.0,
            "goodput {} vs bound {bound}",
            run.goodput
        );
    }

    #[test]
    fn replications_are_seed_deterministic() {
        let (s, r) = setup_256();
        let pm = PowerModel::default();
        let a = resilient_training_run(&s, &r, &pm, &harsh(), 15e9, 600.0, 6);
        let b = resilient_training_run(&s, &r, &pm, &harsh(), 15e9, 600.0, 6);
        assert_eq!(a.goodput, b.goodput);
        assert_eq!(a.failures, b.failures);
        assert_eq!(a.energy_mwh, b.energy_mwh);
    }

    #[test]
    fn failures_cost_wallclock_and_energy() {
        let (s, r) = setup_256();
        let pm = PowerModel::default();
        let fm = harsh();
        let run = resilient_training_run(&s, &r, &pm, &fm, 15e9, fm.young_interval_s(256), 8);
        assert!(
            run.failures > 0.5,
            "harsh MTBF should fail: {}",
            run.failures
        );
        assert!(run.wall_hours > run.ideal.hours);
        assert!(run.energy_mwh > run.ideal.energy_mwh);
        assert!(
            run.goodput < 1.0 && run.goodput > 0.3,
            "goodput {}",
            run.goodput
        );
        // the tallies close: wall = useful + slowdown + lost + ckpt + down
        let sum = run.useful_hours
            + run.slowdown_hours
            + run.lost_hours
            + run.checkpoint_hours
            + run.downtime_hours;
        assert!(
            (sum - run.wall_hours).abs() < 1e-6 * run.wall_hours.max(1.0),
            "tally {sum} vs wall {}",
            run.wall_hours
        );
    }

    #[test]
    fn failure_schedule_is_seeded_and_respects_mtbf() {
        let fm = harsh();
        let a = fm.sample_failure_schedule(4, 1000, 60.0);
        let b = fm.sample_failure_schedule(4, 1000, 60.0);
        assert_eq!(a, b, "same seed, same schedule");
        // 1000 steps × 60 s at ~1.1 h job MTBF (4 GCDs on one node):
        // expect failures, all in range and sorted
        assert!(!a.is_empty());
        for w in a.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
        for &(step, rank) in &a {
            assert!(step < 1000 && rank < 4);
        }
        let infallible = FaultModel {
            node_mtbf_hours: f64::INFINITY,
            ..FaultModel::default()
        };
        assert!(infallible.sample_failure_schedule(4, 1000, 60.0).is_empty());
    }

    #[test]
    fn interval_agreement_flags_adjacent_and_distant_optima() {
        let grid = [2.0, 4.0, 8.0, 16.0];
        // measured peak at 8, predicted 5.6 → nearest grid 4: adjacent
        let a = interval_agreement(&grid, &[0.4, 0.5, 0.55, 0.45], 5.6);
        assert_eq!((a.measured_idx, a.predicted_idx), (2, 1));
        assert!(a.within_one_step);
        // measured peak at 2, predicted 16: two grid steps apart
        let b = interval_agreement(&grid, &[0.6, 0.5, 0.4, 0.3], 16.0);
        assert!(!b.within_one_step);
    }

    #[test]
    fn sweep_returns_one_run_per_interval() {
        let (s, r) = setup_256();
        let pm = PowerModel::default();
        let fm = harsh();
        let runs = goodput_sweep(&s, &r, &pm, &fm, 15e9, &[300.0, 900.0], 2);
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].checkpoint_interval_s, 300.0);
        assert_eq!(runs[1].checkpoint_interval_s, 900.0);
    }
}
