#![warn(missing_docs)]

//! # matgpt-frontier-sim
//!
//! An analytic + discrete-event simulator of LLM training on the Frontier
//! supercomputer (AMD MI250X), substituting for the hardware the paper ran
//! on. It prices one optimizer step from first principles — FLOP counts and
//! matrix shapes (`matgpt-model::count`), ring-collective α-β costs, memory
//! footprints, overlap windows — with a handful of constants calibrated
//! once against the paper's headline numbers.
//!
//! Modules map onto the paper's measurement tooling:
//!
//! * [`machine`] — Frontier topology and bandwidth hierarchy (Sec. IV-A);
//! * [`kernels`] — GEMM/attention efficiency incl. flash v1/v2 (Fig. 4);
//! * [`memory`] — the 12×-params rule plus activation terms (Fig. 5);
//! * [`collectives`] — the RCCL cost substitute;
//! * [`parallel`] — DP / ZeRO-1 / TP / PP step simulation (Figs. 7, 8, 11);
//! * [`gridsearch`] — architecture search under Eqs. (1)–(5) (Fig. 4);
//! * [`power`] — phase-dependent power/energy (Table IV);
//! * [`faults`] — failure injection and checkpoint-restart goodput;
//! * [`trace`] — OmniTrace/rocm-smi-style timelines (Figs. 9, 12).

pub mod collectives;
pub mod faults;
pub mod gridsearch;
pub mod inference;
pub mod kernels;
pub mod machine;
pub mod memory;
pub mod parallel;
pub mod planning;
pub mod power;
pub mod trace;

pub use collectives::{collective_time, Collective};
pub use faults::{
    goodput_sweep, interval_agreement, resilient_training_run, FaultModel, IntervalAgreement,
    ResilientTrainingRun,
};
pub use gridsearch::{one_b_grid, Constraints, GridCell};
pub use inference::{simulate_inference, InferenceReport, InferenceSetup};
pub use kernels::{FlashVersion, KernelModel};
pub use machine::MachineConfig;
pub use memory::{fits, max_seq_len, peak_memory_gib, Partitioning};
pub use parallel::{simulate_step, MsgRecord, StepReport, Strategy, TpMapping, TrainSetup};
pub use planning::{best_plan, plan_training, Plan, PlanConstraints, PlanObjective};
pub use power::{training_run, PowerModel, TrainingRun};
pub use trace::{device_trace, step_timeline, DeviceSample, PhaseKind, TraceEvent};
