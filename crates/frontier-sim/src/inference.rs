//! Autoregressive-inference performance model — an extension beyond the
//! paper's training study, motivated by its LLaMA-2 aside ("includes
//! tweaks to improve inference performance").
//!
//! Inference has two regimes:
//!
//! * **prefill** — one big batched forward over the prompt: compute-bound,
//!   priced like a training forward;
//! * **decode** — one token at a time: every step must stream the weights
//!   *and* the KV cache through HBM, so it is bandwidth-bound. Grouped-
//!   query attention shrinks the KV-cache term, which is exactly why
//!   LLaMA-2 adopted it.

use crate::kernels::{FlashVersion, KernelModel};
use crate::machine::MachineConfig;
use matgpt_model::count::{layer_flops, total_params};
use matgpt_model::GptConfig;
use serde::{Deserialize, Serialize};

/// HBM bandwidth of one GCD in GB/s (MI250X: 1.6 TB/s per GCD pair ≈
/// 1638 GB/s for the full card; per GCD ~819... we model the effective
/// streaming rate an inference kernel achieves).
pub const GCD_HBM_GBPS: f64 = 1200.0;

/// An inference workload.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct InferenceSetup {
    /// Model.
    pub cfg: GptConfig,
    /// Machine.
    pub machine: MachineConfig,
    /// Kernel model (for the compute-bound prefill).
    pub kernel: KernelModel,
    /// Flash setting for prefill attention.
    pub flash: FlashVersion,
    /// Concurrent sequences being decoded.
    pub batch: usize,
    /// Prompt length.
    pub prompt_len: usize,
    /// Tokens to generate.
    pub gen_len: usize,
}

impl InferenceSetup {
    /// Sensible defaults for a chat-style request.
    pub fn new(cfg: GptConfig) -> Self {
        Self {
            cfg,
            machine: MachineConfig::frontier(),
            kernel: KernelModel::default(),
            flash: FlashVersion::V2,
            batch: 1,
            prompt_len: 512,
            gen_len: 256,
        }
    }

    /// Predicted decode throughput in tokens/s across the batch — the
    /// analytic counterpart of the serving engine's measured
    /// `tokens_per_sec` metric (see `ext_serve_bench`).
    pub fn decode_tokens_per_sec(&self) -> f64 {
        simulate_inference(self).tokens_per_s
    }
}

/// Inference cost breakdown.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct InferenceReport {
    /// Prefill wall time (s).
    pub prefill_s: f64,
    /// Mean per-token decode latency (s).
    pub decode_per_token_s: f64,
    /// End-to-end time (s).
    pub total_s: f64,
    /// Decode throughput in tokens/s across the batch.
    pub tokens_per_s: f64,
    /// KV-cache bytes at the end of generation (whole batch).
    pub kv_cache_bytes: f64,
    /// Fraction of decode time spent streaming the KV cache.
    pub kv_fraction: f64,
}

/// Price an inference request on one GCD.
pub fn simulate_inference(setup: &InferenceSetup) -> InferenceReport {
    let cfg = &setup.cfg;
    let km = &setup.kernel;

    // ---- prefill: compute-bound forward over the prompt
    let layer = layer_flops(cfg, setup.batch, setup.prompt_len);
    let peak = 191.5e12 * km.gemm_efficiency(cfg);
    let attn_eff = km.attention_rel_eff(cfg, setup.flash);
    let prefill_layer = (layer.qkv + layer.linproj + layer.mlp) / peak
        + (layer.score + layer.aov) / (peak * attn_eff);
    let head =
        2.0 * (setup.batch * setup.prompt_len) as f64 * cfg.hidden as f64 * cfg.vocab_size as f64
            / peak;
    let prefill_s = prefill_layer * cfg.layers as f64 + head;

    // ---- decode: bandwidth-bound; each token streams weights + KV cache
    let weight_bytes = 2.0 * total_params(cfg) as f64; // bf16 weights
    let kv_per_token = cfg.kv_cache_bytes_per_token() as f64;
    let mean_ctx = setup.prompt_len as f64 + setup.gen_len as f64 / 2.0;
    let kv_bytes_mean = kv_per_token * mean_ctx * setup.batch as f64;
    let bw = GCD_HBM_GBPS * 1e9;
    let decode_per_token_s = (weight_bytes + kv_bytes_mean) / bw;
    let decode_s = decode_per_token_s * setup.gen_len as f64;

    let kv_cache_bytes =
        kv_per_token * (setup.prompt_len + setup.gen_len) as f64 * setup.batch as f64;
    InferenceReport {
        prefill_s,
        decode_per_token_s,
        total_s: prefill_s + decode_s,
        tokens_per_s: setup.batch as f64 / decode_per_token_s,
        kv_cache_bytes,
        kv_fraction: kv_bytes_mean / (weight_bytes + kv_bytes_mean),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matgpt_model::ArchKind;

    fn base() -> InferenceSetup {
        InferenceSetup::new(GptConfig::paper_6_7b(ArchKind::Llama, 52_000))
    }

    #[test]
    fn decode_is_bandwidth_bound_and_sane() {
        let r = simulate_inference(&base());
        // 13.7 GB of weights at ~1.2 TB/s -> ~11 ms/token floor
        assert!(
            (0.005..0.1).contains(&r.decode_per_token_s),
            "{}",
            r.decode_per_token_s
        );
        assert!(r.prefill_s > 0.0 && r.total_s > r.prefill_s);
    }

    #[test]
    fn gqa_cuts_kv_cache_and_speeds_long_context_decode() {
        let mut mha = base();
        mha.prompt_len = 16_384;
        mha.batch = 16;
        let mut gqa = mha.clone();
        gqa.cfg.kv_heads = Some(4); // 8x fewer kv heads
        let rm = simulate_inference(&mha);
        let rg = simulate_inference(&gqa);
        assert!(rg.kv_cache_bytes < rm.kv_cache_bytes / 7.0);
        assert!(
            rg.decode_per_token_s < rm.decode_per_token_s,
            "GQA {} vs MHA {}",
            rg.decode_per_token_s,
            rm.decode_per_token_s
        );
        assert!(rg.kv_fraction < rm.kv_fraction);
    }

    #[test]
    fn batching_raises_throughput_but_not_latency_free() {
        let mut one = base();
        one.batch = 1;
        let mut many = base();
        many.batch = 16;
        let r1 = simulate_inference(&one);
        let r16 = simulate_inference(&many);
        // weights amortise across the batch: throughput up
        assert!(r16.tokens_per_s > 4.0 * r1.tokens_per_s);
        // but per-token latency grows with the bigger KV traffic
        assert!(r16.decode_per_token_s >= r1.decode_per_token_s);
    }

    #[test]
    fn longer_context_slows_decode() {
        let mut short = base();
        short.prompt_len = 128;
        let mut long = base();
        long.prompt_len = 16_384;
        let rs = simulate_inference(&short);
        let rl = simulate_inference(&long);
        assert!(rl.decode_per_token_s > rs.decode_per_token_s);
        assert!(rl.kv_fraction > rs.kv_fraction);
    }

    #[test]
    fn decode_tokens_per_sec_is_monotone_in_batch() {
        // Continuous batching exists because weights amortise: predicted
        // throughput must be non-decreasing as the batch grows.
        let mut prev = 0.0;
        for batch in [1usize, 2, 4, 8, 16, 32] {
            let mut s = base();
            s.batch = batch;
            let tps = s.decode_tokens_per_sec();
            assert!(
                tps >= prev,
                "batch {batch}: {tps} tokens/s fell below {prev}"
            );
            prev = tps;
        }
    }

    #[test]
    fn prefill_scales_with_prompt_length() {
        let mut a = base();
        a.prompt_len = 256;
        let mut b = base();
        b.prompt_len = 1024;
        let ra = simulate_inference(&a);
        let rb = simulate_inference(&b);
        assert!(rb.prefill_s > 3.0 * ra.prefill_s);
    }
}
