//! Power, energy and cost model (paper Table IV, Figs. 9 and 12).
//!
//! An MI250X has a single power sensor covering both GCDs. Power is
//! phase-dependent: high during dense compute, markedly lower during
//! communication (the oscillation the paper's traces show), intermediate
//! during data movement.

use crate::parallel::{StepReport, TrainSetup};
use serde::{Deserialize, Serialize};

/// Phase-dependent power draw of one MI250X (both GCDs), watts.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PowerModel {
    /// Idle draw.
    pub idle_w: f64,
    /// Draw during dense GEMM compute.
    pub compute_w: f64,
    /// Draw during RCCL communication.
    pub comm_w: f64,
    /// Draw during host/device data movement.
    pub io_w: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        Self {
            idle_w: 90.0,
            compute_w: 490.0,
            comm_w: 280.0,
            io_w: 350.0,
        }
    }
}

impl PowerModel {
    /// Mean power of one MI250X over a step, from the phase breakdown.
    pub fn mean_power(&self, report: &StepReport) -> f64 {
        let (c, m, i) = report.breakdown();
        c * self.compute_w + m * self.comm_w + i * self.io_w
    }

    /// Energy efficiency in TFLOPS/W — the paper computes this as the
    /// two-GCD throughput over the MI250X power.
    pub fn efficiency(&self, report: &StepReport) -> f64 {
        2.0 * report.tflops_per_gcd / self.mean_power(report)
    }
}

/// Aggregate accounting of a full pre-training run (Table IV).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TrainingRun {
    /// GPUs (GCDs) used.
    pub gcds: usize,
    /// Wall-clock hours.
    pub hours: f64,
    /// Total energy in MWh.
    pub energy_mwh: f64,
    /// TFLOPS/W efficiency.
    pub efficiency: f64,
    /// Mean per-MI250X power (W).
    pub mean_power_w: f64,
    /// Optimizer steps executed.
    pub steps: usize,
}

/// Account a full run of `total_tokens` training tokens.
pub fn training_run(
    setup: &TrainSetup,
    report: &StepReport,
    power: &PowerModel,
    total_tokens: f64,
) -> TrainingRun {
    let steps = (total_tokens / report.tokens_per_step as f64).ceil() as usize;
    let seconds = steps as f64 * report.step_s;
    let mean_power = power.mean_power(report);
    let n_mi250x = (setup.n_gcds as f64 / 2.0).ceil();
    let energy_wh = mean_power * n_mi250x * seconds / 3600.0;
    TrainingRun {
        gcds: setup.n_gcds,
        hours: seconds / 3600.0,
        energy_mwh: energy_wh / 1e6,
        efficiency: power.efficiency(report),
        mean_power_w: mean_power,
        steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::{simulate_step, Strategy};
    use matgpt_model::{ArchKind, GptConfig};

    fn run(cfg: GptConfig, strat: Strategy, micro_batch: usize) -> (TrainSetup, StepReport) {
        let mut s = TrainSetup::new(cfg, 256, strat);
        s.micro_batch = micro_batch;
        let r = simulate_step(&s);
        (s, r)
    }

    #[test]
    fn table4_power_levels() {
        // Paper: mean power 476 W (1.7B) and 434 W (6.7B) per MI250X —
        // the larger model communicates more, so it draws *less*.
        let pm = PowerModel::default();
        let (_, r17) = run(
            GptConfig::paper_1_7b(ArchKind::Llama, 52_000),
            Strategy::DataParallel,
            8,
        );
        let (_, r67) = run(
            GptConfig::paper_6_7b(ArchKind::Llama, 52_000),
            Strategy::Zero1,
            2,
        );
        let p17 = pm.mean_power(&r17);
        let p67 = pm.mean_power(&r67);
        assert!(p17 > p67, "1.7B {p17} should out-draw 6.7B {p67}");
        assert!((430.0..500.0).contains(&p17), "1.7B power {p17}");
        assert!((380.0..470.0).contains(&p67), "6.7B power {p67}");
    }

    #[test]
    fn table4_efficiency_band() {
        // Paper: 0.33 (1.7B) and 0.27 (6.7B) TFLOPS/W.
        let pm = PowerModel::default();
        let (_, r17) = run(
            GptConfig::paper_1_7b(ArchKind::Llama, 52_000),
            Strategy::DataParallel,
            8,
        );
        let (_, r67) = run(
            GptConfig::paper_6_7b(ArchKind::Llama, 52_000),
            Strategy::Zero1,
            2,
        );
        let e17 = pm.efficiency(&r17);
        let e67 = pm.efficiency(&r67);
        assert!(e17 > e67, "1.7B more efficient");
        assert!((0.25..0.45).contains(&e17), "1.7B eff {e17}");
        assert!((0.2..0.4).contains(&e67), "6.7B eff {e67}");
    }

    #[test]
    fn table4_time_ratio() {
        // Paper: 4.1 h vs 16.5 h on the same 15 B tokens — a ratio of ~4
        // tracking the parameter ratio.
        let pm = PowerModel::default();
        let (s17, r17) = run(
            GptConfig::paper_1_7b(ArchKind::Llama, 52_000),
            Strategy::DataParallel,
            8,
        );
        let (s67, r67) = run(
            GptConfig::paper_6_7b(ArchKind::Llama, 52_000),
            Strategy::Zero1,
            8,
        );
        // same token budget regardless of per-device batch
        let t17 = training_run(&s17, &r17, &pm, 15e9);
        let t67 = training_run(&s67, &r67, &pm, 15e9);
        let ratio = t67.hours / t17.hours;
        assert!((3.0..5.5).contains(&ratio), "time ratio {ratio}");
        let energy_ratio = t67.energy_mwh / t17.energy_mwh;
        assert!(
            (2.8..5.5).contains(&energy_ratio),
            "energy ratio {energy_ratio}"
        );
    }

    #[test]
    fn energy_scales_linearly_with_tokens() {
        let pm = PowerModel::default();
        let (s, r) = run(
            GptConfig::paper_1_7b(ArchKind::Llama, 52_000),
            Strategy::DataParallel,
            8,
        );
        let a = training_run(&s, &r, &pm, 15e9);
        let b = training_run(&s, &r, &pm, 30e9);
        assert!((b.energy_mwh / a.energy_mwh - 2.0).abs() < 0.01);
        assert!((b.hours / a.hours - 2.0).abs() < 0.01);
    }

    #[test]
    fn power_is_between_comm_and_compute_levels() {
        let pm = PowerModel::default();
        let (_, r) = run(
            GptConfig::paper_6_7b(ArchKind::Llama, 52_000),
            Strategy::Zero1,
            1,
        );
        let p = pm.mean_power(&r);
        assert!(p > pm.comm_w && p < pm.compute_w);
    }
}
