//! Ring-collective cost models (the RCCL substitute).
//!
//! Standard α-β models: an `n`-rank ring all-reduce moves `2(n-1)/n · S`
//! bytes per rank in `2(n-1)` latency-bound steps; all-gather and
//! reduce-scatter each move `(n-1)/n · S`. Bandwidth is the bottleneck link
//! of the ring, degraded by the machine's contention factor when the
//! collective spans many nodes.

use crate::machine::MachineConfig;
use serde::{Deserialize, Serialize};

/// The collective operations the training strategies issue.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Collective {
    /// Reduce + broadcast (gradient sync, TP activation sync).
    AllReduce,
    /// Gather shards to all ranks (ZeRO parameter refresh).
    AllGather,
    /// Reduce with scattered results (ZeRO gradient shard).
    ReduceScatter,
    /// Point-to-point send/recv (pipeline stage boundary).
    P2p,
}

impl Collective {
    /// Short RCCL-style name for logs.
    pub fn name(&self) -> &'static str {
        match self {
            Collective::AllReduce => "AllReduce",
            Collective::AllGather => "AllGather",
            Collective::ReduceScatter => "ReduceScatter",
            Collective::P2p => "SendRecv",
        }
    }
}

/// Time in seconds for one collective of `bytes` over `ranks`.
pub fn collective_time(
    machine: &MachineConfig,
    coll: Collective,
    bytes: f64,
    ranks: &[usize],
) -> f64 {
    let n = ranks.len();
    if n < 2 {
        return 0.0;
    }
    let nodes: std::collections::BTreeSet<usize> =
        ranks.iter().map(|&r| machine.node_of(r)).collect();
    let bw = machine.ring_bandwidth(ranks) * 1e9 * machine.msg_efficiency(bytes)
        / machine.contention_factor(nodes.len());
    let nf = n as f64;
    let log_n = (n as f64).log2().ceil() as usize;
    let (volume, steps) = match coll {
        Collective::AllReduce => (2.0 * (nf - 1.0) / nf * bytes, 2 * log_n),
        Collective::AllGather | Collective::ReduceScatter => ((nf - 1.0) / nf * bytes, log_n),
        Collective::P2p => (bytes, 1),
    };
    volume / bw + steps as f64 * machine.link_latency_s
}

/// Per-rank bytes moved on the wire by one collective (for the Fig. 11
/// aggregated message-size accounting).
pub fn wire_bytes(coll: Collective, bytes: f64, n: usize) -> f64 {
    if n < 2 {
        return 0.0;
    }
    let nf = n as f64;
    match coll {
        Collective::AllReduce => 2.0 * (nf - 1.0) / nf * bytes,
        Collective::AllGather | Collective::ReduceScatter => (nf - 1.0) / nf * bytes,
        Collective::P2p => bytes,
    }
}

/// Split `len` elements into `n` contiguous ring chunks whose sizes
/// differ by at most one — the chunk partition a ring
/// reduce-scatter/all-gather rotates through. `core::parallel` executes
/// its real in-process ring over exactly these bounds, which is what
/// makes its measured per-rank traffic land on the
/// [`wire_bytes`] `2(n−1)/n · S` closed form (up to remainder chunks).
pub fn ring_chunks(len: usize, n: usize) -> Vec<std::ops::Range<usize>> {
    assert!(n > 0, "ring needs at least one rank");
    (0..n).map(|i| (i * len / n)..((i + 1) * len / n)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frontier() -> MachineConfig {
        MachineConfig::frontier()
    }

    #[test]
    fn ring_chunks_cover_and_balance() {
        for (len, n) in [(0, 1), (7, 3), (8, 4), (10, 4), (3, 8), (1024, 7)] {
            let chunks = ring_chunks(len, n);
            assert_eq!(chunks.len(), n);
            assert_eq!(chunks[0].start, 0);
            assert_eq!(chunks[n - 1].end, len);
            for w in chunks.windows(2) {
                assert_eq!(w[0].end, w[1].start, "contiguous cover");
            }
            let sizes: Vec<usize> = chunks.iter().map(|c| c.len()).collect();
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= 1, "balanced within one: {sizes:?}");
        }
    }

    #[test]
    fn ring_chunk_traffic_matches_wire_bytes_formula() {
        // A rank sends n-1 chunks per reduce-scatter; across the divisible
        // case that is exactly (n-1)/n · len elements, i.e. the all-reduce
        // (RS + AG) volume is the wire_bytes closed form.
        let (len, n) = (1 << 20, 8);
        let chunks = ring_chunks(len, n);
        let per_rank_rs: usize = chunks.iter().skip(1).map(|c| c.len()).sum();
        let ar_elems = 2 * per_rank_rs;
        let formula = wire_bytes(Collective::AllReduce, (len * 4) as f64, n);
        assert_eq!(ar_elems as f64 * 4.0, formula);
    }

    #[test]
    fn allreduce_matches_closed_form_small() {
        let m = frontier();
        // 2 ranks on one MI250X: volume = S, bw 200 GB/s (large message, so
        // near-full utilisation), 2 latency steps
        let t = collective_time(&m, Collective::AllReduce, 200e9, &[0, 1]);
        let expect = 1.0 / m.msg_efficiency(200e9) + 2.0 * m.link_latency_s;
        assert!((t - expect).abs() / expect < 1e-6, "{t} vs {expect}");
    }

    #[test]
    fn allreduce_is_twice_allgather_volume() {
        let m = frontier();
        let ranks: Vec<usize> = (0..8).collect();
        let ar = collective_time(&m, Collective::AllReduce, 1e9, &ranks);
        let ag = collective_time(&m, Collective::AllGather, 1e9, &ranks);
        assert!(ar > 1.9 * ag && ar < 2.2 * ag, "{ar} vs {ag}");
    }

    #[test]
    fn cross_node_collectives_pay_contention() {
        let m = frontier();
        let one_node: Vec<usize> = (0..8).collect();
        let four_nodes: Vec<usize> = (0..32).collect();
        let t1 = collective_time(&m, Collective::AllReduce, 1e9, &one_node);
        let t4 = collective_time(&m, Collective::AllReduce, 1e9, &four_nodes);
        // same bottleneck bandwidth, but more contention and more steps
        assert!(t4 > t1);
    }

    #[test]
    fn tp_pair_is_faster_than_cross_node_pair() {
        let m = frontier();
        let fast = collective_time(&m, Collective::AllReduce, 1e9, &[0, 1]);
        let slow = collective_time(&m, Collective::AllReduce, 1e9, &[0, 8]);
        assert!(
            slow / fast > 1.8,
            "intra-MI250X {fast} vs cross-node {slow}"
        );
    }

    #[test]
    fn degenerate_groups_cost_nothing() {
        let m = frontier();
        assert_eq!(collective_time(&m, Collective::AllReduce, 1e9, &[0]), 0.0);
        assert_eq!(wire_bytes(Collective::AllGather, 1e9, 1), 0.0);
    }

    #[test]
    fn volume_monotone_in_ranks() {
        // per-rank wire volume approaches the asymptote S (or 2S) from below
        let v8 = wire_bytes(Collective::AllReduce, 1e9, 8);
        let v256 = wire_bytes(Collective::AllReduce, 1e9, 256);
        assert!(v8 < v256);
        assert!(v256 < 2e9);
    }
}
