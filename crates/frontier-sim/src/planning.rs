//! Deployment planning: turn the paper's observations into an API.
//!
//! The paper closes with "practical guidance for building LLMs on HPC
//! systems". This module makes the guidance executable: given a model, a
//! token budget and constraints (deadline, energy cap, GPU allocation),
//! enumerate feasible (strategy × GPU-count × micro-batch) plans with the
//! step simulator and rank them.

use crate::kernels::FlashVersion;
use crate::parallel::{simulate_step, Strategy, TrainSetup};
use crate::power::{training_run, PowerModel, TrainingRun};
use matgpt_model::GptConfig;
use serde::{Deserialize, Serialize};

/// What the planner may spend.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PlanConstraints {
    /// Largest GPU (GCD) allocation available.
    pub max_gcds: usize,
    /// Wall-clock deadline in hours (None = unbounded).
    pub max_hours: Option<f64>,
    /// Energy cap in MWh (None = unbounded).
    pub max_energy_mwh: Option<f64>,
}

impl Default for PlanConstraints {
    fn default() -> Self {
        Self {
            max_gcds: 1024,
            max_hours: None,
            max_energy_mwh: None,
        }
    }
}

/// What to optimise once constraints are met.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlanObjective {
    /// Minimise wall-clock time.
    Time,
    /// Minimise total energy.
    Energy,
    /// Minimise GPU-hours (allocation cost).
    GpuHours,
}

/// One evaluated plan.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Plan {
    /// Strategy used.
    pub strategy: Strategy,
    /// GCDs used.
    pub gcds: usize,
    /// Micro-batch per replica.
    pub micro_batch: usize,
    /// Projected run accounting.
    pub run: TrainingRun,
    /// Per-GCD throughput.
    pub tflops_per_gcd: f64,
    /// GPU-hours consumed.
    pub gpu_hours: f64,
}

/// Enumerate and rank feasible plans for pre-training `cfg` on
/// `total_tokens` tokens.
pub fn plan_training(
    cfg: &GptConfig,
    total_tokens: f64,
    constraints: &PlanConstraints,
    objective: PlanObjective,
) -> Vec<Plan> {
    let pm = PowerModel::default();
    let strategies = [
        Strategy::DataParallel,
        Strategy::Zero1,
        Strategy::TensorParallel(2),
        Strategy::PipelineParallel(2),
    ];
    let mut plans = Vec::new();
    let mut gcds = 8usize;
    while gcds <= constraints.max_gcds {
        for strat in strategies {
            for micro_batch in [1usize, 2, 4, 8] {
                let mut setup = TrainSetup::new(cfg.clone(), gcds, strat);
                setup.micro_batch = micro_batch;
                setup.flash = FlashVersion::V2;
                let report = simulate_step(&setup);
                if !report.fits_memory {
                    continue;
                }
                let run = training_run(&setup, &report, &pm, total_tokens);
                if let Some(h) = constraints.max_hours {
                    if run.hours > h {
                        continue;
                    }
                }
                if let Some(e) = constraints.max_energy_mwh {
                    if run.energy_mwh > e {
                        continue;
                    }
                }
                plans.push(Plan {
                    strategy: strat,
                    gcds,
                    micro_batch,
                    gpu_hours: run.hours * gcds as f64,
                    tflops_per_gcd: report.tflops_per_gcd,
                    run,
                });
            }
        }
        gcds *= 2;
    }
    plans.sort_by(|a, b| {
        let key = |p: &Plan| match objective {
            PlanObjective::Time => p.run.hours,
            PlanObjective::Energy => p.run.energy_mwh,
            PlanObjective::GpuHours => p.gpu_hours,
        };
        key(a).partial_cmp(&key(b)).unwrap()
    });
    plans
}

/// The single best plan, if any configuration is feasible.
pub fn best_plan(
    cfg: &GptConfig,
    total_tokens: f64,
    constraints: &PlanConstraints,
    objective: PlanObjective,
) -> Option<Plan> {
    plan_training(cfg, total_tokens, constraints, objective)
        .into_iter()
        .next()
}

#[cfg(test)]
mod tests {
    use super::*;
    use matgpt_model::ArchKind;

    fn cfg67() -> GptConfig {
        GptConfig::paper_6_7b(ArchKind::Llama, 52_000)
    }

    #[test]
    fn planner_finds_feasible_plans_and_ranks_them() {
        let plans = plan_training(
            &cfg67(),
            15e9,
            &PlanConstraints::default(),
            PlanObjective::Time,
        );
        assert!(!plans.is_empty());
        for w in plans.windows(2) {
            assert!(w[0].run.hours <= w[1].run.hours);
        }
        // every surviving plan fits memory (filter applied)
        assert!(plans.iter().all(|p| p.gcds <= 1024));
    }

    #[test]
    fn fastest_plan_uses_many_gpus_cheapest_uses_few() {
        let fast = best_plan(
            &cfg67(),
            15e9,
            &PlanConstraints::default(),
            PlanObjective::Time,
        )
        .unwrap();
        let cheap = best_plan(
            &cfg67(),
            15e9,
            &PlanConstraints::default(),
            PlanObjective::GpuHours,
        )
        .unwrap();
        assert!(
            fast.gcds >= cheap.gcds,
            "fast {} vs cheap {}",
            fast.gcds,
            cheap.gcds
        );
        assert!(cheap.gpu_hours <= fast.gpu_hours);
    }

    #[test]
    fn deadline_constraint_filters_slow_plans() {
        let unconstrained = plan_training(
            &cfg67(),
            15e9,
            &PlanConstraints::default(),
            PlanObjective::GpuHours,
        );
        let slowest = unconstrained
            .iter()
            .map(|p| p.run.hours)
            .fold(0.0, f64::max);
        let tight = PlanConstraints {
            max_hours: Some(slowest / 4.0),
            ..PlanConstraints::default()
        };
        let constrained = plan_training(&cfg67(), 15e9, &tight, PlanObjective::GpuHours);
        assert!(constrained.len() < unconstrained.len());
        assert!(constrained.iter().all(|p| p.run.hours <= slowest / 4.0));
    }

    #[test]
    fn infeasible_constraints_yield_empty() {
        let impossible = PlanConstraints {
            max_gcds: 8,
            max_hours: Some(1e-6),
            max_energy_mwh: None,
        };
        assert!(best_plan(&cfg67(), 15e9, &impossible, PlanObjective::Time).is_none());
    }

    #[test]
    fn paper_guidance_emerges_zero_or_dp_preferred() {
        // Observation 2: minimal model parallelism. The best plan should
        // not be pipeline parallelism.
        let best = best_plan(
            &cfg67(),
            15e9,
            &PlanConstraints::default(),
            PlanObjective::GpuHours,
        )
        .unwrap();
        assert!(
            !matches!(best.strategy, Strategy::PipelineParallel(_)),
            "{:?}",
            best.strategy
        );
    }
}
