//! GPU memory footprint model (paper Fig. 5 and the parallelism memory
//! arithmetic).
//!
//! The paper's rule of thumb — "the memory footprint for training a
//! GPT-style model is roughly 12 times the parameters" — corresponds to
//! bf16 weights (2 B) + bf16 gradients (2 B) + fp32 Adam/LAMB moments
//! (8 B). Activations add a linear term in sequence length, plus, without
//! flash attention, a quadratic score/probability term for the layers in
//! flight.

use crate::kernels::FlashVersion;
use matgpt_model::count::total_params;
use matgpt_model::GptConfig;
use serde::{Deserialize, Serialize};

/// Bytes per parameter for weights+grads+optimizer states (the 12× rule).
pub const STATE_BYTES_PER_PARAM: f64 = 12.0;
/// Of which optimizer states (fp32 moments) — the part ZeRO-1 shards.
pub const OPTIMIZER_BYTES_PER_PARAM: f64 = 8.0;
/// Saved activations per layer per token, in units of hidden values.
pub const ACT_HIDDEN_MULTIPLIER: f64 = 8.0;
/// Attention score/probability buffers in flight without flash (layers).
pub const LIVE_SCORE_LAYERS: f64 = 3.0;

/// How the model/optimizer state is partitioned.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Partitioning {
    /// Data-parallel group size (shards optimizer states under ZeRO-1).
    pub dp: usize,
    /// Whether ZeRO stage 1 is active.
    pub zero1: bool,
    /// Tensor-parallel degree (shards weights and activations).
    pub tp: usize,
    /// Pipeline-parallel degree (shards layers).
    pub pp: usize,
}

impl Partitioning {
    /// Plain data parallelism.
    pub fn data_parallel(dp: usize) -> Self {
        Self {
            dp,
            zero1: false,
            tp: 1,
            pp: 1,
        }
    }
}

/// Peak training memory in GiB for one GCD.
pub fn peak_memory_gib(
    cfg: &GptConfig,
    micro_batch: usize,
    seq: usize,
    flash: FlashVersion,
    part: &Partitioning,
) -> f64 {
    let params = total_params(cfg) as f64 / part.tp as f64 / part.pp as f64;
    let mut state = params * (STATE_BYTES_PER_PARAM - OPTIMIZER_BYTES_PER_PARAM);
    state += if part.zero1 {
        params * OPTIMIZER_BYTES_PER_PARAM / part.dp as f64
    } else {
        params * OPTIMIZER_BYTES_PER_PARAM
    };

    let layers_here = (cfg.layers as f64 / part.pp as f64).ceil();
    let tokens = (micro_batch * seq) as f64;
    let hidden = cfg.hidden as f64 / part.tp as f64;
    let act_linear = layers_here * ACT_HIDDEN_MULTIPLIER * tokens * hidden * 2.0;

    let head_dim = cfg.hidden / cfg.heads;
    let flash_on = !matches!(flash, FlashVersion::None) && flash.eligible(head_dim);
    let act_quad = if flash_on {
        // flash keeps only per-row statistics
        LIVE_SCORE_LAYERS * (micro_batch * cfg.heads) as f64 * seq as f64 * 4.0
    } else {
        LIVE_SCORE_LAYERS
            * (micro_batch * cfg.heads / part.tp.min(cfg.heads)) as f64
            * (seq as f64)
            * (seq as f64)
            * 2.0
    };

    (state + act_linear + act_quad) / (1024.0 * 1024.0 * 1024.0)
}

/// Whether the configuration fits in a GCD's HBM.
pub fn fits(
    cfg: &GptConfig,
    micro_batch: usize,
    seq: usize,
    flash: FlashVersion,
    part: &Partitioning,
    gcd_memory_gib: f64,
) -> bool {
    peak_memory_gib(cfg, micro_batch, seq, flash, part) <= gcd_memory_gib
}

/// Largest power-of-two sequence length that fits (the paper's Fig. 5
/// "maximum supported sequence length" sweep).
pub fn max_seq_len(
    cfg: &GptConfig,
    micro_batch: usize,
    flash: FlashVersion,
    part: &Partitioning,
    gcd_memory_gib: f64,
) -> usize {
    let mut best = 0;
    let mut seq = 1024usize;
    while seq <= 1 << 20 {
        let c = GptConfig {
            max_seq: seq,
            ..cfg.clone()
        };
        if fits(&c, micro_batch, seq, flash, part, gcd_memory_gib) {
            best = seq;
        }
        seq *= 2;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use matgpt_model::ArchKind;

    fn cfg_1_7b() -> GptConfig {
        GptConfig::paper_1_7b(ArchKind::NeoX, 52_000)
    }

    fn cfg_6_7b() -> GptConfig {
        GptConfig::paper_6_7b(ArchKind::NeoX, 52_000)
    }

    fn single() -> Partitioning {
        Partitioning::data_parallel(1)
    }

    #[test]
    fn one_seven_b_fits_on_one_gcd_six_seven_does_not() {
        // Paper: "for the training of a 1.7B model, a single GCD ... is able
        // to accommodate the entire model. However, for a 6.7B model, some
        // level of model parallelism is required."
        assert!(fits(
            &cfg_1_7b(),
            1,
            2048,
            FlashVersion::None,
            &single(),
            64.0
        ));
        assert!(!fits(
            &cfg_6_7b(),
            1,
            2048,
            FlashVersion::None,
            &single(),
            64.0
        ));
    }

    #[test]
    fn fig5_oom_thresholds() {
        // Paper Fig. 5: without flash, 1.7B training OOMs beyond seq 8192;
        // with flash the maximum grows ~4× to 32768.
        let no_flash = max_seq_len(&cfg_1_7b(), 1, FlashVersion::None, &single(), 64.0);
        let flash = max_seq_len(&cfg_1_7b(), 1, FlashVersion::V2, &single(), 64.0);
        assert_eq!(no_flash, 8192, "no-flash max seq");
        assert_eq!(flash, 32_768, "flash max seq");
    }

    #[test]
    fn flash_memory_is_linear_in_seq() {
        let c = cfg_1_7b();
        let base = peak_memory_gib(&c, 1, 2048, FlashVersion::V2, &single());
        let m2 = peak_memory_gib(&c, 1, 4096, FlashVersion::V2, &single());
        let m4 = peak_memory_gib(&c, 1, 8192, FlashVersion::V2, &single());
        let d1 = m2 - base;
        let d2 = (m4 - base) / 3.0;
        assert!((d1 / d2 - 1.0).abs() < 0.05, "linear growth {d1} vs {d2}");
    }

    #[test]
    fn naive_memory_grows_quadratically_at_long_seq() {
        let c = cfg_1_7b();
        let m8 = peak_memory_gib(&c, 1, 8192, FlashVersion::None, &single());
        let m16 = peak_memory_gib(&c, 1, 16_384, FlashVersion::None, &single());
        // doubling seq should much more than double the activation part
        let act8 = m8 - peak_memory_gib(&c, 1, 1, FlashVersion::None, &single());
        let act16 = m16 - peak_memory_gib(&c, 1, 1, FlashVersion::None, &single());
        assert!(act16 / act8 > 2.5, "{act16} / {act8}");
    }

    #[test]
    fn zero1_shards_optimizer_states() {
        let c = cfg_6_7b();
        let solo = Partitioning {
            dp: 1,
            zero1: true,
            tp: 1,
            pp: 1,
        };
        let sharded = Partitioning {
            dp: 8,
            zero1: true,
            tp: 1,
            pp: 1,
        };
        let m1 = peak_memory_gib(&c, 1, 2048, FlashVersion::V2, &solo);
        let m8 = peak_memory_gib(&c, 1, 2048, FlashVersion::V2, &sharded);
        assert!(m8 < m1);
        // ZeRO-1 over 8 ranks makes the 6.7B model fit
        assert!(m8 < 64.0, "6.7B under ZeRO-1×8: {m8} GiB");
    }

    #[test]
    fn tp_and_pp_shard_weights() {
        let c = cfg_6_7b();
        let tp2 = Partitioning {
            dp: 1,
            zero1: false,
            tp: 2,
            pp: 1,
        };
        let pp2 = Partitioning {
            dp: 1,
            zero1: false,
            tp: 1,
            pp: 2,
        };
        let full = peak_memory_gib(&c, 1, 2048, FlashVersion::V2, &single());
        let t = peak_memory_gib(&c, 1, 2048, FlashVersion::V2, &tp2);
        let p = peak_memory_gib(&c, 1, 2048, FlashVersion::V2, &pp2);
        assert!(t < full * 0.6);
        assert!(p < full * 0.6);
    }

    #[test]
    fn twelve_x_rule_reproduced() {
        let c = cfg_1_7b();
        let params = total_params(&c) as f64;
        let state_only = peak_memory_gib(&c, 1, 1, FlashVersion::V2, &single());
        let expected = params * 12.0 / (1024f64.powi(3));
        assert!(
            (state_only / expected - 1.0).abs() < 0.05,
            "{state_only} vs {expected}"
        );
    }
}
