#![warn(missing_docs)]

//! # matgpt-tokenizer
//!
//! From-scratch trainable subword tokenizers, covering both families the
//! paper compares (Table II, Figs. 13–14):
//!
//! * [`bpe::BpeTokenizer`] — byte-level byte-pair encoding, the
//!   "HuggingFace (HF)" style used by GPT-NeoX;
//! * [`unigram::UnigramTokenizer`] — a unigram language model trained with
//!   EM and decoded with Viterbi, the "SentencePiece (SPM)" style used by
//!   the original LLaMA.
//!
//! Both are trained on raw text, support arbitrary target vocabulary sizes
//! (the paper contrasts 32K and 52K), and share the special-token layout in
//! [`special`].

pub mod bpe;
pub mod special;
pub mod unigram;

pub use bpe::BpeTokenizer;
pub use unigram::UnigramTokenizer;

use serde::{Deserialize, Serialize};

/// Which tokenizer family an instance belongs to (the paper's "HF" vs
/// "SPM" axis).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TokenizerKind {
    /// Byte-level BPE ("HuggingFace").
    Hf,
    /// Unigram LM ("SentencePiece").
    Spm,
}

impl std::fmt::Display for TokenizerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TokenizerKind::Hf => write!(f, "HF"),
            TokenizerKind::Spm => write!(f, "SPM"),
        }
    }
}

/// Common tokenizer interface used by the corpus pipeline and the
/// evaluation harness.
pub trait Tokenizer: Send + Sync {
    /// Encode text to token ids (no BOS/EOS added).
    fn encode(&self, text: &str) -> Vec<u32>;

    /// Decode token ids back to text (lossy on invalid UTF-8).
    fn decode(&self, ids: &[u32]) -> String;

    /// Total vocabulary size including special tokens.
    fn vocab_size(&self) -> usize;

    /// Tokenizer family.
    fn kind(&self) -> TokenizerKind;

    /// Encode and frame with BOS/EOS.
    fn encode_with_specials(&self, text: &str) -> Vec<u32> {
        let mut out = Vec::with_capacity(text.len() / 3 + 2);
        out.push(special::BOS);
        out.extend(self.encode(text));
        out.push(special::EOS);
        out
    }

    /// Fertility: tokens produced per whitespace word — the standard metric
    /// for comparing tokenizers on a domain corpus.
    fn fertility(&self, texts: &[String]) -> f64 {
        let mut tokens = 0usize;
        let mut words = 0usize;
        for t in texts {
            tokens += self.encode(t).len();
            words += t.split_whitespace().count();
        }
        if words == 0 {
            0.0
        } else {
            tokens as f64 / words as f64
        }
    }
}
