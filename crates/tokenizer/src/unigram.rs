//! Unigram language-model tokenizer ("SentencePiece-style").
//!
//! Training: seed a candidate vocabulary from frequent substrings, run EM
//! (forward–backward expectation over each word's segmentation lattice,
//! then re-normalise piece scores), and prune the lowest-utility pieces
//! until the target vocabulary size is reached — the same structure as the
//! SentencePiece unigram trainer. Encoding is Viterbi best segmentation.
//!
//! Whitespace is handled with the SentencePiece `▁` convention: every
//! space is replaced by the meta-symbol, which is glued to the following
//! word, so decoding is exact for space-separated text.

use crate::special::{self, NUM_SPECIAL};
use crate::{Tokenizer, TokenizerKind};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The SentencePiece whitespace meta-symbol.
pub const META: char = '\u{2581}'; // ▁

const MAX_PIECE_CHARS: usize = 12;
const EM_ITERATIONS: usize = 3;
const PRUNE_FRACTION: f64 = 0.2;

/// A trained unigram tokenizer.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct UnigramTokenizer {
    /// Subword pieces; index + NUM_SPECIAL is the token id.
    pieces: Vec<String>,
    /// Log-probability score per piece.
    scores: Vec<f64>,
    #[serde(skip)]
    lookup: HashMap<String, usize>,
}

impl UnigramTokenizer {
    /// Train on a corpus of documents to (at most) `vocab_size` tokens
    /// including the reserved specials.
    pub fn train(texts: &[String], vocab_size: usize) -> Self {
        assert!(vocab_size > NUM_SPECIAL as usize + 16, "vocab too small");
        let target_pieces = vocab_size - NUM_SPECIAL as usize;

        // word frequencies with the ▁ convention
        let mut word_counts: HashMap<String, usize> = HashMap::new();
        for text in texts {
            for word in pretokenize(text) {
                *word_counts.entry(word).or_insert(0) += 1;
            }
        }
        let mut words: Vec<(Vec<char>, usize)> = word_counts
            .into_iter()
            .map(|(w, c)| (w.chars().collect(), c))
            .collect();
        words.sort();

        // --- seed: all single chars (mandatory) + frequent substrings
        let mut char_set: Vec<char> = Vec::new();
        let mut sub_counts: HashMap<String, usize> = HashMap::new();
        for (w, c) in &words {
            for &ch in w {
                if !char_set.contains(&ch) {
                    char_set.push(ch);
                }
            }
            for start in 0..w.len() {
                let mut s = String::new();
                for (end, &ch) in w.iter().enumerate().skip(start).take(MAX_PIECE_CHARS) {
                    s.push(ch);
                    if end > start {
                        *sub_counts.entry(s.clone()).or_insert(0) += c;
                    }
                }
            }
        }
        char_set.sort_unstable();
        let mut candidates: Vec<(String, f64)> =
            char_set.iter().map(|&c| (c.to_string(), 1.0)).collect();
        let mut subs: Vec<(String, usize)> =
            sub_counts.into_iter().filter(|(_, c)| *c >= 2).collect();
        subs.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        // generous seed: 4x the final budget
        subs.truncate(target_pieces.saturating_mul(4));
        candidates.extend(subs.into_iter().map(|(s, c)| (s, c as f64)));

        let mut pieces: Vec<String> = candidates.iter().map(|(s, _)| s.clone()).collect();
        let total: f64 = candidates.iter().map(|(_, c)| c).sum();
        let mut scores: Vec<f64> = candidates.iter().map(|(_, c)| (c / total).ln()).collect();

        // --- EM + prune loop
        loop {
            for _ in 0..EM_ITERATIONS {
                let lookup = build_lookup(&pieces);
                let mut expected = vec![0.0f64; pieces.len()];
                for (w, c) in &words {
                    accumulate_expected(w, *c as f64, &pieces, &scores, &lookup, &mut expected);
                }
                let total: f64 = expected.iter().sum();
                if total <= 0.0 {
                    break;
                }
                for (s, e) in scores.iter_mut().zip(expected.iter()) {
                    // floor keeps mandatory single chars alive
                    *s = ((e + 1e-6) / total).ln();
                }
            }
            if pieces.len() <= target_pieces {
                break;
            }
            // prune: drop the worst non-single-char pieces
            let n_drop = (((pieces.len() - target_pieces) as f64)
                .max(pieces.len() as f64 * PRUNE_FRACTION) as usize)
                .min(pieces.len() - target_pieces.min(pieces.len()));
            let mut order: Vec<usize> = (0..pieces.len())
                .filter(|&i| pieces[i].chars().count() > 1)
                .collect();
            order.sort_by(|&a, &b| scores[a].partial_cmp(&scores[b]).unwrap());
            let drop: std::collections::HashSet<usize> = order.into_iter().take(n_drop).collect();
            if drop.is_empty() {
                break;
            }
            let mut np = Vec::with_capacity(pieces.len() - drop.len());
            let mut ns = Vec::with_capacity(pieces.len() - drop.len());
            for i in 0..pieces.len() {
                if !drop.contains(&i) {
                    np.push(std::mem::take(&mut pieces[i]));
                    ns.push(scores[i]);
                }
            }
            pieces = np;
            scores = ns;
        }

        let lookup = build_lookup(&pieces);
        Self {
            pieces,
            scores,
            lookup,
        }
    }

    /// Rebuild the piece lookup (needed after deserialisation).
    pub fn rebuild_lookup(&mut self) {
        self.lookup = build_lookup(&self.pieces);
    }

    /// The score (log-probability) of a piece by id, if it exists.
    pub fn score(&self, id: u32) -> Option<f64> {
        id.checked_sub(NUM_SPECIAL)
            .and_then(|i| self.scores.get(i as usize))
            .copied()
    }

    /// Viterbi-encode one pre-token (chars, with ▁ already applied).
    fn encode_word(&self, w: &[char], out: &mut Vec<u32>) {
        let n = w.len();
        if n == 0 {
            return;
        }
        const NEG: f64 = -1e18;
        let unk_penalty = -100.0;
        // best[i]: best score of segmentation of prefix w[..i]
        let mut best = vec![NEG; n + 1];
        let mut back: Vec<(usize, u32)> = vec![(0, special::UNK); n + 1];
        best[0] = 0.0;
        let mut buf = String::new();
        for i in 0..n {
            if best[i] <= NEG {
                continue;
            }
            buf.clear();
            for j in i..n.min(i + MAX_PIECE_CHARS) {
                buf.push(w[j]);
                if let Some(&pid) = self.lookup.get(buf.as_str()) {
                    let s = best[i] + self.scores[pid];
                    if s > best[j + 1] {
                        best[j + 1] = s;
                        back[j + 1] = (i, NUM_SPECIAL + pid as u32);
                    }
                }
            }
            // UNK edge over a single char guarantees progress
            let s = best[i] + unk_penalty;
            if s > best[i + 1] {
                best[i + 1] = s;
                back[i + 1] = (i, special::UNK);
            }
        }
        // reconstruct
        let mut ids_rev = Vec::new();
        let mut pos = n;
        while pos > 0 {
            let (prev, id) = back[pos];
            ids_rev.push(id);
            pos = prev;
        }
        out.extend(ids_rev.into_iter().rev());
    }
}

fn build_lookup(pieces: &[String]) -> HashMap<String, usize> {
    pieces
        .iter()
        .enumerate()
        .map(|(i, p)| (p.clone(), i))
        .collect()
}

/// Replace spaces with the ▁ meta-symbol glued to the following word.
fn pretokenize(text: &str) -> Vec<String> {
    text.split_whitespace()
        .map(|w| format!("{META}{w}"))
        .collect()
}

/// Forward–backward over the segmentation lattice of `w`, adding expected
/// piece counts (weighted by word count `c`) into `expected`.
fn accumulate_expected(
    w: &[char],
    c: f64,
    pieces: &[String],
    scores: &[f64],
    lookup: &HashMap<String, usize>,
    expected: &mut [f64],
) {
    let n = w.len();
    if n == 0 {
        return;
    }
    const NEG: f64 = -1e18;
    // alpha[i] = log sum of all segmentations of prefix ..i
    let mut alpha = vec![NEG; n + 1];
    alpha[0] = 0.0;
    let mut edges: Vec<(usize, usize, usize)> = Vec::new(); // (from, to, pid)
    let mut buf = String::new();
    for i in 0..n {
        if alpha[i] <= NEG {
            continue;
        }
        buf.clear();
        for j in i..n.min(i + MAX_PIECE_CHARS) {
            buf.push(w[j]);
            if let Some(&pid) = lookup.get(buf.as_str()) {
                edges.push((i, j + 1, pid));
                alpha[j + 1] = logaddexp(alpha[j + 1], alpha[i] + scores[pid]);
            }
        }
    }
    if alpha[n] <= NEG {
        return; // unsegmentable with current vocab (shouldn't happen)
    }
    let mut beta = vec![NEG; n + 1];
    beta[n] = 0.0;
    for &(from, to, pid) in edges.iter().rev() {
        beta[from] = logaddexp(beta[from], beta[to] + scores[pid]);
    }
    let z = alpha[n];
    for &(from, to, pid) in &edges {
        let posterior = (alpha[from] + scores[pid] + beta[to] - z).exp();
        expected[pid] += c * posterior;
    }
    let _ = pieces;
}

fn logaddexp(a: f64, b: f64) -> f64 {
    if a < b {
        b + (a - b).exp().ln_1p()
    } else if b < a {
        a + (b - a).exp().ln_1p()
    } else {
        a + std::f64::consts::LN_2
    }
}

impl Tokenizer for UnigramTokenizer {
    fn encode(&self, text: &str) -> Vec<u32> {
        let mut out = Vec::with_capacity(text.len() / 3 + 1);
        for word in pretokenize(text) {
            let chars: Vec<char> = word.chars().collect();
            self.encode_word(&chars, &mut out);
        }
        out
    }

    fn decode(&self, ids: &[u32]) -> String {
        let mut s = String::new();
        for &id in ids {
            if id < NUM_SPECIAL {
                continue;
            }
            if let Some(p) = self.pieces.get((id - NUM_SPECIAL) as usize) {
                s.push_str(p);
            }
        }
        let s = s.replace(META, " ");
        s.strip_prefix(' ').map(str::to_owned).unwrap_or(s)
    }

    fn vocab_size(&self) -> usize {
        NUM_SPECIAL as usize + self.pieces.len()
    }

    fn kind(&self) -> TokenizerKind {
        TokenizerKind::Spm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<String> {
        vec![
            "the band gap of the material is wide".to_string(),
            "the material band gap is narrow the gap".to_string(),
            "band gap band gap band gap energy".to_string(),
            "wide band gap semiconductors conduct".to_string(),
        ]
    }

    #[test]
    fn train_respects_vocab_budget() {
        let tok = UnigramTokenizer::train(&corpus(), 96);
        assert!(tok.vocab_size() <= 96, "vocab {}", tok.vocab_size());
        assert!(tok.vocab_size() > NUM_SPECIAL as usize);
    }

    #[test]
    fn roundtrip_on_training_domain() {
        let tok = UnigramTokenizer::train(&corpus(), 128);
        let text = "the band gap is wide";
        assert_eq!(tok.decode(&tok.encode(text)), text);
    }

    #[test]
    fn frequent_bigrams_become_single_pieces() {
        let tok = UnigramTokenizer::train(&corpus(), 128);
        // "band gap" appears constantly; "▁band" or longer should be one piece
        let ids = tok.encode("band gap");
        assert!(
            ids.len() <= 4,
            "expected multi-char pieces, got {} tokens",
            ids.len()
        );
    }

    #[test]
    fn unknown_chars_fall_back_to_unk_but_dont_crash() {
        let tok = UnigramTokenizer::train(&corpus(), 96);
        let ids = tok.encode("\u{4E2D}\u{6587}");
        assert!(!ids.is_empty());
        assert!(ids.contains(&special::UNK));
    }

    #[test]
    fn viterbi_prefers_higher_probability_segmentation() {
        let tok = UnigramTokenizer::train(&corpus(), 160);
        // the greedy longest match and viterbi coincide for in-domain text;
        // at minimum the segmentation must re-compose the word
        let ids = tok.encode("bandgap");
        let decoded = tok.decode(&ids);
        assert_eq!(decoded, "bandgap");
    }

    #[test]
    fn deterministic_training() {
        let a = UnigramTokenizer::train(&corpus(), 128);
        let b = UnigramTokenizer::train(&corpus(), 128);
        assert_eq!(a.pieces, b.pieces);
    }

    #[test]
    fn logaddexp_is_commutative_and_correct() {
        let v = logaddexp(1.0f64.ln(), 3.0f64.ln());
        assert!((v - 4.0f64.ln()).abs() < 1e-12);
        assert_eq!(logaddexp(-1.0, -2.0), logaddexp(-2.0, -1.0));
    }

    #[test]
    fn spm_tokenization_differs_from_char_split() {
        let tok = UnigramTokenizer::train(&corpus(), 160);
        let text = "the material";
        assert!(tok.encode(text).len() < text.len());
    }
}
