//! Special-token layout shared by both tokenizer families.

/// Unknown token.
pub const UNK: u32 = 0;
/// Beginning-of-sequence.
pub const BOS: u32 = 1;
/// End-of-sequence / document separator.
pub const EOS: u32 = 2;
/// Padding.
pub const PAD: u32 = 3;
/// Number of reserved special ids.
pub const NUM_SPECIAL: u32 = 4;

/// Printable names for the reserved ids.
pub fn name(id: u32) -> Option<&'static str> {
    match id {
        UNK => Some("<unk>"),
        BOS => Some("<bos>"),
        EOS => Some("<eos>"),
        PAD => Some("<pad>"),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_distinct_and_contiguous() {
        assert_eq!(UNK, 0);
        assert_eq!(BOS, 1);
        assert_eq!(EOS, 2);
        assert_eq!(PAD, 3);
        assert_eq!(NUM_SPECIAL, 4);
    }

    #[test]
    fn names_cover_specials_only() {
        for id in 0..NUM_SPECIAL {
            assert!(name(id).is_some());
        }
        assert!(name(NUM_SPECIAL).is_none());
    }
}
