//! Byte-level byte-pair encoding ("HuggingFace-style").
//!
//! Training follows the classic algorithm: pre-tokenise into
//! whitespace-delimited words (a leading space is kept attached to the
//! word, GPT-2 style), count words, then repeatedly merge the most frequent
//! adjacent token pair until the vocabulary budget is exhausted. Encoding
//! replays the merges in rank order.

use crate::special::{self, NUM_SPECIAL};
use crate::{Tokenizer, TokenizerKind};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A trained byte-level BPE tokenizer.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BpeTokenizer {
    /// Merge rules in training order: (left id, right id) -> new id.
    merges: Vec<(u32, u32)>,
    /// Lookup from pair to merge rank / produced id.
    #[serde(skip)]
    merge_map: HashMap<(u32, u32), (usize, u32)>,
    /// Byte sequence for every token id (specials map to empty).
    token_bytes: Vec<Vec<u8>>,
}

impl BpeTokenizer {
    /// Train on a corpus of documents to a target vocabulary size
    /// (including the 4 special ids and the 256 byte tokens; `vocab_size`
    /// must be at least `260`).
    pub fn train(texts: &[String], vocab_size: usize) -> Self {
        assert!(
            vocab_size >= (NUM_SPECIAL as usize) + 256,
            "vocab must cover specials + bytes"
        );
        // word -> count, words carry their leading space
        let mut word_counts: HashMap<Vec<u32>, usize> = HashMap::new();
        for text in texts {
            for word in split_words(text) {
                let ids: Vec<u32> = word.bytes().map(byte_id).collect();
                *word_counts.entry(ids).or_insert(0) += 1;
            }
        }
        let mut words: Vec<(Vec<u32>, usize)> = word_counts.into_iter().collect();
        // Deterministic ordering regardless of hash map iteration.
        words.sort();

        let mut token_bytes: Vec<Vec<u8>> = Vec::with_capacity(vocab_size);
        for id in 0..NUM_SPECIAL {
            token_bytes.push(special::name(id).unwrap().as_bytes().to_vec());
        }
        for b in 0u16..256 {
            token_bytes.push(vec![b as u8]);
        }

        let mut merges = Vec::new();
        let n_merges = vocab_size - token_bytes.len();
        for _ in 0..n_merges {
            // count all adjacent pairs
            let mut pair_counts: HashMap<(u32, u32), usize> = HashMap::new();
            for (w, c) in &words {
                for pair in w.windows(2) {
                    *pair_counts.entry((pair[0], pair[1])).or_insert(0) += c;
                }
            }
            // deterministic argmax: highest count, ties by smallest pair
            let best = pair_counts
                .into_iter()
                .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(&a.0)));
            let Some(((l, r), count)) = best else { break };
            if count < 2 {
                break;
            }
            let new_id = token_bytes.len() as u32;
            let mut bytes = token_bytes[l as usize].clone();
            bytes.extend_from_slice(&token_bytes[r as usize]);
            token_bytes.push(bytes);
            merges.push((l, r));
            // apply the merge to every word
            for (w, _) in words.iter_mut() {
                apply_merge(w, l, r, new_id);
            }
        }

        let mut tok = Self {
            merges,
            merge_map: HashMap::new(),
            token_bytes,
        };
        tok.rebuild_merge_map();
        tok
    }

    /// Rebuild the rank lookup (needed after deserialisation).
    pub fn rebuild_merge_map(&mut self) {
        self.merge_map = self
            .merges
            .iter()
            .enumerate()
            .map(|(rank, &(l, r))| {
                let id = NUM_SPECIAL + 256 + rank as u32;
                ((l, r), (rank, id))
            })
            .collect();
    }

    /// Number of learned merges.
    pub fn num_merges(&self) -> usize {
        self.merges.len()
    }

    fn encode_word(&self, word: &str) -> Vec<u32> {
        let mut ids: Vec<u32> = word.bytes().map(byte_id).collect();
        loop {
            // find the lowest-rank applicable merge
            let mut best: Option<(usize, usize, u32)> = None; // (rank, pos, new_id)
            for i in 0..ids.len().saturating_sub(1) {
                if let Some(&(rank, new_id)) = self.merge_map.get(&(ids[i], ids[i + 1])) {
                    if best.is_none_or(|(br, _, _)| rank < br) {
                        best = Some((rank, i, new_id));
                    }
                }
            }
            match best {
                Some((_, pos, new_id)) => {
                    ids[pos] = new_id;
                    ids.remove(pos + 1);
                }
                None => break,
            }
        }
        ids
    }
}

impl Tokenizer for BpeTokenizer {
    fn encode(&self, text: &str) -> Vec<u32> {
        let mut out = Vec::with_capacity(text.len() / 3 + 1);
        for word in split_words(text) {
            out.extend(self.encode_word(word));
        }
        out
    }

    fn decode(&self, ids: &[u32]) -> String {
        let mut bytes = Vec::with_capacity(ids.len() * 3);
        for &id in ids {
            if id < NUM_SPECIAL {
                continue;
            }
            if let Some(b) = self.token_bytes.get(id as usize) {
                bytes.extend_from_slice(b);
            }
        }
        String::from_utf8_lossy(&bytes).into_owned()
    }

    fn vocab_size(&self) -> usize {
        self.token_bytes.len()
    }

    fn kind(&self) -> TokenizerKind {
        TokenizerKind::Hf
    }
}

fn byte_id(b: u8) -> u32 {
    NUM_SPECIAL + b as u32
}

/// Split into words, each carrying its leading whitespace run (GPT-2 style
/// `Ġword`). Splitting is lossless: concatenating the pieces reproduces the
/// input exactly, so decode(encode(x)) == x for any input.
fn split_words(text: &str) -> impl Iterator<Item = &str> {
    let bytes = text.as_bytes();
    let is_space = |b: u8| b == b' ' || b == b'\n' || b == b'\t' || b == b'\r';
    let mut starts = vec![0usize];
    for i in 1..bytes.len() {
        // a new word begins where a whitespace run starts
        if is_space(bytes[i]) && !is_space(bytes[i - 1]) {
            starts.push(i);
        }
    }
    starts.push(text.len());
    (0..starts.len().saturating_sub(1))
        .map(move |w| &text[starts[w]..starts[w + 1]])
        .filter(|s| !s.is_empty())
}

fn apply_merge(word: &mut Vec<u32>, l: u32, r: u32, new_id: u32) {
    let mut i = 0;
    while i + 1 < word.len() {
        if word[i] == l && word[i + 1] == r {
            word[i] = new_id;
            word.remove(i + 1);
        } else {
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<String> {
        vec![
            "the band gap of the material is wide".to_string(),
            "the material band gap is narrow the gap".to_string(),
            "band gap band gap band gap".to_string(),
        ]
    }

    #[test]
    fn train_produces_requested_vocab() {
        let tok = BpeTokenizer::train(&corpus(), 280);
        assert!(tok.vocab_size() <= 280);
        assert!(tok.num_merges() > 0, "should learn some merges");
    }

    #[test]
    fn roundtrip_on_training_domain() {
        let tok = BpeTokenizer::train(&corpus(), 300);
        let text = "the band gap is wide";
        let ids = tok.encode(text);
        assert_eq!(tok.decode(&ids), text);
    }

    #[test]
    fn roundtrip_on_unseen_text_via_byte_fallback() {
        let tok = BpeTokenizer::train(&corpus(), 280);
        let text = "Zr0.5Ti0.5O2 exhibits εxx anisotropy";
        let ids = tok.encode(text);
        assert_eq!(tok.decode(&ids), text);
    }

    #[test]
    fn merges_reduce_token_count() {
        let tok = BpeTokenizer::train(&corpus(), 320);
        let text = "band gap band gap";
        let n_tokens = tok.encode(text).len();
        assert!(
            n_tokens < text.len(),
            "BPE should compress below byte count: {n_tokens}"
        );
    }

    #[test]
    fn bigger_vocab_compresses_at_least_as_well() {
        let c = corpus();
        let small = BpeTokenizer::train(&c, 270);
        let large = BpeTokenizer::train(&c, 330);
        let text = "the band gap of the material";
        assert!(large.encode(text).len() <= small.encode(text).len());
    }

    #[test]
    fn encode_with_specials_frames() {
        let tok = BpeTokenizer::train(&corpus(), 280);
        let ids = tok.encode_with_specials("band gap");
        assert_eq!(ids.first(), Some(&special::BOS));
        assert_eq!(ids.last(), Some(&special::EOS));
    }

    #[test]
    fn deterministic_training() {
        let a = BpeTokenizer::train(&corpus(), 300);
        let b = BpeTokenizer::train(&corpus(), 300);
        assert_eq!(a.merges, b.merges);
    }

    #[test]
    fn empty_text_encodes_empty() {
        let tok = BpeTokenizer::train(&corpus(), 270);
        assert!(tok.encode("").is_empty());
        assert_eq!(tok.decode(&[]), "");
    }
}
