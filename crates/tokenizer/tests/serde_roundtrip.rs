//! Persistence tests: both tokenizers serialise with serde and restore to
//! byte-identical behaviour after rebuilding their skipped lookup tables.

use matgpt_tokenizer::{BpeTokenizer, Tokenizer, UnigramTokenizer};

fn corpus() -> Vec<String> {
    vec![
        "the band gap of the cubic oxide is wide".into(),
        "narrow gap semiconductors conduct under bias".into(),
        "we report synthesis of layered sulfide compounds".into(),
    ]
}

#[test]
fn bpe_serde_roundtrip_preserves_encoding() {
    let tok = BpeTokenizer::train(&corpus(), 320);
    let json = serde_json::to_string(&tok).expect("serialize");
    let mut restored: BpeTokenizer = serde_json::from_str(&json).expect("deserialize");
    restored.rebuild_merge_map();
    for text in ["the band gap is wide", "ZrO2 under strain", ""] {
        assert_eq!(tok.encode(text), restored.encode(text), "{text}");
        assert_eq!(tok.decode(&tok.encode(text)), text);
    }
    assert_eq!(tok.vocab_size(), restored.vocab_size());
}

#[test]
fn unigram_serde_roundtrip_preserves_encoding() {
    let tok = UnigramTokenizer::train(&corpus(), 120);
    let json = serde_json::to_string(&tok).expect("serialize");
    let mut restored: UnigramTokenizer = serde_json::from_str(&json).expect("deserialize");
    restored.rebuild_lookup();
    for text in ["the band gap is wide", "layered sulfide"] {
        assert_eq!(tok.encode(text), restored.encode(text), "{text}");
    }
    assert_eq!(tok.vocab_size(), restored.vocab_size());
}

#[test]
fn restored_without_rebuild_is_detectably_degraded() {
    // the skipped lookup means a freshly deserialised unigram tokenizer
    // cannot segment; rebuild_lookup is required (documented behaviour)
    let tok = UnigramTokenizer::train(&corpus(), 120);
    let json = serde_json::to_string(&tok).unwrap();
    let restored: UnigramTokenizer = serde_json::from_str(&json).unwrap();
    let ids = restored.encode("the band gap");
    // everything falls back to UNK edges without the lookup
    assert!(ids.iter().all(|&i| i == matgpt_tokenizer::special::UNK));
}
