//! Property-based tests for the tokenizer crate.

use matgpt_tokenizer::{special, BpeTokenizer, Tokenizer, TokenizerKind, UnigramTokenizer};
use proptest::prelude::*;

fn train_corpus() -> Vec<String> {
    vec![
        "the band gap of the oxide material is wide and the lattice is cubic".into(),
        "perovskite solar absorbers exhibit a narrow band gap under strain".into(),
        "we report synthesis and characterization of layered sulfide compounds".into(),
        "band gap band gap energy formation energy bulk modulus".into(),
        // pangram so every ascii letter is in the unigram character set
        "jackdaws love my big sphinx of quartz".into(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Byte-level BPE round-trips *any* single-space-separated printable
    /// ASCII text exactly, trained on a completely unrelated corpus.
    #[test]
    fn bpe_roundtrip_arbitrary_ascii(words in proptest::collection::vec("[!-~]{1,8}", 0..8)) {
        let text = words.join(" ");
        let tok = BpeTokenizer::train(&train_corpus(), 300);
        prop_assert_eq!(tok.decode(&tok.encode(&text)), text);
    }

    /// BPE round-trips arbitrary unicode (byte fallback).
    #[test]
    fn bpe_roundtrip_unicode(text in "\\PC{0,24}") {
        let tok = BpeTokenizer::train(&train_corpus(), 280);
        prop_assert_eq!(tok.decode(&tok.encode(&text)), text);
    }

    /// Token ids from both tokenizers are always within the vocabulary.
    #[test]
    fn ids_within_vocab(text in "[a-z ]{0,48}") {
        let bpe = BpeTokenizer::train(&train_corpus(), 280);
        let uni = UnigramTokenizer::train(&train_corpus(), 128);
        for id in bpe.encode(&text) {
            prop_assert!((id as usize) < bpe.vocab_size());
        }
        for id in uni.encode(&text) {
            prop_assert!((id as usize) < uni.vocab_size());
        }
    }

    /// Unigram round-trips text drawn from its training character set.
    #[test]
    fn unigram_roundtrip_in_domain(words in proptest::collection::vec("[a-z]{1,10}", 1..6)) {
        let text = words.join(" ");
        let tok = UnigramTokenizer::train(&train_corpus(), 160);
        prop_assert_eq!(tok.decode(&tok.encode(&text)), text);
    }

    /// encode_with_specials always frames with BOS/EOS.
    #[test]
    fn specials_frame(text in "[a-z ]{0,32}") {
        let tok = BpeTokenizer::train(&train_corpus(), 280);
        let ids = tok.encode_with_specials(&text);
        prop_assert_eq!(*ids.first().unwrap(), special::BOS);
        prop_assert_eq!(*ids.last().unwrap(), special::EOS);
    }

    /// Encoding never produces more tokens than input bytes (BPE) or
    /// chars + words (unigram's ▁ prefixes).
    #[test]
    fn token_count_bounds(words in proptest::collection::vec("[a-z]{1,8}", 0..6)) {
        let text = words.join(" ");
        let bpe = BpeTokenizer::train(&train_corpus(), 280);
        prop_assert!(bpe.encode(&text).len() <= text.len().max(1));
        let uni = UnigramTokenizer::train(&train_corpus(), 128);
        let n_chars = text.chars().count();
        prop_assert!(uni.encode(&text).len() <= n_chars + words.len() + 1);
    }
}

#[test]
fn kinds_are_reported() {
    let bpe = BpeTokenizer::train(&train_corpus(), 280);
    let uni = UnigramTokenizer::train(&train_corpus(), 128);
    assert_eq!(bpe.kind(), TokenizerKind::Hf);
    assert_eq!(uni.kind(), TokenizerKind::Spm);
}

#[test]
fn fertility_is_finite_and_positive() {
    let texts = train_corpus();
    let bpe = BpeTokenizer::train(&texts, 400);
    let f = bpe.fertility(&texts);
    assert!(f > 0.5 && f < 10.0, "fertility {f}");
}
