//! Integration tests pinning the paper's headline HPC claims against the
//! Frontier simulator — the orderings and crossovers of Figs. 4–12 and
//! Table IV, end to end.

use matgpt::frontier_sim::{
    device_trace, max_seq_len, one_b_grid, simulate_step, training_run, Constraints, FlashVersion,
    KernelModel, Partitioning, PowerModel, Strategy, TrainSetup,
};
use matgpt::model::{ArchKind, GptConfig};

fn cfg17() -> GptConfig {
    GptConfig::paper_1_7b(ArchKind::Llama, 52_000)
}

fn cfg67() -> GptConfig {
    GptConfig::paper_6_7b(ArchKind::Llama, 52_000)
}

#[test]
fn observation_1_head_dim_multiple_of_8() {
    // "It is computationally desirable to design the LLM architecture with
    // the dimension of attention head to be multiples of 8."
    let cells = one_b_grid(
        52_000,
        2048,
        &KernelModel::default(),
        &Constraints::default(),
    );
    let mod8_mean: f64 = cells
        .iter()
        .filter(|c| c.head_mod8)
        .map(|c| c.tflops_base)
        .sum::<f64>()
        / cells.iter().filter(|c| c.head_mod8).count() as f64;
    let other_mean: f64 = cells
        .iter()
        .filter(|c| !c.head_mod8)
        .map(|c| c.tflops_base)
        .sum::<f64>()
        / cells.iter().filter(|c| !c.head_mod8).count() as f64;
    assert!(
        mod8_mean > other_mean * 1.1,
        "mod-8 {mod8_mean} vs others {other_mean}"
    );
    // "the achievable computational performance ... is over 43% of the
    // theoretical peak" with flash
    let best_v2 = cells.iter().map(|c| c.tflops_v2).fold(0.0, f64::max);
    assert!(
        best_v2 / 191.5 > 0.43,
        "flash peak fraction {}",
        best_v2 / 191.5
    );
}

#[test]
fn observation_2_minimal_model_parallelism_wins() {
    // "adding extra parallelism dimensions such as tensor and pipeline
    // usually adversely impacts the LLM training throughput" (single node)
    let zero = simulate_step(&TrainSetup::new(cfg67(), 8, Strategy::Zero1));
    let tp = simulate_step(&TrainSetup::new(cfg67(), 8, Strategy::TensorParallel(2)));
    let pp = simulate_step(&TrainSetup::new(cfg67(), 8, Strategy::PipelineParallel(2)));
    assert!(zero.tflops_per_gcd > tp.tflops_per_gcd);
    assert!(tp.tflops_per_gcd > pp.tflops_per_gcd);

    // "map the partition of model parallelism to the platform network
    // topology" — at scale, the TP=2-on-one-MI250X mapping overtakes ZeRO
    let zero256 = simulate_step(&TrainSetup::new(cfg67(), 256, Strategy::Zero1));
    let tp256 = simulate_step(&TrainSetup::new(cfg67(), 256, Strategy::TensorParallel(2)));
    assert!(tp256.tflops_per_gcd > zero256.tflops_per_gcd);
}

#[test]
fn flash_attention_memory_and_throughput_claims() {
    let part = Partitioning::data_parallel(1);
    assert_eq!(
        max_seq_len(&cfg17(), 1, FlashVersion::None, &part, 64.0),
        8192
    );
    assert_eq!(
        max_seq_len(&cfg17(), 1, FlashVersion::V2, &part, 64.0),
        32_768
    );
    let km = KernelModel::default();
    let base = km.achieved_tflops(&cfg17(), 16, 2048, FlashVersion::None);
    let v1 = km.achieved_tflops(&cfg17(), 16, 2048, FlashVersion::V1);
    let v2 = km.achieved_tflops(&cfg17(), 16, 2048, FlashVersion::V2);
    assert!(v1 > base && v2 > v1);
}

#[test]
fn table4_energy_structure() {
    let pm = PowerModel::default();
    let mut s17 = TrainSetup::new(cfg17(), 256, Strategy::DataParallel);
    s17.micro_batch = 8;
    let r17 = simulate_step(&s17);
    let mut s67 = TrainSetup::new(cfg67(), 256, Strategy::Zero1);
    s67.micro_batch = 8;
    let r67 = simulate_step(&s67);
    let t17 = training_run(&s17, &r17, &pm, 15e9);
    let t67 = training_run(&s67, &r67, &pm, 15e9);
    assert!(
        t67.hours > 3.0 * t17.hours,
        "{} vs {}",
        t67.hours,
        t17.hours
    );
    assert!(t67.energy_mwh > t17.energy_mwh);
    assert!(t17.efficiency > t67.efficiency);
}

#[test]
fn power_trace_shows_compute_comm_oscillation() {
    let setup = TrainSetup::new(cfg67(), 256, Strategy::Zero1);
    let report = simulate_step(&setup);
    let pm = PowerModel::default();
    let trace = device_trace(&setup, &report, &pm, 2, report.step_s / 100.0);
    let max = trace.iter().map(|s| s.power_w).fold(0.0, f64::max);
    let min = trace
        .iter()
        .map(|s| s.power_w)
        .fold(f64::INFINITY, f64::min);
    assert!(max - min > 100.0, "oscillation {max}-{min}");
    // utilisation is NOT a good indicator (paper) — it pins high throughout
    let min_util = trace
        .iter()
        .map(|s| s.utilization_pct)
        .fold(f64::INFINITY, f64::min);
    assert!(min_util > 60.0);
}

#[test]
fn fig11_call_count_hierarchy() {
    let mut dp = TrainSetup::new(cfg17(), 256, Strategy::DataParallel);
    dp.micro_batch = 8;
    let mut zero = TrainSetup::new(cfg67(), 256, Strategy::Zero1);
    zero.micro_batch = 8;
    let mut tp = TrainSetup::new(cfg67(), 256, Strategy::TensorParallel(2));
    tp.micro_batch = 8;
    let rd = simulate_step(&dp);
    let rz = simulate_step(&zero);
    let rt = simulate_step(&tp);
    assert!(rz.total_calls() > 10 * rd.total_calls());
    assert!(rt.total_calls() > 10 * rd.total_calls());
    // total volume: TP > ZeRO ≈ DP-relative-2x
    assert!(rt.total_wire_bytes() > rz.total_wire_bytes());
}

#[test]
fn six_point_seven_b_needs_model_parallelism() {
    let solo = simulate_step(&TrainSetup::new(cfg67(), 1, Strategy::DataParallel));
    assert!(!solo.fits_memory);
    for strat in [
        Strategy::Zero1,
        Strategy::TensorParallel(2),
        Strategy::PipelineParallel(2),
    ] {
        let r = simulate_step(&TrainSetup::new(cfg67(), 8, strat));
        assert!(r.fits_memory, "{}", strat.label());
    }
}
