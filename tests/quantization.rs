//! Tier-1 integration tests for the int8 quantized decode path: the
//! quantized forward must track the f32 forward within the published
//! drift bound on both paper architectures, through both the prefill
//! and the incremental KV-cached decode regimes, and the serving
//! engine must produce identical greedy output at either precision.

use matgpt::model::{
    ArchKind, GptConfig, GptModel, ModelWeights, QuantizedParamStore, SampleOptions,
    WeightPrecision,
};
use matgpt::serve::{Engine, EngineConfig};
use matgpt::tensor::{init, ParamStore};

/// The drift bound ext_quant publishes for a 4-layer 512-hidden model;
/// the tiny test shapes stay well inside it.
const DRIFT: f32 = 5e-2;

fn build(arch: ArchKind) -> (GptModel, ParamStore) {
    let cfg = GptConfig {
        hidden: 64,
        layers: 2,
        heads: 4,
        max_seq: 48,
        ..GptConfig::tiny(arch, 96)
    };
    let mut store = ParamStore::new();
    let mut rng = init::rng(7);
    let model = GptModel::new(cfg, &mut store, &mut rng);
    (model, store)
}

fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b)
        .fold(0.0f32, |m, (x, y)| m.max((x - y).abs()))
}

#[test]
fn quantized_prefill_logits_track_f32_on_both_archs() {
    for arch in [ArchKind::NeoX, ArchKind::Llama] {
        let (model, store) = build(arch);
        let qstore = QuantizedParamStore::quantize(&model, &store);
        let tokens: Vec<u32> = (0..24u32).map(|i| (i * 11 + 3) % 96).collect();

        let mut c1 = model.new_cache();
        let f32_logits = model.forward_cached(&store, &tokens, &mut c1);
        let mut c2 = model.new_cache();
        let int8_logits = model.forward_cached_with(&qstore, &tokens, &mut c2);

        assert_eq!(f32_logits.len(), int8_logits.len());
        let drift = max_abs_diff(&f32_logits, &int8_logits);
        assert!(
            drift <= DRIFT,
            "{arch:?}: prefill logits drift {drift} exceeds {DRIFT}"
        );
    }
}

#[test]
fn quantized_decode_step_tracks_f32_through_kv_cache() {
    for arch in [ArchKind::NeoX, ArchKind::Llama] {
        let (model, store) = build(arch);
        let qstore = QuantizedParamStore::quantize(&model, &store);
        let prompt: Vec<u32> = (0..8u32).map(|i| (i * 17 + 5) % 96).collect();

        let mut c_f32 = model.new_cache();
        let mut c_int8 = model.new_cache();
        model.forward_cached(&store, &prompt, &mut c_f32);
        model.forward_cached_with(&qstore, &prompt, &mut c_int8);

        // walk both caches down the same token stream step by step
        for step in 0..16u32 {
            let tok = (step * 29 + 1) % 96;
            let r_f32 = model.decode_step(&store, tok, &mut c_f32);
            let r_int8 = model.decode_step_with(&qstore, tok, &mut c_int8);
            let drift = max_abs_diff(&r_f32, &r_int8);
            assert!(
                drift <= DRIFT,
                "{arch:?} step {step}: decode logits drift {drift} exceeds {DRIFT}"
            );
        }
    }
}

#[test]
fn model_weights_wrapper_reports_precision_and_footprint() {
    let (model, store) = build(ArchKind::Llama);
    let f32_bytes = {
        let (model2, store2) = build(ArchKind::Llama);
        let w = ModelWeights::from_store(&model2, store2, WeightPrecision::F32);
        assert_eq!(w.precision(), WeightPrecision::F32);
        w.weight_bytes()
    };
    let w = ModelWeights::from_store(&model, store, WeightPrecision::Int8);
    assert_eq!(w.precision(), WeightPrecision::Int8);
    assert!(
        w.weight_bytes() * 2 < f32_bytes,
        "int8 footprint {} should be well under half the f32 footprint {}",
        w.weight_bytes(),
        f32_bytes
    );
}

#[test]
fn engine_greedy_output_is_identical_at_both_precisions() {
    let decode = |precision: WeightPrecision| {
        let (model, store) = build(ArchKind::NeoX);
        let engine = Engine::new(
            model,
            store,
            EngineConfig {
                precision,
                ..EngineConfig::default()
            },
        );
        let opts = SampleOptions {
            temperature: 0.0,
            top_k: 0,
            max_new_tokens: 12,
            stop_token: None,
        };
        let handle = engine.submit(&[3, 1, 4, 1, 5], opts).expect("admitted");
        let response = handle.wait().expect("response");
        engine.shutdown();
        response.tokens
    };
    // greedy argmax is stable under <= DRIFT logits perturbation for
    // this seed, so the two precisions must pick the same tokens
    assert_eq!(
        decode(WeightPrecision::F32),
        decode(WeightPrecision::Int8),
        "greedy decode diverged between f32 and int8"
    );
}
