//! Tier-1 integration tests for the paged KV-cache subsystem: bitwise
//! logit equivalence between the contiguous and block-paged backends
//! (both architectures, across block boundaries and the attention
//! window), copy-on-write fork isolation, typed pool exhaustion, block
//! refcount hygiene across retire/cancel/failure, and
//! eviction-recompute fidelity under pool pressure.

use matgpt::model::generate::argmax;
use matgpt::model::{ArchKind, GptConfig, GptModel, SampleOptions};
use matgpt::serve::{
    BlockPool, Engine, EngineConfig, EngineError, FinishReason, GenRequest, KvBackend,
    KvBlockConfig,
};
use matgpt::tensor::{init, ParamStore};
use proptest::prelude::*;

fn build(cfg: GptConfig, seed: u64) -> (GptModel, ParamStore) {
    let mut store = ParamStore::new();
    let mut rng = init::rng(seed);
    let model = GptModel::new(cfg, &mut store, &mut rng);
    (model, store)
}

fn arb_cfg() -> impl Strategy<Value = GptConfig> {
    (
        prop_oneof![Just(ArchKind::NeoX), Just(ArchKind::Llama)],
        1usize..=2,  // layers
        1usize..=2,  // kv groups: heads = 2 * groups, kv_heads = groups
        12usize..40, // vocab
    )
        .prop_map(|(arch, layers, groups, vocab)| GptConfig {
            arch,
            vocab_size: vocab,
            hidden: 2 * groups * 8,
            layers,
            heads: 2 * groups,
            kv_heads: if groups > 1 { Some(groups) } else { None },
            max_seq: 16,
            rope_base: 10_000.0,
            norm_eps: 1e-5,
            dropout: 0.0,
        })
}

fn prompt_tokens(len: usize, seed: u64, vocab: usize) -> Vec<u32> {
    (0..len)
        .map(|i| ((i as u64 * 7 + seed) % vocab as u64) as u32)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The block-paged backend reproduces the contiguous backend's
    /// logits **bitwise** — prefill and every decode step — for both
    /// architectures, under grouped-query attention, at block sizes
    /// that put prefill boundaries mid-block, and across the attention
    /// window (prompt+steps can exceed `max_seq`, exercising the
    /// partially dropped front block).
    #[test]
    fn paged_logits_are_bitwise_identical_to_contiguous(
        cfg in arb_cfg(),
        seed in 0u64..50,
        prompt_len in 2usize..10,
        steps in 0usize..10,
        block_size in 1usize..6,
    ) {
        let (model, store) = build(cfg.clone(), seed);
        let prompt = prompt_tokens(prompt_len, seed, cfg.vocab_size);
        let mut contig = model.new_cache();
        let pool = BlockPool::for_model(
            KvBlockConfig { block_size, num_blocks: 64 },
            &model,
        );
        let mut paged = pool.new_seq(cfg.max_seq);
        paged.reserve_rows(prompt.len()).expect("reserve prefill");
        let lc = model.forward_cached(&store, &prompt, &mut contig);
        let lp = model.forward_cached_with(&store, &prompt, &mut paged);
        prop_assert_eq!(&lc, &lp, "prefill logits diverge");
        let v = cfg.vocab_size;
        let mut next = argmax(&lc[(prompt_len - 1) * v..]) as u32;
        for s in 0..steps {
            paged.reserve_rows(1).expect("reserve decode row");
            let dc = model.decode_step(&store, next, &mut contig);
            let dp = model.decode_step_with(&store, next, &mut paged);
            prop_assert_eq!(&dc, &dp, "decode step {} diverges", s);
            next = argmax(&dc) as u32;
        }
    }

    /// Fork-then-diverge never aliases: after a copy-on-write fork,
    /// parent and child each decode a different token stream, and both
    /// match fresh independent contiguous caches fed the same streams —
    /// bitwise. Afterwards every block returns to the pool.
    #[test]
    fn cow_fork_then_diverge_matches_independent_caches(
        cfg in arb_cfg(),
        seed in 0u64..50,
        prompt_len in 2usize..8,
        steps in 1usize..6,
        block_size in 1usize..5,
    ) {
        let (model, store) = build(cfg.clone(), seed);
        let prompt = prompt_tokens(prompt_len, seed, cfg.vocab_size);
        let pool = BlockPool::for_model(
            KvBlockConfig { block_size, num_blocks: 128 },
            &model,
        );
        let mut parent = pool.new_seq(cfg.max_seq);
        parent.reserve_rows(prompt.len()).expect("reserve prefill");
        model.forward_cached_with(&store, &prompt, &mut parent);
        let mut child = parent.fork();
        // independent reference caches for each divergent stream
        let mut ref_a = model.new_cache();
        model.forward_cached(&store, &prompt, &mut ref_a);
        let mut ref_b = model.new_cache();
        model.forward_cached(&store, &prompt, &mut ref_b);
        let vocab = cfg.vocab_size as u32;
        for i in 0..steps {
            let (ta, tb) = ((3 * i as u32 + 1) % vocab, (5 * i as u32 + 2) % vocab);
            parent.reserve_rows(1).expect("reserve parent row");
            child.reserve_rows(1).expect("reserve child row");
            let pa = model.decode_step_with(&store, ta, &mut parent);
            let pb = model.decode_step_with(&store, tb, &mut child);
            let ca = model.decode_step(&store, ta, &mut ref_a);
            let cb = model.decode_step(&store, tb, &mut ref_b);
            prop_assert_eq!(&pa, &ca, "parent aliased at step {}", i);
            prop_assert_eq!(&pb, &cb, "child aliased at step {}", i);
        }
        drop(parent);
        drop(child);
        prop_assert_eq!(pool.free_blocks(), 128, "blocks leaked after drop");
    }
}

fn tiny_engine(kv_backend: KvBackend) -> Engine {
    let cfg = GptConfig {
        vocab_size: 30,
        hidden: 16,
        layers: 1,
        heads: 2,
        max_seq: 32,
        ..GptConfig::tiny(ArchKind::Llama, 30)
    };
    let (model, store) = build(cfg, 0);
    Engine::new(
        model,
        store,
        EngineConfig {
            kv_backend,
            ..EngineConfig::default()
        },
    )
}

/// A request whose worst case exceeds the whole pool is rejected with
/// the typed error at submit time — never a panic, never a livelock.
#[test]
fn oversized_request_gets_typed_kv_exhausted() {
    let engine = tiny_engine(KvBackend::Paged(KvBlockConfig {
        block_size: 4,
        num_blocks: 4,
    }));
    let mut req = GenRequest::new(vec![1, 2, 3]);
    req.opts.max_new_tokens = 500;
    let err = engine
        .submit_request(req)
        .map(|_| ())
        .expect_err("rejected");
    match err {
        EngineError::KvExhausted {
            needed_blocks,
            pool_blocks,
        } => {
            assert_eq!(pool_blocks, 4);
            assert!(needed_blocks > pool_blocks);
            assert!(err.to_string().contains("KV blocks"), "{err}");
        }
        other => panic!("expected KvExhausted, got {other:?}"),
    }
    engine.shutdown();
}

/// Blocks flow back to the pool on every exit path — normal retire,
/// client cancel, and a panicking forward — proven behaviourally: after
/// mixed traffic, a request needing nearly the whole pool still runs.
#[test]
fn blocks_return_after_retire_cancel_and_failure() {
    let engine = tiny_engine(KvBackend::Paged(KvBlockConfig {
        block_size: 4,
        num_blocks: 16,
    }));
    let greedy = SampleOptions {
        temperature: 0.0,
        top_k: 0,
        max_new_tokens: 4,
        stop_token: None,
    };
    // normal retires
    for i in 0..3u32 {
        let r = engine
            .submit(&[1 + i, 2, 3, 4], greedy)
            .expect("admitted")
            .wait()
            .unwrap();
        assert_eq!(r.finish, FinishReason::Length);
    }
    // cancelled mid-flight
    let mut cancel_req = GenRequest::new(vec![5, 6, 7]);
    cancel_req.opts.max_new_tokens = 10_000;
    cancel_req.opts.temperature = 0.0;
    let h = engine.submit_request(cancel_req).expect("admitted");
    h.cancel();
    assert_eq!(h.wait().unwrap().finish, FinishReason::Cancelled);
    // panicking prefill (out-of-vocab token)
    let bad = engine.submit(&[29_999], greedy).expect("admitted");
    assert_eq!(bad.wait().unwrap().finish, FinishReason::Failed);
    // a near-pool-sized request completes: the blocks all came back
    // (its worst case is 10 of 16 blocks, and the prefix cache yields
    // whatever it still pins under pressure)
    let mut big = GenRequest::new((0..20).map(|t| t % 29).collect());
    big.opts.max_new_tokens = 20;
    big.opts.temperature = 0.0;
    let r = engine
        .submit_request(big)
        .expect("admitted")
        .wait()
        .unwrap();
    assert_eq!(r.finish, FinishReason::Length);
    assert_eq!(r.generated, 20);
    let m = engine.metrics();
    assert_eq!(m.failed, 1);
    assert_eq!(m.backlog, 0);
    engine.shutdown();
}

/// Preemption is lossless: the same sampled workload (temperature > 0,
/// so the rng stream matters too) produces identical token streams on
/// a pool small enough to force eviction-and-recompute and on a pool
/// large enough to never evict.
#[test]
fn eviction_recompute_reproduces_preeviction_decode() {
    let run = |num_blocks: usize| -> (Vec<Vec<u32>>, u64, u64) {
        let engine = tiny_engine(KvBackend::Paged(KvBlockConfig {
            block_size: 4,
            num_blocks,
        }));
        let opts = SampleOptions {
            temperature: 0.8,
            top_k: 5,
            max_new_tokens: 12,
            stop_token: None,
        };
        let handles: Vec<_> = (0..8)
            .map(|i| {
                engine
                    .submit(&[1 + i as u32, 2, 3, 4, 5, 6], opts)
                    .expect("admitted")
            })
            .collect();
        let outs = handles
            .into_iter()
            .map(|h| {
                let r = h.wait().expect("response");
                assert_eq!(r.finish, FinishReason::Length);
                r.tokens
            })
            .collect();
        engine.shutdown();
        let m = engine.metrics();
        (outs, m.kv_blocks_evicted, m.preemptions)
    };
    let (tight_outs, tight_evicted, tight_preempted) = run(10);
    let (ample_outs, ample_evicted, ample_preempted) = run(256);
    assert!(
        tight_evicted > 0,
        "a 10-block pool under 8 requests must evict"
    );
    assert!(
        tight_preempted > 0,
        "pool exhaustion mid-decode must park active requests"
    );
    assert_eq!(ample_evicted, 0, "an ample pool must not evict");
    assert_eq!(ample_preempted, 0, "an ample pool must not preempt");
    assert_eq!(
        tight_outs, ample_outs,
        "recompute after eviction changed a token stream"
    );
}
