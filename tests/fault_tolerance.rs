//! Tier-1 integration tests for the fault-tolerance subsystem:
//! checkpoint-restart pretraining that is bit-identical to an
//! uninterrupted run (for both architectures, interrupted anywhere),
//! and the failure-injection simulator's agreement with the Young/Daly
//! optimal-checkpoint-interval prediction at 256-GCD scale.

use matgpt::core::recipes::{OptChoice, PretrainConfig, SizeRole};
use matgpt::core::{pretrain_resume, pretrain_with_checkpoints, Trainer};
use matgpt::corpus::{build_corpus, CorpusConfig};
use matgpt::frontier_sim::{
    resilient_training_run, simulate_step, FaultModel, PowerModel, Strategy, TrainSetup,
};
use matgpt::model::{ArchKind, GptConfig};
use matgpt::tokenizer::TokenizerKind;
use proptest::prelude::*;
use std::sync::OnceLock;

fn docs() -> &'static Vec<String> {
    static DOCS: OnceLock<Vec<String>> = OnceLock::new();
    DOCS.get_or_init(|| {
        build_corpus(&CorpusConfig {
            n_materials: 40,
            total_docs: 120,
            offtopic_fraction: 0.2,
            seed: 17,
        })
        .documents
    })
}

fn cfg(arch: ArchKind) -> PretrainConfig {
    PretrainConfig {
        steps: 10,
        batch_seqs: 2,
        ..PretrainConfig::scaled(
            arch,
            TokenizerKind::Hf,
            300,
            OptChoice::Adam,
            SizeRole::Base,
        )
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Interrupt a pretraining run at an arbitrary step, resume it from
    /// the checkpoint bytes, and the final loss curves are **exactly**
    /// (bit-for-bit) those of the uninterrupted run — weights, optimizer
    /// moments, LR step and data-loader stream all restored. Holds for
    /// both the NeoX and LLaMA configurations.
    #[test]
    fn interrupted_runs_resume_bit_identically(
        arch in prop_oneof![Just(ArchKind::NeoX), Just(ArchKind::Llama)],
        interrupt in 1usize..10,
    ) {
        let cfg = cfg(arch);
        let documents = docs();

        let mut uninterrupted = Trainer::new(documents, &cfg);
        uninterrupted.run_to_end();
        let baseline = uninterrupted.finish();

        let mut trainer = Trainer::new(documents, &cfg);
        for _ in 0..interrupt {
            trainer.step_once();
        }
        let bytes = trainer.checkpoint();
        drop(trainer); // the "failure": all in-memory state is gone
        let resumed = pretrain_resume(documents, &cfg, &bytes).expect("resume");

        // exact equality on f32 curves — no tolerance
        prop_assert_eq!(&baseline.curves.train, &resumed.curves.train);
        prop_assert_eq!(&baseline.curves.val, &resumed.curves.val);
        prop_assert_eq!(&baseline.curves.label, &resumed.curves.label);
    }
}

/// The periodic-checkpointing driver writes restartable images: resuming
/// from *any* of them reproduces the uninterrupted run exactly.
#[test]
fn every_periodic_checkpoint_is_a_valid_restart_point() {
    let cfg = cfg(ArchKind::Llama);
    let documents = docs();
    let (baseline, checkpoints) = pretrain_with_checkpoints(documents, &cfg, 3);
    assert!(checkpoints.len() >= 3, "10 steps / every 3 -> >= 3 images");
    for (at_step, bytes) in &checkpoints {
        let resumed = pretrain_resume(documents, &cfg, bytes)
            .unwrap_or_else(|e| panic!("resume from step {at_step}: {e}"));
        assert_eq!(
            baseline.curves.train, resumed.curves.train,
            "resume from step {at_step} diverged"
        );
        assert_eq!(baseline.curves.val, resumed.curves.val);
    }
}

/// At 256 GCDs under an accelerated failure model, checkpointing at the
/// Young/Daly interval yields goodput at least as high as intervals 4x
/// longer or 4x shorter — the optimality the formulas predict.
#[test]
fn young_daly_interval_beats_quarter_and_four_x() {
    let mut setup = TrainSetup::new(
        GptConfig::paper_1_7b(ArchKind::Llama, 52_000),
        256,
        Strategy::DataParallel,
    );
    setup.micro_batch = 8;
    let report = simulate_step(&setup);
    let power = PowerModel::default();
    let faults = FaultModel {
        node_mtbf_hours: 32.0, // job MTBF ~1 h at 32 nodes
        ..FaultModel::default()
    };
    let tau = faults.young_interval_s(256);
    let reps = 48;
    let run = |interval: f64| {
        resilient_training_run(&setup, &report, &power, &faults, 15e9, interval, reps)
    };
    let at_tau = run(tau);
    let at_quarter = run(tau / 4.0);
    let at_four_x = run(tau * 4.0);
    assert!(
        at_tau.goodput >= at_quarter.goodput,
        "goodput at tau {} < at tau/4 {}",
        at_tau.goodput,
        at_quarter.goodput
    );
    assert!(
        at_tau.goodput >= at_four_x.goodput,
        "goodput at tau {} < at 4*tau {}",
        at_tau.goodput,
        at_four_x.goodput
    );
    // over-frequent checkpointing pays in write overhead, over-sparse in
    // lost work — the two failure modes the optimum balances
    assert!(at_quarter.checkpoint_hours > at_tau.checkpoint_hours);
    assert!(at_four_x.lost_hours > at_tau.lost_hours);
}
