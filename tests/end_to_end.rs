//! Cross-crate integration tests: the complete pipeline at smoke scale.
//!
//! These exercise corpus → tokenizer → pre-training → evaluation →
//! embeddings → GNN fusion in one pass, asserting the qualitative claims
//! the reproduction stands on.

use matgpt::core::{pretrain, OptChoice, PretrainConfig, SizeRole};
use matgpt::corpus::{build_corpus, CorpusConfig};
use matgpt::eval::{evaluate, generate as gen_tasks, TaskKind};
use matgpt::model::ArchKind;
use matgpt::tokenizer::TokenizerKind;

fn small_corpus() -> matgpt::corpus::Corpus {
    build_corpus(&CorpusConfig {
        n_materials: 80,
        total_docs: 300,
        offtopic_fraction: 0.3,
        seed: 1234,
    })
}

#[test]
fn corpus_to_model_to_eval_pipeline() {
    let corpus = small_corpus();
    assert!(corpus.documents.len() > 150, "{}", corpus.documents.len());
    assert!(corpus.screening_accuracy > 0.9);

    let mut cfg = PretrainConfig::scaled(
        ArchKind::Llama,
        TokenizerKind::Hf,
        512,
        OptChoice::Adam,
        SizeRole::Base,
    );
    cfg.steps = 140;
    cfg.batch_seqs = 8;
    let trained = pretrain(&corpus.documents, &cfg);

    // loss must drop substantially on the templated corpus
    let first = trained.curves.train.first().unwrap().1;
    let last = trained.curves.final_train();
    assert!(last < first * 0.75, "loss {first} -> {last}");

    // zero-shot: the trained model must beat an untrained twin of itself
    // across the two corpus-aligned tasks (class statements and element
    // membership) — the robust form of "training transfers to QA"
    let mut untrained_store = matgpt::tensor::ParamStore::new();
    let untrained = matgpt::model::GptModel::new(
        trained.model.cfg.clone(),
        &mut untrained_store,
        &mut matgpt::tensor::init::rng(4242),
    );
    let mut trained_hits = 0.0;
    let mut untrained_hits = 0.0;
    let mut n = 0.0;
    // the three families whose answers the corpus statistics determine
    // without per-formula memorisation (SciQ-style recall needs the larger
    // reproduce_all scale)
    for kind in [TaskKind::Piqa, TaskKind::Obqa, TaskKind::ArcChallenge] {
        let items = gen_tasks(kind, &corpus.materials, 90, 5);
        let t = evaluate(
            &trained.model,
            &trained.store,
            trained.tokenizer.as_ref(),
            &items,
            &[],
            0,
        );
        let u = evaluate(
            &untrained,
            &untrained_store,
            trained.tokenizer.as_ref(),
            &items,
            &[],
            0,
        );
        trained_hits += t.accuracy * items.len() as f64;
        untrained_hits += u.accuracy * items.len() as f64;
        n += items.len() as f64;
    }
    let trained_acc = trained_hits / n;
    let untrained_acc = untrained_hits / n;
    assert!(
        trained_acc > untrained_acc + 0.08,
        "training must lift QA accuracy: {untrained_acc:.2} -> {trained_acc:.2}"
    );
}

#[test]
fn perplexity_transfers_to_unseen_domain_text() {
    let corpus = small_corpus();
    let mut cfg = PretrainConfig::scaled(
        ArchKind::NeoX,
        TokenizerKind::Hf,
        512,
        OptChoice::Adam,
        SizeRole::Base,
    );
    cfg.steps = 50;
    cfg.batch_seqs = 4;
    let trained = pretrain(&corpus.documents, &cfg);

    // a held-out sentence in the corpus style must score far better than
    // a shuffled-word version of itself
    let good = "The material crystallizes in a cubic structure with a lattice parameter";
    let bad = "parameter lattice with structure material a The crystallizes cubic in a";
    let score = |text: &str| {
        let tokens = trained.tokenizer.encode(text);
        trained.model.score_span(&trained.store, &tokens, 1) / tokens.len() as f64
    };
    assert!(
        score(good) > score(bad) + 0.1,
        "fluent {} vs shuffled {}",
        score(good),
        score(bad)
    );
}

#[test]
fn llama_and_neox_train_to_similar_losses() {
    // the paper's headline controlled comparison, at smoke scale: the two
    // architectures track each other closely under the same recipe
    let corpus = small_corpus();
    let mut results = Vec::new();
    for arch in [ArchKind::Llama, ArchKind::NeoX] {
        let mut cfg = PretrainConfig::scaled(
            arch,
            TokenizerKind::Hf,
            512,
            OptChoice::Adam,
            SizeRole::Base,
        );
        cfg.steps = 50;
        cfg.batch_seqs = 4;
        let trained = pretrain(&corpus.documents, &cfg);
        results.push(trained.curves.final_val());
    }
    let (llama, neox) = (results[0], results[1]);
    assert!(
        (llama / neox - 1.0).abs() < 0.15,
        "losses should be comparable: LLaMA {llama} vs NeoX {neox}"
    );
}
