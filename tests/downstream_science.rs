//! Integration tests for the scientific downstream task: embeddings carry
//! composition knowledge from the corpus into the GNN (the Table V
//! mechanism), and the embedding-analysis pipeline distinguishes model
//! families.

use matgpt::core::{pretrain_bert, train_tokenizer};
use matgpt::corpus::{build_corpus, BandGapClass, CorpusConfig};
use matgpt::eval::{pairwise_cosine, pca_project, summarize, BertEmbedder, Embedder};
use matgpt::gnn::{train_and_eval, GnnDataset, GnnTrainConfig, GnnVariant};
use matgpt::tokenizer::TokenizerKind;
use std::collections::HashMap;

#[test]
fn oracle_embedding_fusion_reproduces_table5_shape() {
    // Use the information-theoretic upper bound (class + coarse value, i.e.
    // exactly what the corpus texts state about every formula) to verify
    // the fusion machinery delivers the paper's improvement direction.
    let corpus = build_corpus(&CorpusConfig {
        n_materials: 150,
        total_docs: 200,
        offtopic_fraction: 0.2,
        seed: 77,
    });
    let mats = &corpus.materials;
    let cfg = GnnTrainConfig {
        epochs: 15,
        ..GnnTrainConfig::default()
    };
    let plain = train_and_eval(
        GnnVariant::MfCgnn,
        &GnnDataset::new(mats, GnnVariant::MfCgnn, 0.8),
        &cfg,
        "MF-CGNN",
    );
    let embeddings: HashMap<String, Vec<f32>> = mats
        .iter()
        .map(|m| {
            let class = match m.class {
                BandGapClass::Conductor => 0.0f32,
                BandGapClass::Semiconductor => 0.5,
                BandGapClass::Insulator => 1.0,
            };
            // what the corpus literally says: the class and a 0.1-eV-rounded value
            (
                m.formula.clone(),
                vec![class, (m.band_gap * 10.0).round() / 90.0],
            )
        })
        .collect();
    let fused = train_and_eval(
        GnnVariant::MfCgnn,
        &GnnDataset::new(mats, GnnVariant::MfCgnn, 0.8).with_embeddings(embeddings),
        &cfg,
        "+text-knowledge",
    );
    assert!(
        fused.test_mae < plain.test_mae * 0.9,
        "fusion {:.3} should clearly beat structure-only {:.3}",
        fused.test_mae,
        plain.test_mae
    );
}

#[test]
fn bert_surrogate_embeddings_flow_through_analysis() {
    let corpus = build_corpus(&CorpusConfig {
        n_materials: 60,
        total_docs: 150,
        offtopic_fraction: 0.2,
        seed: 31,
    });
    let tok = train_tokenizer(TokenizerKind::Hf, 400, &corpus.documents);
    let bert = pretrain_bert(&corpus.documents, &*tok, 30, 32, 5);
    let embedder = BertEmbedder {
        model: &bert.model,
        store: &bert.store,
        tokenizer: &*tok,
        name: "bert".into(),
    };
    let vectors: Vec<Vec<f32>> = corpus
        .materials
        .iter()
        .take(40)
        .map(|m| embedder.embed(&m.formula))
        .collect();
    // geometry summary is finite and sane
    let g = summarize("bert", &vectors, 500);
    assert!(g.mean_distance.is_finite() && g.mean_distance > 0.0);
    assert!((-1.0..=1.0).contains(&g.mean_cosine));
    // cosines are a proper distribution
    let cos = pairwise_cosine(&vectors, 500);
    assert!(cos.iter().all(|c| (-1.0001..=1.0001).contains(c)));
    // PCA reduction keeps the sample count and requested dims
    let reduced = pca_project(&vectors, 4, 40);
    assert_eq!(reduced.len(), 40);
    assert_eq!(reduced[0].len(), 4);
}

#[test]
fn screening_generalizes_across_seeds() {
    // the classifier trained inside one corpus build screens documents
    // generated from a *different* seed's universe
    let a = build_corpus(&CorpusConfig {
        n_materials: 60,
        total_docs: 150,
        offtopic_fraction: 0.3,
        seed: 1,
    });
    let b = build_corpus(&CorpusConfig {
        n_materials: 60,
        total_docs: 150,
        offtopic_fraction: 0.3,
        seed: 2,
    });
    assert!(a.screening_accuracy > 0.9);
    assert!(b.screening_accuracy > 0.9);
    // both corpora talk about band gaps, but about different materials
    let fa = &a.materials[0].formula;
    assert!(
        !b.materials.iter().take(10).any(|m| &m.formula == fa),
        "universes should differ"
    );
}
