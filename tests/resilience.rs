//! Tier-1 integration tests for executed fault tolerance: a killed
//! worker is detected (never deadlocks) and the run completes; the
//! post-recovery continuation is bit-identical to an uninterrupted
//! [`DataParallel::resume`] from the same snapshot; elastic shrink to
//! the survivors is bit-identical to a fresh smaller-world resume; a
//! stalled worker is declared dead via heartbeats rather than hanging
//! the pool; and a seeded chaos run (kills sampled from the simulator's
//! MTBF process, `MATGPT_CHAOS_SEED`-selectable) still reproduces the
//! sequential reference bit-for-bit.

use matgpt::core::parallel::{DataParallel, ParallelConfig};
use matgpt::core::recipes::{OptChoice, PretrainConfig, SizeRole};
use matgpt::core::{FailureCause, FaultPlan, RecoveryPolicy, ResilienceConfig, ResilientOutcome};
use matgpt::corpus::{build_corpus, CorpusConfig};
use matgpt::frontier_sim::FaultModel;
use matgpt::model::ArchKind;
use matgpt::tokenizer::TokenizerKind;
use std::sync::OnceLock;

fn docs() -> &'static Vec<String> {
    static DOCS: OnceLock<Vec<String>> = OnceLock::new();
    DOCS.get_or_init(|| {
        build_corpus(&CorpusConfig {
            n_materials: 30,
            total_docs: 90,
            offtopic_fraction: 0.2,
            seed: 23,
        })
        .documents
    })
}

fn cfg(batch_seqs: usize) -> PretrainConfig {
    PretrainConfig {
        steps: 6,
        batch_seqs,
        seq: 32,
        ..PretrainConfig::scaled(
            ArchKind::NeoX,
            TokenizerKind::Hf,
            300,
            OptChoice::Adam,
            SizeRole::Base,
        )
    }
}

/// Snapshot image the run rolled back to, from the outcome's own
/// checkpoint list.
fn rollback_image(out: &ResilientOutcome) -> (usize, Vec<u8>) {
    let at = out.resilience.recoveries[0].rolled_back_to;
    let (step, image) = out
        .outcome
        .checkpoints
        .iter()
        .find(|(s, _)| *s == at)
        .expect("rollback snapshot is in the outcome");
    (*step, image.clone())
}

/// A worker killed mid-step neither deadlocks nor poisons the pool: the
/// failure is detected, training rolls back to the last snapshot,
/// respawns at full width, and the final weights and curves are
/// **bit-identical** to (1) an uninterrupted resume from that same
/// snapshot and (2) a never-faulted run — detection and recovery are
/// numerically invisible.
#[test]
fn kill_recovers_bitwise_identical_to_resume_from_snapshot() {
    let cfg = cfg(4);
    let res = ResilienceConfig {
        snapshot_every: 2,
        faults: FaultPlan::kill(1, 3),
        policy: RecoveryPolicy::Respawn,
        ..ResilienceConfig::default()
    };
    let pool = || DataParallel::new(ParallelConfig::replicated(2));
    let out = pool().train_resilient(docs(), &cfg, res);

    assert_eq!(out.resilience.faults_fired, 1);
    assert_eq!(out.resilience.recoveries.len(), 1);
    let ev = &out.resilience.recoveries[0];
    assert_eq!(ev.detected_at_step, 3);
    assert_eq!(ev.dead_ranks, vec![1]);
    assert_eq!(ev.cause, FailureCause::RankLost);
    assert_eq!(ev.rolled_back_to, 2);
    assert_eq!(ev.lost_steps, 1);
    assert_eq!((ev.workers_before, ev.workers_after), (2, 2));
    assert_eq!(out.resilience.lost_work_tokens, (4 * 32) as u64);
    // 6 planned steps + 1 re-executed + 1 failed attempt.
    assert_eq!(out.resilience.steps_executed, 8);

    // (1) bitwise vs. an uninterrupted resume from the same snapshot.
    let (_, image) = rollback_image(&out);
    let resumed = pool()
        .resume(docs(), &cfg, &image)
        .expect("snapshot resumes");
    assert_eq!(
        out.outcome.pretrained.store.flat_values(),
        resumed.pretrained.store.flat_values()
    );
    assert_eq!(
        out.outcome.pretrained.curves.train,
        resumed.pretrained.curves.train
    );
    assert_eq!(
        out.outcome.pretrained.curves.val,
        resumed.pretrained.curves.val
    );

    // (2) bitwise vs. a run that never faulted at all.
    let clean = pool().train(docs(), &cfg);
    assert_eq!(
        out.outcome.pretrained.store.flat_values(),
        clean.pretrained.store.flat_values()
    );
    assert_eq!(
        out.outcome.pretrained.curves.val,
        clean.pretrained.curves.val
    );
}

/// Elastic re-shard: killing one of three ZeRO-1 workers under
/// [`RecoveryPolicy::Shrink`] continues with two — a rebuilt
/// [`ShardPlan`] and redistributed optimizer shards — and the result is
/// bit-identical to a fresh 2-worker pool resuming the same snapshot
/// (which is itself bit-identical to the sequential reference, so the
/// shrink is loss-curve-equivalent to never having had 3 workers).
#[test]
fn elastic_shrink_matches_fresh_smaller_world() {
    let cfg = cfg(6);
    let res = ResilienceConfig {
        snapshot_every: 2,
        faults: FaultPlan::kill(2, 3),
        policy: RecoveryPolicy::Shrink,
        ..ResilienceConfig::default()
    };
    let out = DataParallel::new(ParallelConfig::zero1(3)).train_resilient(docs(), &cfg, res);

    assert_eq!(out.resilience.recoveries.len(), 1);
    let ev = &out.resilience.recoveries[0];
    assert_eq!(ev.dead_ranks, vec![2]);
    assert_eq!((ev.workers_before, ev.workers_after), (3, 2));
    assert_eq!(out.resilience.final_workers, 2);
    assert_eq!(out.resilience.respawn_fallbacks, 0);
    assert_eq!(out.outcome.report.workers, 2);

    let (_, image) = rollback_image(&out);
    let fresh_small = DataParallel::new(ParallelConfig::zero1(2))
        .resume(docs(), &cfg, &image)
        .expect("snapshot resumes at the shrunken world size");
    assert_eq!(
        out.outcome.pretrained.store.flat_values(),
        fresh_small.pretrained.store.flat_values()
    );
    assert_eq!(
        out.outcome.pretrained.curves.train,
        fresh_small.pretrained.curves.train
    );
    assert_eq!(
        out.outcome.pretrained.curves.val,
        fresh_small.pretrained.curves.val
    );

    // The two-worker resume is itself bit-identical to the two-worker
    // sequential reference *from that snapshot on* (tier-1 contract),
    // so the shrunken continuation is loss-curve-equivalent to a run
    // that never had three workers — which is what the curves show:
    // every post-rollback point matches the fresh small-world run.
    let at = out.resilience.recoveries[0].rolled_back_to;
    assert!(out
        .outcome
        .pretrained
        .curves
        .val
        .iter()
        .any(|(step, _)| *step >= at));
}

/// A stalled (not dead) worker sleeping far past the collective timeout
/// is declared dead via the grace drain + stale heartbeat rather than
/// wedging the pool; the run completes bit-identically to a clean one.
#[test]
fn stalled_worker_is_declared_dead_not_waited_on() {
    let cfg = cfg(4);
    let res = ResilienceConfig {
        snapshot_every: 2,
        faults: FaultPlan::stall(1, 2, 3_000),
        policy: RecoveryPolicy::Respawn,
        collective_timeout_ms: 150,
        heartbeat_stale_ms: 600,
        grace_ms: 250,
    };
    let out = DataParallel::new(ParallelConfig::replicated(2)).train_resilient(docs(), &cfg, res);

    assert_eq!(out.resilience.recoveries.len(), 1);
    let ev = &out.resilience.recoveries[0];
    assert_eq!(ev.detected_at_step, 2);
    assert_eq!(ev.dead_ranks, vec![1]);
    assert_eq!(ev.cause, FailureCause::Stalled);

    let clean = DataParallel::new(ParallelConfig::replicated(2)).train(docs(), &cfg);
    assert_eq!(
        out.outcome.pretrained.store.flat_values(),
        clean.pretrained.store.flat_values()
    );
}

/// Seeded chaos: kills sampled from the simulator's exponential MTBF
/// process (`FaultModel::sample_failure_schedule`), respawn recovery so
/// the world width is pinned. Whatever fires, the final weights and
/// curves must equal the sequential reference bit-for-bit — training
/// under chaos is numerically indistinguishable from training without
/// it. The seed comes from `MATGPT_CHAOS_SEED` so CI can sweep a
/// matrix.
#[test]
fn seeded_chaos_run_still_matches_the_sequential_reference() {
    let seed: u64 = std::env::var("MATGPT_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);
    let cfg = cfg(4);
    // MTBF tuned so a 6-step horizon sees a couple of arrivals.
    let model = FaultModel {
        node_mtbf_hours: 0.002,
        gcds_per_node: 1,
        straggler_prob: 0.0,
        seed,
        ..FaultModel::default()
    };
    let faults = FaultPlan::from_model(&model, 2, cfg.steps, 1.0);
    let planned = faults.planned().len();
    let res = ResilienceConfig {
        snapshot_every: 2,
        faults,
        policy: RecoveryPolicy::Respawn,
        ..ResilienceConfig::default()
    };
    let out = DataParallel::new(ParallelConfig::zero1(2)).train_resilient(docs(), &cfg, res);

    assert_eq!(out.resilience.faults_planned, planned);
    assert_eq!(out.resilience.final_workers, 2);
    assert_eq!(
        out.resilience.steps_executed,
        cfg.steps + out.resilience.lost_steps + out.resilience.recoveries.len()
    );

    let reference = DataParallel::train_reference(docs(), &cfg, 2);
    assert_eq!(
        out.outcome.pretrained.store.flat_values(),
        reference.pretrained.store.flat_values()
    );
    assert_eq!(
        out.outcome.pretrained.curves.train,
        reference.pretrained.curves.train
    );
    assert_eq!(
        out.outcome.pretrained.curves.val,
        reference.pretrained.curves.val
    );
}
