//! Tier-1 integration tests for int8 self-draft speculative decoding:
//! the speculative greedy stream must be **bit-identical** to plain f32
//! greedy decode on both paper architectures, over both KV backends
//! (contiguous and block-paged), at every draft length `k`, even when
//! an adversarial draft proposes mostly-wrong tokens — and the serving
//! engine must preserve stream equality and the spec-metric invariants
//! end to end, including under paged-pool pressure and preemption.

use matgpt::model::generate::argmax;
use matgpt::model::{
    generate, generate_speculative, speculative_step, ArchKind, DraftState, GptConfig, GptModel,
    KvStorage, QuantizedParamStore, SampleOptions, SpecStats,
};
use matgpt::serve::{
    BlockPool, DecodeMode, Engine, EngineConfig, FinishReason, KvBackend, KvBlockConfig,
};
use matgpt::tensor::{init, ParamStore};
use proptest::prelude::*;

fn build(cfg: GptConfig, seed: u64) -> (GptModel, ParamStore) {
    let mut store = ParamStore::new();
    let mut rng = init::rng(seed);
    let model = GptModel::new(cfg, &mut store, &mut rng);
    (model, store)
}

fn arb_cfg() -> impl Strategy<Value = GptConfig> {
    (
        prop_oneof![Just(ArchKind::NeoX), Just(ArchKind::Llama)],
        1usize..=2,  // layers
        1usize..=2,  // kv groups: heads = 2 * groups, kv_heads = groups
        12usize..40, // vocab
    )
        .prop_map(|(arch, layers, groups, vocab)| GptConfig {
            arch,
            vocab_size: vocab,
            hidden: 2 * groups * 8,
            layers,
            heads: 2 * groups,
            kv_heads: if groups > 1 { Some(groups) } else { None },
            max_seq: 16,
            rope_base: 10_000.0,
            norm_eps: 1e-5,
            dropout: 0.0,
        })
}

fn prompt_tokens(len: usize, seed: u64, vocab: usize) -> Vec<u32> {
    (0..len)
        .map(|i| ((i as u64 * 7 + seed) % vocab as u64) as u32)
        .collect()
}

fn greedy(max_new_tokens: usize) -> SampleOptions {
    SampleOptions {
        temperature: 0.0,
        top_k: 0,
        max_new_tokens,
        stop_token: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The speculative stream equals plain f32 greedy decode **bitwise**
    /// for both architectures, every draft length, prompts and budgets
    /// that cross the attention window (forcing the plain fallback),
    /// and drafts of arbitrary quality: `hostile` swaps in a draft
    /// quantized from a *different* model, collapsing acceptance so
    /// rollback fires on nearly every macro-step.
    #[test]
    fn spec_stream_is_bitwise_greedy_for_any_draft(
        cfg in arb_cfg(),
        seed in 0u64..40,
        prompt_len in 1usize..8,
        steps in 1usize..14,
        k in 1usize..=4,
        hostile in prop_oneof![Just(false), Just(true)],
    ) {
        let (model, store) = build(cfg.clone(), seed);
        let draft = if hostile {
            let (m2, s2) = build(cfg.clone(), seed.wrapping_add(1000));
            QuantizedParamStore::quantize(&m2, &s2)
        } else {
            QuantizedParamStore::quantize(&model, &store)
        };
        let prompt = prompt_tokens(prompt_len, seed, cfg.vocab_size);
        let opts = greedy(steps);
        let plain = generate(&model, &store, &prompt, &opts, &mut init::rng(0));
        let (spec, stats) = generate_speculative(&model, &store, &draft, &prompt, &opts, k);
        prop_assert_eq!(spec, plain, "stream diverged (hostile={})", hostile);
        prop_assert_eq!(stats.rolled_back, stats.drafted - stats.accepted);
        prop_assert!(stats.verify_calls >= 1);
    }

    /// Driving [`speculative_step`] over a **block-paged** target cache
    /// reproduces plain greedy decode bitwise: speculative rollback
    /// truncates through block boundaries (releasing whole speculative
    /// tail blocks, overwriting stale partial-tail slots) without
    /// disturbing committed rows, at every block size.
    #[test]
    fn spec_over_paged_kv_is_bitwise_greedy(
        cfg in arb_cfg(),
        seed in 0u64..40,
        prompt_len in 2usize..8,
        steps in 1usize..12,
        k in 1usize..=4,
        block_size in 1usize..6,
    ) {
        let (model, store) = build(cfg.clone(), seed);
        let draft = QuantizedParamStore::quantize(&model, &store);
        let prompt = prompt_tokens(prompt_len, seed, cfg.vocab_size);
        let opts = greedy(steps);
        let plain = generate(&model, &store, &prompt, &opts, &mut init::rng(0));

        let pool = BlockPool::for_model(
            KvBlockConfig { block_size, num_blocks: 128 },
            &model,
        );
        let mut cache = pool.new_seq(cfg.max_seq);
        cache.reserve_rows(prompt.len()).expect("reserve prefill");
        let v = cfg.vocab_size;
        let logits = model.forward_cached_with(&store, &prompt, &mut cache);
        let mut row = logits[(cache.len() - 1) * v..].to_vec();
        let mut draft_state = DraftState::new(&model, &prompt);
        let mut stats = SpecStats::default();
        let mut tokens = prompt.clone();
        let mut emitted = 0usize;
        while emitted < steps {
            cache.reserve_rows(k + 1).expect("reserve spec rows");
            let out = speculative_step(
                &model, &store, &draft, k,
                &mut cache, &mut draft_state, &mut row,
                steps - emitted,
            );
            stats.record(&out);
            for &t in &out.tokens {
                tokens.push(t);
                emitted += 1;
            }
        }
        prop_assert_eq!(tokens, plain, "paged speculative stream diverged");
        prop_assert_eq!(stats.rolled_back, stats.drafted - stats.accepted);
        drop(cache);
        prop_assert_eq!(pool.free_blocks(), 128, "blocks leaked after rollback");
    }
}

fn tiny_engine(decode: DecodeMode, kv_backend: KvBackend) -> Engine {
    let cfg = GptConfig {
        vocab_size: 30,
        hidden: 16,
        layers: 1,
        heads: 2,
        max_seq: 32,
        ..GptConfig::tiny(ArchKind::Llama, 30)
    };
    let mut store = ParamStore::new();
    let mut rng = init::rng(0);
    let model = GptModel::new(cfg, &mut store, &mut rng);
    Engine::new(
        model,
        store,
        EngineConfig {
            decode,
            kv_backend,
            ..EngineConfig::default()
        },
    )
}

/// The speculative engine emits the same greedy token streams a plain
/// engine does, on both KV backends, and its spec counters respect
/// `rolled_back == drafted - accepted`.
#[test]
fn spec_engine_matches_plain_on_both_kv_backends() {
    let opts = greedy(10);
    let prompts: Vec<Vec<u32>> = vec![vec![1, 2, 3], vec![9, 8, 7, 6], vec![5], vec![2, 4, 6, 8]];
    for kv_backend in [
        KvBackend::Contiguous,
        KvBackend::Paged(KvBlockConfig {
            block_size: 4,
            num_blocks: 96,
        }),
    ] {
        let mut outs: Vec<Vec<Vec<u32>>> = Vec::new();
        for decode in [DecodeMode::Plain, DecodeMode::Speculative { k: 4 }] {
            let engine = tiny_engine(decode, kv_backend);
            let handles: Vec<_> = prompts
                .iter()
                .map(|p| engine.submit(p, opts).expect("admitted"))
                .collect();
            outs.push(
                handles
                    .into_iter()
                    .map(|h| h.wait().expect("response").tokens)
                    .collect(),
            );
            if decode != DecodeMode::Plain {
                let m = engine.metrics();
                assert!(m.spec_drafted > 0, "{kv_backend:?}: engine never drafted");
                assert_eq!(m.spec_rolled_back, m.spec_drafted - m.spec_accepted);
                assert!(m.spec_acceptance_rate > 0.0);
            }
            engine.shutdown();
        }
        assert_eq!(outs[0], outs[1], "{kv_backend:?}: spec stream diverged");
    }
}

/// A mixed batch — greedy requests (spec-eligible) interleaved with
/// sampled requests (plain path) — reproduces the streams a plain
/// engine gives the same submission order, so speculation composes with
/// continuous batching without perturbing ineligible neighbours.
#[test]
fn mixed_greedy_and_sampled_batch_is_unperturbed() {
    let sampled = SampleOptions {
        temperature: 0.7,
        top_k: 4,
        max_new_tokens: 8,
        stop_token: None,
    };
    let mut outs: Vec<Vec<Vec<u32>>> = Vec::new();
    for decode in [DecodeMode::Plain, DecodeMode::Speculative { k: 3 }] {
        let engine = tiny_engine(decode, KvBackend::Contiguous);
        // submission order fixes each request's id and therefore its
        // sampling seed: same order => comparable streams
        let handles = vec![
            engine.submit(&[1, 2, 3], greedy(8)).expect("admitted"),
            engine.submit(&[4, 5], sampled).expect("admitted"),
            engine.submit(&[6, 7, 8], greedy(8)).expect("admitted"),
            engine.submit(&[9, 10], sampled).expect("admitted"),
        ];
        outs.push(
            handles
                .into_iter()
                .map(|h| h.wait().expect("response").tokens)
                .collect(),
        );
        engine.shutdown();
    }
    assert_eq!(outs[0], outs[1], "mixed batch diverged under spec mode");
}

/// Speculation under paged-pool pressure: preempted speculative
/// requests restart with a fresh draft state and must still finish with
/// their full, correct greedy streams (compared against an unpressured
/// plain engine), with the spec-counter invariant intact.
#[test]
fn spec_survives_paged_preemption_with_correct_streams() {
    let opts = greedy(12);
    let prompts: Vec<Vec<u32>> = (0..8).map(|i| vec![1 + i as u32, 2, 3, 4, 5, 6]).collect();
    let reference = tiny_engine(DecodeMode::Plain, KvBackend::Contiguous);
    let expected: Vec<Vec<u32>> = prompts
        .iter()
        .map(|p| {
            reference
                .submit(p, opts)
                .expect("admitted")
                .wait()
                .expect("response")
                .tokens
        })
        .collect();
    reference.shutdown();

    // pool far too small for 8 concurrent worst cases: admission stalls
    // and decode-time preemption must kick in
    let engine = tiny_engine(
        DecodeMode::Speculative { k: 4 },
        KvBackend::Paged(KvBlockConfig {
            block_size: 4,
            num_blocks: 14,
        }),
    );
    let handles: Vec<_> = prompts
        .iter()
        .map(|p| engine.submit(p, opts).expect("admitted"))
        .collect();
    for (h, want) in handles.into_iter().zip(&expected) {
        let r = h.wait().expect("response");
        assert_eq!(r.finish, FinishReason::Length);
        assert_eq!(&r.tokens, want, "stream diverged under preemption");
    }
    let m = engine.metrics();
    assert_eq!(m.completed, 8);
    assert_eq!(m.failed, 0);
    assert_eq!(m.spec_rolled_back, m.spec_drafted - m.spec_accepted);
    engine.shutdown();
}

/// Sanity anchor for the bench: the self-draft (quantized from the
/// *same* weights) accepts well over half its proposals on a
/// non-adversarial model, so `ext_spec`'s gated speedup has headroom.
#[test]
fn self_draft_acceptance_is_high() {
    let cfg = GptConfig {
        vocab_size: 64,
        hidden: 32,
        layers: 2,
        heads: 4,
        max_seq: 96,
        ..GptConfig::tiny(ArchKind::Llama, 64)
    };
    let (model, store) = build(cfg, 3);
    let draft = QuantizedParamStore::quantize(&model, &store);
    let prompt: Vec<u32> = (0..12u32).map(|i| (i * 5 + 1) % 64).collect();
    let (_, stats) = generate_speculative(&model, &store, &draft, &prompt, &greedy(48), 4);
    assert!(
        stats.acceptance_rate() > 0.5,
        "self-draft acceptance {:.2} unexpectedly low",
        stats.acceptance_rate()
    );
}

/// `argmax` ties and zero logits are not a liability: the verify pass
/// re-derives each accepted token from the same logits row plain decode
/// sees, so even a deliberately degenerate (all-equal-logit) row picks
/// the same winner through either path. Guards the tie-breaking rule
/// the bit-identity proof leans on.
#[test]
fn verify_tie_breaking_matches_plain_argmax() {
    let row = vec![0.25f32; 17];
    let a = argmax(&row);
    assert_eq!(a, 16, "argmax must keep the last maximal index on ties");
}
