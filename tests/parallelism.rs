//! Tier-1 integration tests for the data-parallel training executor:
//! bit-level equivalence of the threaded N-worker run against the
//! sequential deterministic-reduction reference (both architectures,
//! replicated and ZeRO-1), the ring allreduce against a naive oracle
//! (including non-divisible chunkings), ZeRO-1 optimizer-state memory
//! accounting, and checkpoint interchange with the single-worker
//! [`Trainer`] resume path.

use matgpt::core::parallel::{ring_allreduce_sum, DataParallel, ParallelConfig};
use matgpt::core::recipes::{OptChoice, PretrainConfig, SizeRole};
use matgpt::core::{pretrain, pretrain_resume};
use matgpt::corpus::{build_corpus, CorpusConfig};
use matgpt::frontier_sim::collectives::{ring_chunks, wire_bytes, Collective};
use matgpt::model::ArchKind;
use matgpt::tokenizer::TokenizerKind;
use proptest::prelude::*;
use std::sync::OnceLock;

fn docs() -> &'static Vec<String> {
    static DOCS: OnceLock<Vec<String>> = OnceLock::new();
    DOCS.get_or_init(|| {
        build_corpus(&CorpusConfig {
            n_materials: 30,
            total_docs: 90,
            offtopic_fraction: 0.2,
            seed: 23,
        })
        .documents
    })
}

fn cfg(arch: ArchKind) -> PretrainConfig {
    PretrainConfig {
        steps: 6,
        batch_seqs: 4,
        seq: 32,
        ..PretrainConfig::scaled(
            arch,
            TokenizerKind::Hf,
            300,
            OptChoice::Adam,
            SizeRole::Base,
        )
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The threaded N-worker executor is **bit-identical** to the
    /// sequential reference (one replica, micro gradients combined in
    /// the ring's fixed fold order): same train/val curves, same final
    /// weights. Holds for both architectures, for replicated and
    /// ZeRO-1 synchronization, for N ∈ {1, 2, 4}.
    #[test]
    fn threaded_dp_matches_sequential_reference_bitwise(
        arch in prop_oneof![Just(ArchKind::NeoX), Just(ArchKind::Llama)],
        workers in prop_oneof![Just(1usize), Just(2), Just(4)],
        zero1 in prop_oneof![Just(false), Just(true)],
    ) {
        let cfg = cfg(arch);
        let pcfg = if zero1 {
            ParallelConfig::zero1(workers)
        } else {
            ParallelConfig::replicated(workers)
        };
        let dp = DataParallel::new(pcfg).train(docs(), &cfg);
        let reference = DataParallel::train_reference(docs(), &cfg, workers);

        prop_assert_eq!(&dp.pretrained.curves.train, &reference.pretrained.curves.train);
        prop_assert_eq!(&dp.pretrained.curves.val, &reference.pretrained.curves.val);
        prop_assert_eq!(
            dp.pretrained.store.flat_values(),
            reference.pretrained.store.flat_values()
        );
        // The measured mean per-rank gradient traffic lands exactly on
        // the paper's 2(N−1)/N · 4M closed form. ZeRO-1 additionally
        // allgathers one squared norm per tensor for global-norm
        // clipping — an (N−1)/N · 4T term, exact as well.
        let m = dp.report.param_scalars;
        let t = dp.pretrained.store.tensor_sizes().len();
        let mut formula = wire_bytes(Collective::AllReduce, (m * 4) as f64, workers);
        if zero1 {
            formula += wire_bytes(Collective::AllGather, (t * 4) as f64, workers);
        }
        prop_assert_eq!(dp.report.measured_allreduce_bytes_per_step, formula);
    }

    /// The real threaded ring allreduce agrees with a naive oracle sum
    /// on integer-valued floats (where f32 addition is exact), for
    /// rank counts that do and do not divide the buffer length, and
    /// every rank sends exactly the bytes the ring schedule prescribes.
    #[test]
    fn ring_allreduce_matches_naive_oracle(
        len in 1usize..40,
        n in 1usize..6,
        seed in 0u64..1000,
    ) {
        let parts: Vec<Vec<f32>> = (0..n)
            .map(|r| {
                (0..len)
                    .map(|i| (((seed as usize + r * 31 + i * 7) % 17) as f32) - 8.0)
                    .collect()
            })
            .collect();
        let naive: Vec<f32> = (0..len)
            .map(|i| parts.iter().map(|p| p[i]).sum::<f32>())
            .collect();

        let bounds = ring_chunks(len, n);
        let (results, sent) =
            ring_allreduce_sum(parts, &bounds).expect("healthy ring cannot fail");
        for buf in &results {
            prop_assert_eq!(buf, &naive);
        }
        // Per-rank traffic: each rank sends every chunk except one per
        // phase (reduce-scatter + allgather), 4 bytes per scalar.
        for (rank, &bytes) in sent.iter().enumerate() {
            let rs: usize = (0..n)
                .filter(|&c| c != rank)
                .map(|c| bounds[c].len())
                .sum();
            let ag: usize = (0..n)
                .filter(|&c| c != (rank + 1) % n)
                .map(|c| bounds[c].len())
                .sum();
            prop_assert_eq!(bytes, ((rs + ag) * 4) as u64);
        }
        // ... and the mean over ranks is the closed-form wire volume.
        let mean = sent.iter().sum::<u64>() as f64 / n as f64;
        let formula = wire_bytes(Collective::AllReduce, (len * 4) as f64, n);
        prop_assert!((mean - formula).abs() < 1e-6, "{} vs {}", mean, formula);
    }
}

/// A single-worker data-parallel run degenerates to the plain
/// [`matgpt::core::Trainer`] loop, bit-for-bit.
#[test]
fn one_worker_dp_matches_plain_trainer_bitwise() {
    let cfg = cfg(ArchKind::Llama);
    let dp = DataParallel::new(ParallelConfig::replicated(1)).train(docs(), &cfg);
    let plain = pretrain(docs(), &cfg);
    assert_eq!(dp.pretrained.curves.train, plain.curves.train);
    assert_eq!(dp.pretrained.curves.val, plain.curves.val);
    assert_eq!(dp.pretrained.store.flat_values(), plain.store.flat_values());
}

/// ZeRO-1 sharding changes where optimizer state lives, not what the
/// run computes: curves and weights are bit-identical to the
/// replicated run, while each worker's optimizer-state footprint drops
/// to roughly 1/N of the replicated bytes (tensor-aligned shards, so
/// "roughly" means bounded by the largest tensor, and the shards sum
/// to the replicated state plus one 8-byte step counter per extra
/// worker).
#[test]
fn zero1_is_bitwise_equal_and_shards_optimizer_state() {
    let cfg = cfg(ArchKind::NeoX);
    let n = 4;
    let replicated = DataParallel::new(ParallelConfig::replicated(n)).train(docs(), &cfg);
    let sharded = DataParallel::new(ParallelConfig::zero1(n)).train(docs(), &cfg);

    assert_eq!(
        sharded.pretrained.curves.train,
        replicated.pretrained.curves.train
    );
    assert_eq!(
        sharded.pretrained.store.flat_values(),
        replicated.pretrained.store.flat_values()
    );

    // Replicated: every worker holds the full Adam state (8-byte step
    // counter + two f32 moments per parameter scalar).
    let m = replicated.report.param_scalars;
    let full = 8 + m * 2 * 4;
    for &b in &replicated.report.opt_state_bytes {
        assert_eq!(b, full);
    }
    // ZeRO-1: shard footprints match each worker's owned scalars and
    // sum back to the replicated state (modulo per-worker counters).
    for (rank, &b) in sharded.report.opt_state_bytes.iter().enumerate() {
        assert_eq!(b, 8 + sharded.report.shard_scalars[rank] * 2 * 4);
    }
    let total: usize = sharded.report.opt_state_bytes.iter().sum();
    assert_eq!(total, full + (n - 1) * 8);
    // The gate the bench enforces: ≤ 0.35× the replicated footprint at
    // four workers.
    let max_shard = sharded.report.max_opt_state_bytes() as f64;
    assert!(
        max_shard <= 0.35 * full as f64,
        "max shard {} vs replicated {}",
        max_shard,
        full
    );
}

/// Checkpoints written by the data-parallel executor are ordinary v2
/// MGPT images: resuming under DP(4)+ZeRO-1 reproduces the
/// uninterrupted DP run bit-for-bit, and the single-worker
/// [`pretrain_resume`] path accepts the same bytes.
#[test]
fn dp_checkpoints_resume_bitwise_and_interchange_with_trainer() {
    let cfg = cfg(ArchKind::Llama);
    let pcfg = ParallelConfig::zero1(4);
    let full = DataParallel::new(pcfg).train_with_checkpoints(docs(), &cfg, 3);
    let (mid_step, image) = full
        .checkpoints
        .iter()
        .find(|(s, _)| *s == 3)
        .expect("midpoint checkpoint at step 3");
    assert_eq!(*mid_step, 3);

    let resumed = DataParallel::new(pcfg)
        .resume(docs(), &cfg, image)
        .expect("DP resume accepts its own checkpoint");
    assert_eq!(
        resumed.pretrained.curves.train,
        full.pretrained.curves.train
    );
    assert_eq!(resumed.pretrained.curves.val, full.pretrained.curves.val);
    assert_eq!(
        resumed.pretrained.store.flat_values(),
        full.pretrained.store.flat_values()
    );
    assert_eq!(resumed.report.steps_run, cfg.steps - mid_step);

    // The same bytes drive the plain single-worker resume path: the
    // consolidated optimizer state, LR step and data cursor all decode.
    let single = pretrain_resume(docs(), &cfg, image).expect("Trainer resume accepts DP image");
    assert_eq!(single.curves.train.len(), cfg.steps);
    assert!(single.curves.final_val().is_finite());
}
