//! Tier-1 integration tests for the data-parallel training executor:
//! bit-level equivalence of the threaded N-worker run against the
//! sequential deterministic-reduction reference (both architectures,
//! replicated and ZeRO-1), the ring allreduce against a naive oracle
//! (including non-divisible chunkings), ZeRO-1 optimizer-state memory
//! accounting, and checkpoint interchange with the single-worker
//! [`Trainer`] resume path.

use matgpt::core::parallel::{ring_allreduce_sum, DataParallel, ParallelConfig};
use matgpt::core::recipes::{OptChoice, PretrainConfig, SizeRole};
use matgpt::core::{pretrain, pretrain_resume};
use matgpt::corpus::{build_corpus, CorpusConfig};
use matgpt::frontier_sim::collectives::{ring_chunks, wire_bytes, Collective};
use matgpt::model::ArchKind;
use matgpt::tokenizer::TokenizerKind;
use proptest::prelude::*;
use std::sync::OnceLock;

fn docs() -> &'static Vec<String> {
    static DOCS: OnceLock<Vec<String>> = OnceLock::new();
    DOCS.get_or_init(|| {
        build_corpus(&CorpusConfig {
            n_materials: 30,
            total_docs: 90,
            offtopic_fraction: 0.2,
            seed: 23,
        })
        .documents
    })
}

fn cfg(arch: ArchKind) -> PretrainConfig {
    PretrainConfig {
        steps: 6,
        batch_seqs: 4,
        seq: 32,
        ..PretrainConfig::scaled(
            arch,
            TokenizerKind::Hf,
            300,
            OptChoice::Adam,
            SizeRole::Base,
        )
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The threaded N-worker executor is **bit-identical** to the
    /// sequential reference (one replica, micro gradients combined in
    /// the ring's fixed fold order): same train/val curves, same final
    /// weights. Holds for both architectures, for replicated and
    /// ZeRO-1 synchronization, for N ∈ {1, 2, 4}.
    #[test]
    fn threaded_dp_matches_sequential_reference_bitwise(
        arch in prop_oneof![Just(ArchKind::NeoX), Just(ArchKind::Llama)],
        workers in prop_oneof![Just(1usize), Just(2), Just(4)],
        zero1 in prop_oneof![Just(false), Just(true)],
    ) {
        let cfg = cfg(arch);
        let pcfg = if zero1 {
            ParallelConfig::zero1(workers)
        } else {
            ParallelConfig::replicated(workers)
        };
        let dp = DataParallel::new(pcfg).train(docs(), &cfg);
        let reference = DataParallel::train_reference(docs(), &cfg, workers);

        prop_assert_eq!(&dp.pretrained.curves.train, &reference.pretrained.curves.train);
        prop_assert_eq!(&dp.pretrained.curves.val, &reference.pretrained.curves.val);
        prop_assert_eq!(
            dp.pretrained.store.flat_values(),
            reference.pretrained.store.flat_values()
        );
        // The measured mean per-rank gradient traffic lands exactly on
        // the paper's 2(N−1)/N · 4M closed form. ZeRO-1 additionally
        // allgathers one squared norm per tensor for global-norm
        // clipping — an (N−1)/N · 4T term, exact as well.
        let m = dp.report.param_scalars;
        let t = dp.pretrained.store.tensor_sizes().len();
        let mut formula = wire_bytes(Collective::AllReduce, (m * 4) as f64, workers);
        if zero1 {
            formula += wire_bytes(Collective::AllGather, (t * 4) as f64, workers);
        }
        prop_assert_eq!(dp.report.measured_allreduce_bytes_per_step, formula);
    }

    /// The real threaded ring allreduce agrees with a naive oracle sum
    /// on integer-valued floats (where f32 addition is exact), for
    /// rank counts that do and do not divide the buffer length, and
    /// every rank sends exactly the bytes the ring schedule prescribes.
    #[test]
    fn ring_allreduce_matches_naive_oracle(
        len in 1usize..40,
        n in 1usize..6,
        seed in 0u64..1000,
    ) {
        let parts: Vec<Vec<f32>> = (0..n)
            .map(|r| {
                (0..len)
                    .map(|i| (((seed as usize + r * 31 + i * 7) % 17) as f32) - 8.0)
                    .collect()
            })
            .collect();
        let naive: Vec<f32> = (0..len)
            .map(|i| parts.iter().map(|p| p[i]).sum::<f32>())
            .collect();

        let bounds = ring_chunks(len, n);
        let (results, sent) =
            ring_allreduce_sum(parts, &bounds).expect("healthy ring cannot fail");
        for buf in &results {
            prop_assert_eq!(buf, &naive);
        }
        // Per-rank traffic: each rank sends every chunk except one per
        // phase (reduce-scatter + allgather), 4 bytes per scalar.
        for (rank, &bytes) in sent.iter().enumerate() {
            let rs: usize = (0..n)
                .filter(|&c| c != rank)
                .map(|c| bounds[c].len())
                .sum();
            let ag: usize = (0..n)
                .filter(|&c| c != (rank + 1) % n)
                .map(|c| bounds[c].len())
                .sum();
            prop_assert_eq!(bytes, ((rs + ag) * 4) as u64);
        }
        // ... and the mean over ranks is the closed-form wire volume.
        let mean = sent.iter().sum::<u64>() as f64 / n as f64;
        let formula = wire_bytes(Collective::AllReduce, (len * 4) as f64, n);
        prop_assert!((mean - formula).abs() < 1e-6, "{} vs {}", mean, formula);
    }
}

/// A single-worker data-parallel run degenerates to the plain
/// [`matgpt::core::Trainer`] loop, bit-for-bit.
#[test]
fn one_worker_dp_matches_plain_trainer_bitwise() {
    let cfg = cfg(ArchKind::Llama);
    let dp = DataParallel::new(ParallelConfig::replicated(1)).train(docs(), &cfg);
    let plain = pretrain(docs(), &cfg);
    assert_eq!(dp.pretrained.curves.train, plain.curves.train);
    assert_eq!(dp.pretrained.curves.val, plain.curves.val);
    assert_eq!(dp.pretrained.store.flat_values(), plain.store.flat_values());
}

/// ZeRO-1 sharding changes where optimizer state lives, not what the
/// run computes: curves and weights are bit-identical to the
/// replicated run, while each worker's optimizer-state footprint drops
/// to roughly 1/N of the replicated bytes (tensor-aligned shards, so
/// "roughly" means bounded by the largest tensor, and the shards sum
/// to the replicated state plus one 8-byte step counter per extra
/// worker).
#[test]
fn zero1_is_bitwise_equal_and_shards_optimizer_state() {
    let cfg = cfg(ArchKind::NeoX);
    let n = 4;
    let replicated = DataParallel::new(ParallelConfig::replicated(n)).train(docs(), &cfg);
    let sharded = DataParallel::new(ParallelConfig::zero1(n)).train(docs(), &cfg);

    assert_eq!(
        sharded.pretrained.curves.train,
        replicated.pretrained.curves.train
    );
    assert_eq!(
        sharded.pretrained.store.flat_values(),
        replicated.pretrained.store.flat_values()
    );

    // Replicated: every worker holds the full Adam state (8-byte step
    // counter + two f32 moments per parameter scalar).
    let m = replicated.report.param_scalars;
    let full = 8 + m * 2 * 4;
    for &b in &replicated.report.opt_state_bytes {
        assert_eq!(b, full);
    }
    // ZeRO-1: shard footprints match each worker's owned scalars and
    // sum back to the replicated state (modulo per-worker counters).
    for (rank, &b) in sharded.report.opt_state_bytes.iter().enumerate() {
        assert_eq!(b, 8 + sharded.report.shard_scalars[rank] * 2 * 4);
    }
    let total: usize = sharded.report.opt_state_bytes.iter().sum();
    assert_eq!(total, full + (n - 1) * 8);
    // The gate the bench enforces: ≤ 0.35× the replicated footprint at
    // four workers.
    let max_shard = sharded.report.max_opt_state_bytes() as f64;
    assert!(
        max_shard <= 0.35 * full as f64,
        "max shard {} vs replicated {}",
        max_shard,
        full
    );
}

/// Checkpoints written by the data-parallel executor are ordinary v2
/// MGPT images: resuming under DP(4)+ZeRO-1 reproduces the
/// uninterrupted DP run bit-for-bit, and the single-worker
/// [`pretrain_resume`] path accepts the same bytes.
#[test]
fn dp_checkpoints_resume_bitwise_and_interchange_with_trainer() {
    let cfg = cfg(ArchKind::Llama);
    let pcfg = ParallelConfig::zero1(4);
    let full = DataParallel::new(pcfg).train_with_checkpoints(docs(), &cfg, 3);
    let (mid_step, image) = full
        .checkpoints
        .iter()
        .find(|(s, _)| *s == 3)
        .expect("midpoint checkpoint at step 3");
    assert_eq!(*mid_step, 3);

    let resumed = DataParallel::new(pcfg)
        .resume(docs(), &cfg, image)
        .expect("DP resume accepts its own checkpoint");
    assert_eq!(
        resumed.pretrained.curves.train,
        full.pretrained.curves.train
    );
    assert_eq!(resumed.pretrained.curves.val, full.pretrained.curves.val);
    assert_eq!(
        resumed.pretrained.store.flat_values(),
        full.pretrained.store.flat_values()
    );
    assert_eq!(resumed.report.steps_run, cfg.steps - mid_step);

    // The same bytes drive the plain single-worker resume path: the
    // consolidated optimizer state, LR step and data cursor all decode.
    let single = pretrain_resume(docs(), &cfg, image).expect("Trainer resume accepts DP image");
    assert_eq!(single.curves.train.len(), cfg.steps);
    assert!(single.curves.final_val().is_finite());
}

// ---------------------------------------------------------------------------
// Executed dp × tp × pp topologies.
// ---------------------------------------------------------------------------

use matgpt::core::parallel::{
    reference_topology, train_topology, CollectiveError, PipeDir, PipeLink, Topology,
    TopologyError, TopologyOutcome,
};
use matgpt::core::recipes::OptChoice as Opt2;
use matgpt::model::tp::stage_ranges;
use std::time::Duration;

/// Run threaded and sequential-reference topology training and assert
/// they are bit-identical: same train curve, same final validation
/// loss, same consolidated weights. Also asserts every worker's wire
/// bytes hit the ring/link closed forms exactly.
fn assert_topology_matches_reference(arch: ArchKind, topo: Topology) -> TopologyOutcome {
    let cfg = cfg(arch);
    let threaded = train_topology(docs(), &cfg, topo).expect("threaded topology");
    let reference = reference_topology(docs(), &cfg, topo).expect("reference topology");
    assert_eq!(
        threaded.train_curve,
        reference.train_curve,
        "{arch:?} {} train curve",
        topo.describe()
    );
    assert_eq!(
        threaded.final_val.to_bits(),
        reference.final_val.to_bits(),
        "{arch:?} {} final val",
        topo.describe()
    );
    let tb: Vec<u32> = threaded
        .store
        .flat_values()
        .iter()
        .map(|v| v.to_bits())
        .collect();
    let rb: Vec<u32> = reference
        .store
        .flat_values()
        .iter()
        .map(|v| v.to_bits())
        .collect();
    assert_eq!(tb, rb, "{arch:?} {} weights", topo.describe());
    assert!(
        threaded.report.wire_exact(),
        "{arch:?} {} wire audit: {:#?}",
        topo.describe(),
        threaded.report.wire
    );
    threaded
}

/// The degenerate 1×1×1 grid collapses to the plain single-tape,
/// single-store training loop: both topology executors must match
/// `DataParallel::train_reference(1)` bitwise — proof that the TP sync
/// ops and stage plumbing add nothing to the graph when inactive.
#[test]
fn unit_topology_matches_dp_reference_bitwise() {
    for arch in [ArchKind::NeoX, ArchKind::Llama] {
        let cfg = cfg(arch);
        let topo = Topology::new(1, 1, 1);
        let threaded = train_topology(docs(), &cfg, topo).expect("unit grid");
        let sequential = reference_topology(docs(), &cfg, topo).expect("unit grid");
        let dp = DataParallel::train_reference(docs(), &cfg, 1);
        for out in [&threaded, &sequential] {
            assert_eq!(
                out.train_curve, dp.pretrained.curves.train,
                "{arch:?} curve"
            );
            assert_eq!(
                out.store.flat_values(),
                dp.pretrained.store.flat_values(),
                "{arch:?} weights"
            );
            let (_, last_val) = *dp.pretrained.curves.val.last().expect("val curve");
            assert_eq!(out.final_val.to_bits(), last_val.to_bits(), "{arch:?} val");
        }
    }
}

/// TP=2: column/row sharded projections with real ring allreduces at
/// the Megatron f/g sync points match the sequential TP-aware
/// reference bitwise, and TP wire bytes hit the per-rank closed form.
#[test]
fn topology_tp2_matches_reference_bitwise() {
    for arch in [ArchKind::NeoX, ArchKind::Llama] {
        let out = assert_topology_matches_reference(arch, Topology::new(1, 2, 1));
        for w in &out.report.wire {
            assert!(w.tp_bytes > 0, "tp ring must carry traffic");
            assert_eq!(w.pipe_bytes, 0);
            assert_eq!(w.dp_bytes, 0);
        }
    }
}

/// PP=2 under 1F1B: for one chunk, an even chunking, and a
/// non-divisible chunking (4 rows over 3 chunks → 2+1+1), boundary
/// activations/gradients over real p2p links reproduce the sequential
/// reference bitwise.
#[test]
fn topology_pp2_matches_reference_bitwise_any_chunking() {
    for chunks in [1usize, 2, 3] {
        let out = assert_topology_matches_reference(
            ArchKind::Llama,
            Topology::new(1, 1, 2).with_chunks(chunks),
        );
        for w in &out.report.wire {
            assert!(w.pipe_bytes > 0, "pipe links must carry traffic");
            assert!(w.norm_bytes > 0, "grad-norm ring must carry traffic");
        }
    }
}

/// DP×PP composition: gradient rings per (stage, rank) and pipe links
/// per replica compose without breaking bitwise determinism.
#[test]
fn topology_dp2_pp2_matches_reference_bitwise() {
    let out = assert_topology_matches_reference(ArchKind::Llama, Topology::new(2, 1, 2));
    for w in &out.report.wire {
        assert!(w.dp_bytes > 0 && w.pipe_bytes > 0);
    }
}

/// DP×TP composition on the NeoX graph (biases exercised end to end).
#[test]
fn topology_dp2_tp2_matches_reference_bitwise() {
    let out = assert_topology_matches_reference(ArchKind::NeoX, Topology::new(2, 2, 1));
    for w in &out.report.wire {
        assert!(w.dp_bytes > 0 && w.tp_bytes > 0);
    }
}

/// Optional CI matrix entry: `MATGPT_TOPOLOGY=dp,tp,pp[,chunks]` runs
/// that grid through the full bitwise + wire-audit contract.
#[test]
fn topology_matrix_from_env() {
    let Ok(spec) = std::env::var("MATGPT_TOPOLOGY") else {
        return;
    };
    let parts: Vec<usize> = spec
        .split(',')
        .map(|p| p.trim().parse().expect("MATGPT_TOPOLOGY=dp,tp,pp[,chunks]"))
        .collect();
    assert!(parts.len() == 3 || parts.len() == 4, "dp,tp,pp[,chunks]");
    let mut topo = Topology::new(parts[0], parts[1], parts[2]);
    if let Some(&c) = parts.get(3) {
        topo = topo.with_chunks(c);
    }
    assert_topology_matches_reference(ArchKind::Llama, topo);
}

/// Stage splits are first-heavy: 33 layers over 2 stages is 17 + 16,
/// and every split covers the layer range exactly once.
#[test]
fn stage_ranges_are_first_heavy_and_cover() {
    assert_eq!(stage_ranges(33, 2), vec![0..17, 17..33]);
    assert_eq!(stage_ranges(7, 3), vec![0..3, 3..5, 5..7]);
    for layers in 1..=9usize {
        for p in 1..=layers {
            let ranges = stage_ranges(layers, p);
            assert_eq!(ranges.first().expect("stage").start, 0);
            assert_eq!(ranges.last().expect("stage").end, layers);
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start);
                assert!(w[0].len() >= w[1].len(), "first-heavy");
            }
        }
    }
}

/// A lost or silent pipeline neighbour is a typed error within the
/// deadline — never a hang.
#[test]
fn pipe_link_failures_are_typed_not_hangs() {
    // Dropped peer → RankLost.
    let (earlier, mut later) = PipeLink::pair(Duration::from_millis(200));
    drop(earlier);
    match later.recv(0, PipeDir::Forward) {
        Err(CollectiveError::RankLost { .. }) => {}
        other => panic!("expected RankLost, got {other:?}"),
    }
    // Alive but silent peer → Timeout at the deadline.
    let (_earlier, mut later) = PipeLink::pair(Duration::from_millis(50));
    match later.recv(0, PipeDir::Backward) {
        Err(CollectiveError::Timeout { waited_ms, .. }) => assert!(waited_ms >= 50),
        other => panic!("expected Timeout, got {other:?}"),
    }
}

/// Invalid grids are typed plan errors, caught before any thread
/// spawns: LAMB's non-elementwise update × TP, a batch that does not
/// divide across replicas, more chunks than rows, more stages than
/// layers.
#[test]
fn topology_misconfigurations_are_typed_errors() {
    let base = cfg(ArchKind::Llama);
    let lamb = PretrainConfig {
        optimizer: Opt2::Lamb,
        ..base.clone()
    };
    match train_topology(docs(), &lamb, Topology::new(1, 2, 1)) {
        Err(TopologyError::Optimizer { tp: 2 }) => {}
        other => panic!("expected Optimizer error, got {:?}", other.err()),
    }
    match train_topology(docs(), &base, Topology::new(3, 1, 1)) {
        Err(TopologyError::Batch { batch: 4, dp: 3 }) => {}
        other => panic!("expected Batch error, got {:?}", other.err()),
    }
    match train_topology(docs(), &base, Topology::new(1, 1, 2).with_chunks(9)) {
        Err(TopologyError::Chunks { chunks: 9, rows: 4 }) => {}
        other => panic!("expected Chunks error, got {:?}", other.err()),
    }
    match train_topology(docs(), &base, Topology::new(1, 1, 3)) {
        Err(TopologyError::Plan(_)) => {}
        other => panic!("expected Plan error, got {:?}", other.err()),
    }
    match train_topology(docs(), &base, Topology::new(1, 3, 1)) {
        Err(TopologyError::Plan(_)) => {}
        other => panic!("expected Plan error, got {:?}", other.err()),
    }
}
