//! Tier-1 integration tests for the serving subsystem: KV-cache parity
//! with the training-tape forward, scheduler fairness/liveness under
//! admission pressure, and the engine end-to-end against single-request
//! generation.

use matgpt::model::{generate, ArchKind, GptConfig, GptModel, SampleOptions};
use matgpt::serve::{Engine, EngineConfig, EngineError, FinishReason, GenRequest};
use matgpt::tensor::{init, ParamStore, Tape};
use proptest::prelude::*;

fn build(cfg: GptConfig, seed: u64) -> (GptModel, ParamStore) {
    let mut store = ParamStore::new();
    let mut rng = init::rng(seed);
    let model = GptModel::new(cfg, &mut store, &mut rng);
    (model, store)
}

fn arb_cfg() -> impl Strategy<Value = GptConfig> {
    (
        prop_oneof![Just(ArchKind::NeoX), Just(ArchKind::Llama)],
        1usize..=2,  // layers
        1usize..=2,  // kv groups: heads = 2 * groups, kv_heads = groups
        12usize..40, // vocab
    )
        .prop_map(|(arch, layers, groups, vocab)| GptConfig {
            arch,
            vocab_size: vocab,
            hidden: 2 * groups * 8,
            layers,
            heads: 2 * groups,
            kv_heads: if groups > 1 { Some(groups) } else { None },
            max_seq: 16,
            rope_base: 10_000.0,
            norm_eps: 1e-5,
            dropout: 0.0,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The KV-cached incremental path (prefill chunk + one-token decode
    /// steps) reproduces the training-tape full forward to 1e-4, for
    /// both architectures and under grouped-query attention.
    #[test]
    fn cached_incremental_logits_match_full_forward(
        cfg in arb_cfg(),
        seed in 0u64..50,
        t in 3usize..12,
        split in 1usize..8,
    ) {
        let (model, store) = build(cfg.clone(), seed);
        let v = cfg.vocab_size;
        let tokens: Vec<u32> = (0..t as u32).map(|i| (i * 13 + seed as u32) % v as u32).collect();

        // reference: one full tape forward
        let mut tape = Tape::new();
        let logits = model.logits(&mut tape, &store, &tokens, 1, t);
        let full = tape.value(logits).data().to_vec();

        // cached: prefill the first `split` tokens, then decode the rest
        let split = split.min(t - 1);
        let mut cache = model.new_cache();
        let mut rows = model.forward_cached(&store, &tokens[..split], &mut cache);
        for &tok in &tokens[split..] {
            rows.extend_from_slice(&model.forward_cached(&store, &[tok], &mut cache));
        }

        prop_assert_eq!(rows.len(), full.len());
        for (i, (a, b)) in rows.iter().zip(&full).enumerate() {
            prop_assert!(
                (a - b).abs() <= 1e-4,
                "row {} col {}: cached {} vs full {}", i / v, i % v, a, b
            );
        }
    }
}

fn tiny_cfg() -> GptConfig {
    GptConfig {
        vocab_size: 40,
        hidden: 16,
        layers: 1,
        heads: 2,
        max_seq: 64,
        ..GptConfig::tiny(ArchKind::Llama, 40)
    }
}

/// More requests than the admission budget can hold at once: everything
/// still completes (liveness) and head-of-line FIFO order is respected
/// (requests admitted in earlier waves see their first token strictly
/// before later waves).
#[test]
fn scheduler_is_fair_and_live_under_admission_pressure() {
    let (model, store) = build(tiny_cfg(), 3);
    // cost per request = 8 prompt + 16 new = 24 tokens; budget 64 and
    // max_batch 2 both cap the batch at two concurrent requests.
    let engine = Engine::new(
        model,
        store,
        EngineConfig {
            max_batch: 2,
            token_budget: 64,
            ..EngineConfig::default()
        },
    );
    let n = 8;
    let opts = SampleOptions {
        temperature: 0.0,
        top_k: 0,
        max_new_tokens: 16,
        stop_token: None,
    };
    let handles: Vec<_> = (0..n)
        .map(|i| {
            let prompt: Vec<u32> = (0..8u32).map(|t| (t + i) % 40).collect();
            engine.submit(&prompt, opts).expect("admitted")
        })
        .collect();
    let mut responses = Vec::new();
    for h in handles {
        let r = h.wait().expect("scheduler answers every request");
        assert_eq!(r.finish, FinishReason::Length);
        assert_eq!(r.generated, 16);
        responses.push(r);
    }
    // submission order == id order; with equal-cost greedy requests the
    // batch admits pairs FIFO, so each wave's first token lands strictly
    // after every earlier wave's.
    for w in 1..n as usize / 2 {
        let prev_max = responses[2 * w - 2..2 * w]
            .iter()
            .map(|r| r.ttft)
            .max()
            .unwrap();
        let this_min = responses[2 * w..2 * w + 2]
            .iter()
            .map(|r| r.ttft)
            .min()
            .unwrap();
        assert!(
            this_min > prev_max,
            "wave {w} ttft {this_min:?} not after previous wave {prev_max:?}"
        );
    }
    let m = engine.metrics();
    assert_eq!(m.completed, n as u64);
    assert_eq!(m.queue_depth, 0);
    engine.shutdown();
}

/// Eight concurrent mixed-length greedy requests through the engine
/// produce exactly what single-request `generate` produces (separate KV
/// caches mean batch composition cannot leak between requests), and the
/// metrics snapshot is fully populated.
#[test]
fn engine_matches_single_request_generation_under_concurrency() {
    let cfg = tiny_cfg();
    let (model, store) = build(cfg.clone(), 7);
    let opts = SampleOptions {
        temperature: 0.0,
        top_k: 0,
        max_new_tokens: 12,
        stop_token: Some(1),
    };
    let prompts: Vec<Vec<u32>> = (0..8u32)
        .map(|i| (0..4 + 3 * i).map(|t| (t * 5 + i) % 40).collect())
        .collect();
    let expected: Vec<Vec<u32>> = prompts
        .iter()
        .map(|p| generate(&model, &store, p, &opts, &mut init::rng(0)))
        .collect();

    let engine = Engine::new(model, store, EngineConfig::default());
    let handles: Vec<_> = prompts
        .iter()
        .map(|p| engine.submit(p, opts).expect("admitted"))
        .collect();
    for (i, h) in handles.into_iter().enumerate() {
        let r = h.wait().expect("response");
        assert_eq!(
            r.tokens, expected[i],
            "request {i} diverged from solo generate"
        );
        assert_eq!(r.generated, r.tokens.len() - prompts[i].len());
        assert!(r.ttft <= r.total);
        assert!(matches!(
            r.finish,
            FinishReason::Length | FinishReason::Stop
        ));
    }
    let m = engine.metrics();
    assert_eq!(m.completed, 8);
    assert!(m.generated_tokens > 0);
    assert!(m.tokens_per_sec > 0.0, "busy time must be recorded");
    assert_eq!(m.ttft_ms.count, 8);
    assert!(m.token_latency_ms.count > 0);
    assert!(m.to_json().contains("\"completed\":8"));
    engine.shutdown();
}

/// A request whose deadline expires while queued or mid-decode is
/// retired with `DeadlineExceeded` instead of blocking the batch.
#[test]
fn deadlines_and_cancellation_do_not_stall_the_queue() {
    let (model, store) = build(tiny_cfg(), 11);
    let engine = Engine::new(
        model,
        store,
        EngineConfig {
            max_batch: 1,
            token_budget: 4096,
            ..EngineConfig::default()
        },
    );
    let opts = SampleOptions {
        temperature: 0.0,
        top_k: 0,
        max_new_tokens: 8,
        stop_token: None,
    };
    // a doomed request with a zero deadline, then a normal one behind it
    let mut doomed = GenRequest::new(vec![2, 3, 4]);
    doomed.opts = SampleOptions {
        max_new_tokens: 100_000,
        ..opts
    };
    doomed.deadline = Some(std::time::Duration::ZERO);
    let h_doomed = engine.submit_request(doomed).expect("admitted");
    let h_ok = engine.submit(&[5, 6], opts).expect("admitted");
    assert_eq!(
        h_doomed.wait().expect("doomed answered").finish,
        FinishReason::DeadlineExceeded
    );
    let ok = h_ok.wait().expect("queued request survives");
    assert_eq!(ok.finish, FinishReason::Length);
    assert_eq!(ok.generated, 8);
    engine.shutdown();
}

/// The panic-free contract end to end: a request whose forward panics
/// (out-of-vocab token) retires alone with `Failed`, bounded-queue
/// backpressure rejects with `QueueFull` instead of queueing without
/// limit, empty prompts are typed errors, and after a graceful shutdown
/// submission reports `ShutDown` — no path panics the caller.
#[test]
fn engine_is_panic_free_under_faults_overload_and_shutdown() {
    let (model, store) = build(tiny_cfg(), 13);
    let engine = Engine::new(
        model,
        store,
        EngineConfig {
            max_queue: 3,
            ..EngineConfig::default()
        },
    );
    let opts = SampleOptions {
        temperature: 0.0,
        top_k: 0,
        max_new_tokens: 6,
        stop_token: None,
    };

    assert_eq!(
        engine.submit(&[], opts).err(),
        Some(EngineError::EmptyPrompt)
    );

    // token 9999 is far out of vocab (40): prefill panics, isolation
    // turns it into a Failed response while the healthy request and the
    // engine itself keep going
    let bad = engine.submit(&[9999], opts).expect("admitted");
    let good = engine.submit(&[1, 2, 3], opts).expect("admitted");
    assert_eq!(bad.wait().expect("answered").finish, FinishReason::Failed);
    let ok = good.wait().expect("answered");
    assert_eq!(ok.finish, FinishReason::Length);
    assert_eq!(ok.generated, 6);
    assert_eq!(engine.metrics().failed, 1);

    // overload a 3-deep queue: at least one burst submission bounces
    let mut handles = Vec::new();
    let mut saw_queue_full = false;
    for i in 0..64u32 {
        match engine.submit(&[1 + i % 8], opts) {
            Ok(h) => handles.push(h),
            Err(EngineError::QueueFull { capacity }) => {
                assert_eq!(capacity, 3);
                saw_queue_full = true;
            }
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }
    assert!(saw_queue_full, "64-burst must trip a 3-deep queue");
    for h in handles {
        assert_eq!(h.wait().expect("drained").finish, FinishReason::Length);
    }
    assert_eq!(engine.metrics().backlog, 0, "all slots released");

    engine.shutdown();
    assert_eq!(engine.submit(&[1], opts).err(), Some(EngineError::ShutDown));
}
