//! Integration tests for the model-level extension features: checkpoint
//! round-trips through a full GPT, grouped-query attention end-to-end,
//! and precision-emulated training.

use matgpt::core::{pretrain, OptChoice, PretrainConfig, SizeRole};
use matgpt::corpus::{build_corpus, CorpusConfig};
use matgpt::model::{ArchKind, GptConfig, GptModel};
use matgpt::tensor::{checkpoint, init, ParamStore, Precision, Tape};
use matgpt::tokenizer::TokenizerKind;

fn docs() -> Vec<String> {
    build_corpus(&CorpusConfig {
        n_materials: 50,
        total_docs: 150,
        offtopic_fraction: 0.2,
        seed: 71,
    })
    .documents
}

#[test]
fn checkpoint_roundtrip_through_trained_gpt() {
    let documents = docs();
    let mut cfg = PretrainConfig::scaled(
        ArchKind::Llama,
        TokenizerKind::Hf,
        400,
        OptChoice::Adam,
        SizeRole::Base,
    );
    cfg.steps = 20;
    let trained = pretrain(&documents, &cfg);

    let bytes = checkpoint::save(&trained.store);
    let loaded = checkpoint::load(&bytes).expect("decode");
    let mut fresh_store = ParamStore::new();
    let fresh = GptModel::new(
        trained.model.cfg.clone(),
        &mut fresh_store,
        &mut init::rng(12345),
    );
    let restored = checkpoint::restore_into(&mut fresh_store, &loaded);
    assert_eq!(restored, fresh_store.len(), "every tensor restored");

    // identical logits on a probe
    let probe: Vec<u32> = (4..12).collect();
    let logits = |model: &GptModel, store: &ParamStore| {
        let mut tape = Tape::new();
        let l = model.logits(&mut tape, store, &probe, 1, probe.len());
        tape.value(l).data().to_vec()
    };
    assert_eq!(
        logits(&trained.model, &trained.store),
        logits(&fresh, &fresh_store)
    );
}

#[test]
fn gqa_trains_comparably_to_mha() {
    let documents = docs();
    let tok = matgpt::core::train_tokenizer(TokenizerKind::Hf, 400, &documents);
    let vocab = tok.vocab_size();
    let mut results = Vec::new();
    for kv in [None, Some(2)] {
        let cfg = GptConfig {
            kv_heads: kv,
            ..GptConfig::tiny(ArchKind::Llama, vocab)
        };
        let mut store = ParamStore::new();
        let model = GptModel::new(cfg, &mut store, &mut init::rng(5));
        let mut ds = matgpt::corpus::TokenDataset::new(&documents, &*tok, 0.1, 5);
        let mut opt = matgpt::optim::Adam::new(matgpt::optim::AdamConfig::paper_adam());
        use matgpt::optim::Optimizer;
        let mut last = f32::NAN;
        for _ in 0..40 {
            let b = ds.sample_batch(4, 32);
            store.zero_grads();
            let mut tape = Tape::new();
            let loss = model.loss(&mut tape, &store, &b.inputs, &b.targets, b.batch, b.seq);
            last = tape.value(loss).item();
            tape.backward(loss);
            tape.accumulate_param_grads(&mut store);
            store.clip_grad_norm(1.0);
            opt.step(&mut store, 3e-3);
        }
        results.push(last);
    }
    let (mha, gqa) = (results[0], results[1]);
    assert!(gqa.is_finite() && mha.is_finite());
    assert!(
        (gqa / mha - 1.0).abs() < 0.25,
        "GQA {gqa} should track MHA {mha}"
    );
}

#[test]
fn precision_emulated_training_stays_close_to_f32() {
    let documents = docs();
    let mut base = PretrainConfig::scaled(
        ArchKind::Llama,
        TokenizerKind::Hf,
        400,
        OptChoice::Adam,
        SizeRole::Base,
    );
    base.steps = 30;
    let mut finals = Vec::new();
    for precision in [Precision::F32, Precision::Bf16, Precision::F16] {
        let mut cfg = base.clone();
        cfg.precision = precision;
        finals.push(pretrain(&documents, &cfg).curves.final_train());
    }
    let f32v = finals[0];
    for (i, name) in ["bf16", "f16"].iter().enumerate() {
        let v = finals[i + 1];
        assert!(
            (v / f32v - 1.0).abs() < 0.1,
            "{name} {v} should track f32 {f32v}"
        );
    }
}
