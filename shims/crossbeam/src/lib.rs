#![warn(missing_docs)]

//! Offline shim for `crossbeam`: the `channel` module subset this
//! workspace uses.
//!
//! Unlike `std::sync::mpsc`, crossbeam channels are multi-producer
//! *multi-consumer* and their `Receiver` is `Clone + Sync`; the serving
//! engine relies on that, so the shim implements channels directly over
//! a mutex-guarded deque with condition variables rather than wrapping
//! `std::sync::mpsc`.

/// Multi-producer multi-consumer FIFO channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        readable: Condvar,
        writable: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    /// Sending half of a channel.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// Receiving half of a channel.
    pub struct Receiver<T>(Arc<Shared<T>>);

    /// The channel is closed (no receivers); returns the rejected value.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Why a `try_recv` returned nothing.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message waiting right now.
        Empty,
        /// All senders dropped and the queue is drained.
        Disconnected,
    }

    /// Why a `recv` returned nothing.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Why a `recv_timeout` returned nothing.
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The deadline passed with no message.
        Timeout,
        /// All senders dropped and the queue is drained.
        Disconnected,
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Create a bounded channel; `send` blocks when `cap` items queue up.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap))
    }

    fn with_capacity<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                cap,
                senders: 1,
                receivers: 1,
            }),
            readable: Condvar::new(),
            writable: Condvar::new(),
        });
        (Sender(Arc::clone(&shared)), Receiver(shared))
    }

    impl<T> Sender<T> {
        /// Enqueue a value, blocking while a bounded channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.0.queue.lock().unwrap();
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                match state.cap {
                    Some(cap) if state.items.len() >= cap => {
                        state = self.0.writable.wait(state).unwrap();
                    }
                    _ => break,
                }
            }
            state.items.push_back(value);
            drop(state);
            self.0.readable.notify_one();
            Ok(())
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.0.queue.lock().unwrap().items.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue, blocking until a message arrives or all senders leave.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.0.queue.lock().unwrap();
            loop {
                if let Some(item) = state.items.pop_front() {
                    drop(state);
                    self.0.writable.notify_one();
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.0.readable.wait(state).unwrap();
            }
        }

        /// Dequeue without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.0.queue.lock().unwrap();
            if let Some(item) = state.items.pop_front() {
                drop(state);
                self.0.writable.notify_one();
                return Ok(item);
            }
            if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Dequeue, blocking at most `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.recv_deadline(Instant::now() + timeout)
        }

        /// Dequeue, blocking until `deadline` at the latest.
        pub fn recv_deadline(&self, deadline: Instant) -> Result<T, RecvTimeoutError> {
            let mut state = self.0.queue.lock().unwrap();
            loop {
                if let Some(item) = state.items.pop_front() {
                    drop(state);
                    self.0.writable.notify_one();
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (s, timed_out) = self.0.readable.wait_timeout(state, deadline - now).unwrap();
                state = s;
                if timed_out.timed_out() && state.items.is_empty() {
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Blocking iterator that ends when all senders disconnect.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            std::iter::from_fn(move || self.recv().ok())
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.0.queue.lock().unwrap().items.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.queue.lock().unwrap().senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.queue.lock().unwrap().receivers += 1;
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.0.queue.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.0.readable.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.0.queue.lock().unwrap();
            state.receivers -= 1;
            if state.receivers == 0 {
                drop(state);
                self.0.writable.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::time::Duration;

        #[test]
        fn fifo_order_and_disconnect() {
            let (tx, rx) = unbounded();
            for i in 0..5 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let got: Vec<i32> = rx.iter().collect();
            assert_eq!(got, vec![0, 1, 2, 3, 4]);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn recv_timeout_times_out_then_delivers() {
            let (tx, rx) = unbounded::<u32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            let handle = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                tx.send(7).unwrap();
            });
            assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(7));
            handle.join().unwrap();
        }

        #[test]
        fn multi_consumer_drains_everything_once() {
            let (tx, rx) = unbounded();
            let n = 1000;
            for i in 0..n {
                tx.send(i).unwrap();
            }
            drop(tx);
            let rx2 = rx.clone();
            let h = std::thread::spawn(move || rx2.iter().count());
            let a = rx.iter().count();
            let b = h.join().unwrap();
            assert_eq!(a + b, n);
        }
    }
}
