//! A small persistent thread pool with scoped execution.
//!
//! Workers are spawned once (one per logical CPU) and pull boxed jobs
//! from a shared injector queue. [`scope_run`] submits a batch of
//! borrowed closures and blocks until all of them finish, which is what
//! makes the lifetime erasure below sound: no job can outlive the call
//! that borrowed its environment.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Pool {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    workers: usize,
}

static POOL: OnceLock<Arc<Pool>> = OnceLock::new();

thread_local! {
    /// Set inside pool workers so nested parallel calls degrade to
    /// sequential execution instead of deadlocking on a saturated pool.
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn pool() -> &'static Arc<Pool> {
    POOL.get_or_init(|| {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let pool = Arc::new(Pool {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            workers,
        });
        for i in 0..workers {
            let pool = Arc::clone(&pool);
            std::thread::Builder::new()
                .name(format!("matgpt-pool-{i}"))
                .spawn(move || {
                    IN_WORKER.with(|w| w.set(true));
                    loop {
                        let job = {
                            let mut queue = pool.queue.lock().unwrap();
                            loop {
                                if let Some(job) = queue.pop_front() {
                                    break job;
                                }
                                queue = pool.available.wait(queue).unwrap();
                            }
                        };
                        job();
                    }
                })
                .expect("spawn pool worker");
        }
        pool
    })
}

/// Number of worker threads in the global pool.
pub fn current_num_threads() -> usize {
    pool().workers
}

/// True when called from inside a pool worker.
pub(crate) fn on_worker_thread() -> bool {
    IN_WORKER.with(|w| w.get())
}

struct Latch {
    remaining: AtomicUsize,
    mutex: Mutex<()>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

/// Run a batch of scoped tasks on the pool and wait for all of them.
///
/// Runs everything inline when called from a worker thread (nested
/// parallelism) or when there is nothing to parallelise over.
pub(crate) fn scope_run(tasks: Vec<Box<dyn FnOnce() + Send + '_>>) {
    if tasks.len() <= 1 || on_worker_thread() || pool().workers <= 1 {
        for task in tasks {
            task();
        }
        return;
    }
    let latch = Arc::new(Latch {
        remaining: AtomicUsize::new(tasks.len()),
        mutex: Mutex::new(()),
        done: Condvar::new(),
        panic: Mutex::new(None),
    });
    {
        let mut queue = pool().queue.lock().unwrap();
        for task in tasks {
            // SAFETY: lifetime erasure to 'static. The borrowed
            // environment of `task` outlives this function call, and this
            // function does not return until the latch records that every
            // submitted job has run to completion, so no job can observe
            // its environment after the borrow ends. Panics in jobs abort
            // via the worker thread (no unwind crosses this boundary with
            // the environment still borrowed: the latch is decremented in
            // a drop guard below).
            let task: Box<dyn FnOnce() + Send + 'static> =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Job>(task) };
            let latch = Arc::clone(&latch);
            queue.push_back(Box::new(move || {
                struct Guard(Arc<Latch>);
                impl Drop for Guard {
                    fn drop(&mut self) {
                        if self.0.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                            let _lock = self.0.mutex.lock().unwrap();
                            self.0.done.notify_all();
                        }
                    }
                }
                let _guard = Guard(latch.clone());
                if let Err(payload) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(task)) {
                    latch.panic.lock().unwrap().get_or_insert(payload);
                }
            }));
        }
        pool().available.notify_all();
    }
    let mut lock = latch.mutex.lock().unwrap();
    while latch.remaining.load(Ordering::Acquire) > 0 {
        lock = latch.done.wait(lock).unwrap();
    }
    drop(lock);
    // Re-raise the first panic from any job in the caller, as rayon does.
    let payload = latch.panic.lock().unwrap().take();
    if let Some(payload) = payload {
        std::panic::resume_unwind(payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_runs_all_tasks_and_blocks_until_done() {
        let mut results = vec![0u64; 64];
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = results
            .iter_mut()
            .enumerate()
            .map(|(i, slot)| {
                let task: Box<dyn FnOnce() + Send + '_> = Box::new(move || *slot = (i as u64) * 3);
                task
            })
            .collect();
        scope_run(tasks);
        for (i, v) in results.iter().enumerate() {
            assert_eq!(*v, (i as u64) * 3);
        }
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        let mut outer = [0u64; 8];
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = outer
            .iter_mut()
            .map(|slot| {
                let task: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                    let mut inner = [0u64; 8];
                    let inner_tasks: Vec<Box<dyn FnOnce() + Send + '_>> = inner
                        .iter_mut()
                        .map(|s| {
                            let t: Box<dyn FnOnce() + Send + '_> = Box::new(move || *s = 1);
                            t
                        })
                        .collect();
                    scope_run(inner_tasks);
                    *slot = inner.iter().sum();
                });
                task
            })
            .collect();
        scope_run(tasks);
        assert!(outer.iter().all(|&v| v == 8));
    }
}
