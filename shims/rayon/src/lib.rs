#![warn(missing_docs)]

//! Offline shim for `rayon`: the parallel-iterator subset this
//! workspace uses, executed on a persistent thread pool (one worker per
//! logical CPU, lazily started).
//!
//! Supported pipeline shapes: `par_chunks(_mut)`, `par_iter(_mut)`,
//! `into_par_iter` on vectors/slices/ranges, then `zip` / `enumerate` /
//! `map` / `for_each` / `collect` / numeric `sum`. Items are
//! materialised eagerly (they are cheap references or indices in every
//! call site), while `map`/`for_each` closures run on the pool, so the
//! compute-heavy part genuinely executes in parallel. Nested parallel
//! calls from inside a worker run inline, which keeps the pool
//! deadlock-free.

mod pool;

pub use pool::current_num_threads;

/// Parallel-iterator traits and slice extensions, mirroring
/// `rayon::prelude`.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator,
        ParallelIterator, ParallelSlice, ParallelSliceMut,
    };
}

use pool::scope_run;

/// A materialised parallel iterator over `T` items.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// Conversion into a [`ParIter`] (mirrors `rayon::IntoParallelIterator`).
pub trait IntoParallelIterator {
    /// Item type produced.
    type Item: Send;
    /// Convert into the concrete parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<T: Send> IntoParallelIterator for ParIter<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        self
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// `.par_iter()` on shared collections.
pub trait IntoParallelRefIterator<'a> {
    /// Item type produced (a shared reference).
    type Item: Send;
    /// Borrowing parallel iterator.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// `.par_iter_mut()` on exclusive collections.
pub trait IntoParallelRefMutIterator<'a> {
    /// Item type produced (an exclusive reference).
    type Item: Send;
    /// Borrowing parallel iterator.
    fn par_iter_mut(&'a mut self) -> ParIter<Self::Item>;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = &'a mut T;
    fn par_iter_mut(&'a mut self) -> ParIter<&'a mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = &'a mut T;
    fn par_iter_mut(&'a mut self) -> ParIter<&'a mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }
}

/// `.par_chunks()` over slices.
pub trait ParallelSlice<T: Sync> {
    /// Split into `size`-sized shared chunks, processed in parallel.
    fn par_chunks(&self, size: usize) -> ParIter<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, size: usize) -> ParIter<&[T]> {
        ParIter {
            items: self.chunks(size).collect(),
        }
    }
}

/// `.par_chunks_mut()` over slices.
pub trait ParallelSliceMut<T: Send> {
    /// Split into `size`-sized exclusive chunks, processed in parallel.
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<&mut [T]> {
        ParIter {
            items: self.chunks_mut(size).collect(),
        }
    }
}

impl<T: Send> ParIter<T> {
    /// Pair up with another parallel iterator (shorter side wins).
    pub fn zip<U: Send, I: IntoParallelIterator<Item = U>>(self, other: I) -> ParIter<(T, U)> {
        ParIter {
            items: self
                .items
                .into_iter()
                .zip(other.into_par_iter().items)
                .collect(),
        }
    }

    /// Attach each item's index.
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }
}

/// Consuming operations that actually run on the pool (mirrors the used
/// part of `rayon::ParallelIterator`).
pub trait ParallelIterator: IntoParallelIterator + Sized {
    /// Apply `f` to every item in parallel.
    fn for_each<F: Fn(Self::Item) + Sync + Send>(self, f: F) {
        let items = self.into_par_iter().items;
        run_parallel(items, &f);
    }

    /// Parallel map; results keep item order.
    fn map<U: Send, F: Fn(Self::Item) -> U + Sync + Send>(self, f: F) -> ParIter<U> {
        let items = self.into_par_iter().items;
        let n = items.len();
        let mut out: Vec<Option<U>> = Vec::with_capacity(n);
        out.resize_with(n, || None);
        {
            let slots: Vec<(&mut Option<U>, Self::Item)> = out.iter_mut().zip(items).collect();
            let f = &f;
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = chunk_tasks(slots)
                .into_iter()
                .map(|group| {
                    let task: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                        for (slot, item) in group {
                            *slot = Some(f(item));
                        }
                    });
                    task
                })
                .collect();
            scope_run(tasks);
        }
        ParIter {
            items: out
                .into_iter()
                .map(|v| v.expect("map slot filled"))
                .collect(),
        }
    }

    /// Collect into a `Vec`, preserving order.
    fn collect_vec(self) -> Vec<Self::Item> {
        self.into_par_iter().items
    }

    /// Parallel sum.
    fn sum<S: std::iter::Sum<Self::Item> + Send>(self) -> S
    where
        Self::Item: Send,
    {
        self.into_par_iter().items.into_iter().sum()
    }
}

// Only the concrete iterator type implements the consuming trait.
// A blanket impl over `IntoParallelIterator` would attach `.map` to
// `Range`/`Vec` themselves and clash with `Iterator::map` at every
// call site that has the prelude in scope (upstream rayon has the
// same split for the same reason).
impl<T: Send> ParallelIterator for ParIter<T> {}

/// Split `items` into one task per pool worker and run `f` over them.
fn run_parallel<T: Send, F: Fn(T) + Sync>(items: Vec<T>, f: &F) {
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = chunk_tasks(items)
        .into_iter()
        .map(|group| {
            let task: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                for item in group {
                    f(item);
                }
            });
            task
        })
        .collect();
    scope_run(tasks);
}

/// Partition items into roughly even contiguous groups, one per worker.
fn chunk_tasks<T>(items: Vec<T>) -> Vec<Vec<T>> {
    let workers = current_num_threads().max(1);
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let per = n.div_ceil(workers);
    let mut groups = Vec::with_capacity(workers);
    let mut iter = items.into_iter();
    loop {
        let group: Vec<T> = iter.by_ref().take(per).collect();
        if group.is_empty() {
            break;
        }
        groups.push(group);
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_chunks_mut_zip_enumerate_for_each() {
        let mut out = vec![0i64; 12];
        let mut aux = vec![0i64; 6];
        out.par_chunks_mut(4)
            .zip(aux.par_chunks_mut(2))
            .enumerate()
            .for_each(|(i, (o, a))| {
                for v in o.iter_mut() {
                    *v = i as i64;
                }
                for v in a.iter_mut() {
                    *v = -(i as i64);
                }
            });
        assert_eq!(out, vec![0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2]);
        assert_eq!(aux, vec![0, 0, -1, -1, -2, -2]);
    }

    #[test]
    fn map_preserves_order() {
        let squares = (0..100usize).into_par_iter().map(|i| i * i).collect_vec();
        assert_eq!(squares, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_mut_applies_everywhere() {
        let mut data = vec![1u32; 1000];
        data.par_iter_mut().for_each(|v| *v += 1);
        assert!(data.iter().all(|&v| v == 2));
    }
}
