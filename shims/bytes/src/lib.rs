#![warn(missing_docs)]

//! Offline shim for `bytes`: [`Bytes`], [`BytesMut`], and the
//! little-endian [`Buf`]/[`BufMut`] accessors the checkpoint codec
//! uses, backed by plain `Vec<u8>`/`&[u8]`. No reference-counted
//! zero-copy splitting — nothing in this workspace shares buffers.

use std::sync::Arc;

/// An immutable, cheaply clonable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes(Arc<Vec<u8>>);

impl Bytes {
    /// Create an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::new(data.to_vec()))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Copy out into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.as_ref().clone()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::new(v))
    }
}

/// A growable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Create an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(Arc::new(self.0))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Write-side accessors (little-endian subset).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read-side accessors (little-endian subset). Panics on underflow,
/// like the real crate — guard with [`Buf::remaining`].
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Skip `n` bytes.
    fn advance(&mut self, n: usize);

    /// Copy `dst.len()` bytes out and advance.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Read a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        f32::from_le_bytes(b)
    }

    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_les() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u32_le(7);
        buf.put_u64_le(u64::MAX - 3);
        buf.put_f32_le(1.5);
        buf.put_slice(b"xyz");
        let frozen = buf.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u32_le(), 7);
        assert_eq!(r.get_u64_le(), u64::MAX - 3);
        assert_eq!(r.get_f32_le(), 1.5);
        let mut tail = [0u8; 3];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert_eq!(r.remaining(), 0);
    }
}
