#![warn(missing_docs)]

//! Offline shim for `rand_chacha`: ChaCha-family RNGs over the shim
//! `rand` traits.
//!
//! The core is a faithful ChaCha block function (Bernstein's quarter
//! round, configurable round count) with upstream's state layout:
//! "expand 32-byte k" constants, little-endian key words, a 64-bit
//! block counter in words 12/13 and a zero stream id in words 14/15.
//! Words are served sequentially from each block, so together with the
//! shim `rand` traits (low-word-first `next_u64`, PCG32
//! `seed_from_u64`) seeded output streams are bit-compatible with
//! upstream `rand_chacha` 0.3 on the paths this workspace uses.

use rand::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;

/// A ChaCha RNG with `R` double-rounds worth of mixing (`R = 8` gives
/// ChaCha8 and so on).
#[derive(Clone, Debug)]
pub struct ChaChaRng<const R: usize> {
    key: [u32; 8],
    counter: u64,
    buf: [u32; BLOCK_WORDS],
    /// Next unread word in `buf`; `BLOCK_WORDS` means exhausted.
    idx: usize,
}

/// ChaCha with 8 rounds — the workspace's standard seeded RNG.
pub type ChaCha8Rng = ChaChaRng<8>;
/// ChaCha with 12 rounds.
pub type ChaCha12Rng = ChaChaRng<12>;
/// ChaCha with 20 rounds (the original cipher strength).
pub type ChaCha20Rng = ChaChaRng<20>;

#[inline(always)]
fn quarter_round(state: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl<const R: usize> ChaChaRng<R> {
    /// Number of 32-bit words produced so far — the stream cursor, as
    /// upstream's `get_word_pos`. Together with the seed this fully
    /// determines the remaining output, so it is what checkpoints store
    /// to make an RNG resumable.
    pub fn get_word_pos(&self) -> u128 {
        // `counter` points at the *next* block; the buffer holds block
        // `counter - 1` with `idx` words already served. A fresh RNG has
        // counter 0 and idx == BLOCK_WORDS, which also yields 0 here.
        (self.counter as u128) * BLOCK_WORDS as u128 + self.idx as u128 - BLOCK_WORDS as u128
    }

    /// Seek the stream to an absolute word position (upstream's
    /// `set_word_pos`). Only positions on the same keyed stream make
    /// sense: seed identically, then seek.
    pub fn set_word_pos(&mut self, pos: u128) {
        self.counter = (pos / BLOCK_WORDS as u128) as u64;
        self.idx = BLOCK_WORDS; // force refill on next draw
        let within = (pos % BLOCK_WORDS as u128) as usize;
        if within != 0 {
            self.refill(); // regenerates the block and bumps counter
            self.idx = within;
        }
    }

    fn refill(&mut self) {
        // "expand 32-byte k" constants
        let mut state: [u32; BLOCK_WORDS] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let initial = state;
        for _ in 0..R / 2 {
            // column round
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // diagonal round
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, init) in state.iter_mut().zip(initial) {
            *word = word.wrapping_add(init);
        }
        self.buf = state;
        self.idx = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl<const R: usize> RngCore for ChaChaRng<R> {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= BLOCK_WORDS {
            self.refill();
        }
        let word = self.buf[self.idx];
        self.idx += 1;
        word
    }
}

impl<const R: usize> SeedableRng for ChaChaRng<R> {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        Self {
            key,
            counter: 0,
            buf: [0; BLOCK_WORDS],
            idx: BLOCK_WORDS,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed_and_distinct_across_seeds() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let va: Vec<u32> = (0..64).map(|_| a.next_u32()).collect();
        let vb: Vec<u32> = (0..64).map(|_| b.next_u32()).collect();
        let vc: Vec<u32> = (0..64).map(|_| c.next_u32()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn floats_look_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..10 {
            rng.next_u32();
        }
        let mut fork = rng.clone();
        assert_eq!(rng.next_u32(), fork.next_u32());
    }

    #[test]
    fn word_pos_roundtrip_resumes_the_stream() {
        // every offset within and across block boundaries
        for consumed in [0usize, 1, 7, 15, 16, 17, 31, 32, 100] {
            let mut rng = ChaCha8Rng::seed_from_u64(99);
            for _ in 0..consumed {
                rng.next_u32();
            }
            assert_eq!(rng.get_word_pos(), consumed as u128);
            let mut fresh = ChaCha8Rng::seed_from_u64(99);
            fresh.set_word_pos(consumed as u128);
            let a: Vec<u32> = (0..40).map(|_| rng.next_u32()).collect();
            let b: Vec<u32> = (0..40).map(|_| fresh.next_u32()).collect();
            assert_eq!(a, b, "diverged after {consumed} words");
        }
    }
}
