#![warn(missing_docs)]

//! Offline shim for the `rand` crate (0.8 API subset).
//!
//! This workspace builds in an air-gapped container with no crates.io
//! access, so the external crates it depends on are provided as local
//! "shim" crates. Each shim implements exactly the API surface the
//! workspace uses — here that is [`Rng`] (`gen`, `gen_range`,
//! `gen_bool`) and [`SeedableRng`] (`seed_from_u64`, `from_seed`).
//!
//! The sampling algorithms are implemented to be **bit-compatible with
//! upstream rand 0.8** for the paths this workspace exercises:
//! `seed_from_u64` uses rand_core's PCG32 expansion, `next_u64` is
//! low-word-first, integer ranges use the widening-multiply rejection
//! sampler, float ranges use the `[1, 2)` mantissa trick, and
//! `gen_bool` uses the Bernoulli fixed-point comparison. Combined with
//! the faithful ChaCha core in the `rand_chacha` shim, seeded streams
//! reproduce the values the seed repository's tests were tuned
//! against.

/// A source of random bits.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 random bits. Low word first, like rand_core's block RNGs.
    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        (hi << 32) | lo
    }

    /// Fill `dest` with random bytes (little-endian words, whole words
    /// consumed, matching rand_core's `fill_bytes_via_next`).
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be produced uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value from the standard distribution for this type.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision (rand's
    /// multiply-based conversion).
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    /// Sign test on a `u32`, as upstream does.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() as i32) < 0
    }
}

macro_rules! impl_standard_int32 {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u32() as $t
            }
        }
    )*};
}
impl_standard_int32!(u8, u16, u32, i8, i16, i32);

macro_rules! impl_standard_int64 {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int64!(u64, i64, usize, isize);

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

// Upstream's `sample_single_inclusive`: widening multiply with a
// rejection zone. `$unsigned` is the same-width unsigned type and
// `$large` the working width (u32 for sub-32-bit types).
macro_rules! impl_range_int {
    ($($t:ty, $unsigned:ty, $large:ty);* $(;)?) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                sample_inclusive_from(self.start, self.end - 1, rng)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                sample_inclusive_from(lo, hi, rng)
            }
        }
        impl SampleUniformInt for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(
                low: $t,
                high: $t,
                rng: &mut R,
            ) -> $t {
                let range = high.wrapping_sub(low).wrapping_add(1)
                    as $unsigned as $large;
                if range == 0 {
                    // Full integer width: every value accepted.
                    return <$t as Standard>::sample_standard(rng);
                }
                let zone = if (<$unsigned>::MAX as u128) <= u16::MAX as u128 {
                    // Small types use the exact modulus, as upstream.
                    let ints_to_reject =
                        (<$large>::MAX - range + 1) % range;
                    <$large>::MAX - ints_to_reject
                } else {
                    (range << range.leading_zeros()).wrapping_sub(1)
                };
                loop {
                    let v = <$large as Standard>::sample_standard(rng);
                    let (hi, lo) = wmul(v, range);
                    if lo <= zone {
                        return low.wrapping_add(hi as $t);
                    }
                }
            }
        }
    )*};
}

/// Widening multiply helper mirroring upstream's `WideningMultiply`.
trait WideMul: Copy {
    /// `(high, low)` halves of the double-width product.
    fn wmul_parts(self, rhs: Self) -> (Self, Self);
}

impl WideMul for u32 {
    fn wmul_parts(self, rhs: Self) -> (Self, Self) {
        let p = u64::from(self) * u64::from(rhs);
        ((p >> 32) as u32, p as u32)
    }
}

impl WideMul for u64 {
    fn wmul_parts(self, rhs: Self) -> (Self, Self) {
        let p = u128::from(self) * u128::from(rhs);
        ((p >> 64) as u64, p as u64)
    }
}

impl WideMul for usize {
    fn wmul_parts(self, rhs: Self) -> (Self, Self) {
        let (hi, lo) = (self as u64).wmul_parts(rhs as u64);
        (hi as usize, lo as usize)
    }
}

fn wmul<T: WideMul>(a: T, b: T) -> (T, T) {
    a.wmul_parts(b)
}

/// Per-type inclusive uniform sampler (the `$large`-width machinery).
trait SampleUniformInt: Sized {
    /// Uniform draw from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

fn sample_inclusive_from<T: SampleUniformInt, R: RngCore + ?Sized>(
    low: T,
    high: T,
    rng: &mut R,
) -> T {
    T::sample_inclusive(low, high, rng)
}

impl_range_int! {
    u8, u8, u32;
    u16, u16, u32;
    u32, u32, u32;
    u64, u64, u64;
    usize, usize, usize;
    i8, u8, u32;
    i16, u16, u32;
    i32, u32, u32;
    i64, u64, u64;
    isize, usize, usize;
}

macro_rules! impl_range_float {
    ($($t:ty, $bits:ty, $discard:expr, $one_bits:expr);* $(;)?) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let scale = self.end - self.start;
                loop {
                    // Random mantissa onto the [1, 2) window, then an
                    // FMA-shaped rescale — upstream's exact recipe.
                    let value1_2 = <$t>::from_bits(
                        (<$bits as Standard>::sample_standard(rng) >> $discard)
                            | $one_bits,
                    );
                    let value0_1 = value1_2 - 1.0;
                    let res = value0_1 * scale + self.start;
                    if res < self.end {
                        return res;
                    }
                }
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let scale = (hi - lo) / (1.0 - <$t>::EPSILON / 2.0);
                let value1_2 = <$t>::from_bits(
                    (<$bits as Standard>::sample_standard(rng) >> $discard)
                        | $one_bits,
                );
                let value0_1 = value1_2 - 1.0;
                let res = value0_1 * scale + lo;
                if res > hi { hi } else { res }
            }
        }
    )*};
}
impl_range_float! {
    f32, u32, 9u32, 0x3f80_0000u32;
    f64, u64, 12u64, 0x3ff0_0000_0000_0000u64;
}

/// The user-facing random-value interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample a value from its standard distribution (`[0, 1)` for
    /// floats, uniform over all values for integers).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Return `true` with probability `p` (Bernoulli fixed-point
    /// comparison, one `u64` consumed unless `p == 1`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        // (p * 2^64) as u64 saturates to u64::MAX at p == 1.0, which
        // upstream treats as "always true" without consuming bits.
        let p_int = (p * 2.0 * (1u64 << 63) as f64) as u64;
        if p_int == u64::MAX {
            return true;
        }
        self.next_u64() < p_int
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a fixed-size seed (subset of
/// `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// The seed byte array type.
    type Seed: Default + AsMut<[u8]>;

    /// Build from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64`, expanded with PCG32 exactly as rand_core 0.6
    /// does, so seeded streams match upstream.
    fn seed_from_u64(mut state: u64) -> Self {
        fn pcg32(state: &mut u64) -> [u8; 4] {
            const MUL: u64 = 6364136223846793005;
            const INC: u64 = 11634580027462260723;
            *state = state.wrapping_mul(MUL).wrapping_add(INC);
            let s = *state;
            let xorshifted = (((s >> 18) ^ s) >> 27) as u32;
            let rot = (s >> 59) as u32;
            xorshifted.rotate_right(rot).to_le_bytes()
        }
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_exact_mut(4) {
            chunk.copy_from_slice(&pcg32(&mut state));
        }
        Self::from_seed(seed)
    }
}

/// Commonly used re-exports, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    /// SplitMix64 test generator — the widening-multiply range sampler
    /// keys off the *high* bits, so the test RNG needs well-mixed output
    /// (a raw LCG's upper bits correlate across consecutive draws).
    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            (z ^ (z >> 31)) as u32
        }
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = Lcg(7);
        for _ in 0..1000 {
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let d: f64 = rng.gen();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Lcg(9);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&y));
            let z = rng.gen_range(5u64..=5);
            assert_eq!(z, 5);
            let w = rng.gen_range(-3i32..=3);
            assert!((-3..=3).contains(&w));
            let b = rng.gen_range(0u8..4);
            assert!(b < 4);
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = Lcg(13);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Lcg(11);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn next_u64_is_low_word_first() {
        struct Fixed(u32);
        impl RngCore for Fixed {
            fn next_u32(&mut self) -> u32 {
                self.0 += 1;
                self.0
            }
        }
        let mut rng = Fixed(0);
        // words 1, 2 -> low = 1, high = 2
        assert_eq!(rng.next_u64(), (2u64 << 32) | 1);
    }
}
