#![warn(missing_docs)]

//! Offline shim for `criterion`.
//!
//! Provides the API surface the bench targets use — [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`], and the
//! `criterion_group!`/`criterion_main!` macros — backed by a plain
//! wall-clock loop: a warm-up pass sizes the batch, then `sample_size`
//! timed samples are taken and mean/min per-iteration times printed.
//! No statistical analysis, plots, or baselines.

use std::hint;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Create a driver with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size: 100,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_benchmark(name, 100, f);
        self
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run a benchmark under `group_name/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().0);
        run_benchmark(&label, self.sample_size, f);
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().0);
        run_benchmark(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// End the group (no-op beyond matching upstream's API).
    pub fn finish(self) {}
}

/// A benchmark identifier, optionally `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Identifier with both a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }

    /// Identifier carrying only a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{parameter}"))
    }
}

/// Conversion accepted wherever an id is expected (`&str`, `String`,
/// or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// Convert into a concrete id.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self.to_string())
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self)
    }
}

/// Times the closure handed to [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `routine` `self.iters` times, recording total elapsed time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    // Warm-up: find an iteration count that takes roughly 5 ms.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(5) || iters >= 1 << 20 {
            break;
        }
        iters = iters.saturating_mul(2);
    }

    let mut per_iter: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "{label:<40} mean {:>12}  min {:>12}  ({} samples x {} iters)",
        fmt_time(mean),
        fmt_time(min),
        sample_size,
        iters
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = { let _ = &$cfg; $crate::Criterion::new() };
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::new();
            $($target(&mut criterion);)+
        }
    };
}

/// Produce the `main` function running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_runs() {
        let mut c = Criterion::new();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::new("sum", 64), &64usize, |b, &n| {
            b.iter(|| (0..n).sum::<usize>())
        });
        group.bench_function("push", |b| {
            b.iter(|| {
                let mut v = Vec::with_capacity(4);
                v.extend_from_slice(&[1u8]);
                v
            })
        });
        group.finish();
        c.bench_function("free", |b| b.iter(|| 2 + 2));
    }
}
