//! Offline shim for `serde_derive`.
//!
//! Derives the shim `serde`'s value-tree `Serialize`/`Deserialize`
//! traits. Instead of syn/quote (unavailable offline), the item is
//! parsed directly from the `proc_macro` token trees and the impl is
//! generated as source text. Supported shapes — the ones this
//! workspace actually derives on — are non-generic named-field
//! structs, tuple/unit structs, and enums with unit, newtype, tuple,
//! or struct variants. The only field attribute honored is
//! `#[serde(skip)]`: skipped on serialize, `Default::default()` on
//! deserialize.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Clone)]
struct Field {
    name: String,
    skip: bool,
}

#[derive(Clone)]
enum Shape {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Input {
    Struct {
        name: String,
        shape: Shape,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derive the value-tree `Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derive the value-tree `Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Input) -> String) -> TokenStream {
    let parsed = match parse_input(input) {
        Ok(p) => p,
        Err(msg) => {
            let msg = msg.replace('\\', "\\\\").replace('"', "\\\"");
            return format!("compile_error!(\"serde shim derive: {msg}\");")
                .parse()
                .unwrap();
        }
    };
    gen(&parsed)
        .parse()
        .expect("serde shim derive generated invalid Rust")
}

// ------------------------------------------------------------- parsing

/// Consume a run of `#[...]` outer attributes, returning each
/// attribute's bracketed token text.
fn take_attrs(toks: &[TokenTree], i: &mut usize) -> Vec<String> {
    let mut attrs = Vec::new();
    while *i + 1 < toks.len() {
        match (&toks[*i], &toks[*i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                attrs.push(g.stream().to_string());
                *i += 2;
            }
            _ => break,
        }
    }
    attrs
}

fn is_serde_skip(attr: &str) -> bool {
    let t = attr.trim_start();
    t.starts_with("serde") && t.contains("skip")
}

/// Consume `pub`, `pub(crate)`, `pub(super)`, etc.
fn skip_vis(toks: &[TokenTree], i: &mut usize) {
    if matches!(&toks.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(&toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

/// Advance past a type (or discriminant expression), stopping at a
/// comma outside all `<...>` nesting. Parens/brackets/braces arrive as
/// single `Group` tokens, so only angle brackets need depth tracking.
fn skip_to_field_end(toks: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while *i < toks.len() {
        if let TokenTree::Punct(p) = &toks[*i] {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < toks.len() {
        let attrs = take_attrs(&toks, &mut i);
        let skip = attrs.iter().any(|a| is_serde_skip(a));
        skip_vis(&toks, &mut i);
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        i += 1;
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        skip_to_field_end(&toks, &mut i);
        fields.push(Field { name, skip });
    }
    Ok(fields)
}

/// Count the elements of a tuple-struct/tuple-variant field list.
fn tuple_arity(stream: TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut arity = 0;
    while i < toks.len() {
        take_attrs(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        skip_to_field_end(&toks, &mut i);
        arity += 1;
    }
    arity
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < toks.len() {
        take_attrs(&toks, &mut i);
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        let shape = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = tuple_arity(g.stream());
                i += 1;
                Shape::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                i += 1;
                Shape::Named(fields)
            }
            _ => Shape::Unit,
        };
        // skip an optional `= discriminant` up to the separating comma
        skip_to_field_end(&toks, &mut i);
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    take_attrs(&toks, &mut i);
    skip_vis(&toks, &mut i);
    let kind = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    i += 1;
    if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "generic type `{name}` is not supported by the shim"
        ));
    }
    match kind.as_str() {
        "struct" => {
            let shape = match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(g.stream())?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(tuple_arity(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
                other => return Err(format!("unexpected struct body: {other:?}")),
            };
            Ok(Input::Struct { name, shape })
        }
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Input::Enum {
                name,
                variants: parse_variants(g.stream())?,
            }),
            other => Err(format!("unexpected enum body: {other:?}")),
        },
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

// ------------------------------------------------------------- codegen

const S: &str = "::serde::Serialize::to_value";
const D: &str = "::serde::Deserialize::from_value";

/// `{ "a": to_value(a_expr), ... }` → a `Value::Object` expression.
/// `expr_of` maps a field name to the expression holding that field.
fn named_to_object(fields: &[Field], expr_of: &dyn Fn(&str) -> String) -> String {
    let mut out = String::from("::serde::Value::Object(<[_]>::into_vec(::std::boxed::Box::new([");
    for f in fields.iter().filter(|f| !f.skip) {
        out.push_str(&format!(
            "(::std::string::String::from(\"{}\"), {S}(&{})),",
            f.name,
            expr_of(&f.name)
        ));
    }
    out.push_str("])))");
    out
}

/// Build `Ctor { a: ..., b: ... }` from an object lookup expression.
/// `src` is an expression of type `&Value` holding the object.
fn named_from_object(ctor: &str, type_name: &str, fields: &[Field], src: &str) -> String {
    let mut out = format!("{ctor} {{");
    for f in fields {
        if f.skip {
            out.push_str(&format!("{}: ::std::default::Default::default(),", f.name));
        } else {
            out.push_str(&format!(
                "{name}: match ::serde::Value::get({src}, \"{name}\") {{ \
                   ::std::option::Option::Some(fv) => {D}(fv)?, \
                   ::std::option::Option::None => {D}(&::serde::Value::Null).map_err(|_| \
                     ::serde::DeError(::std::string::String::from(\
                       \"missing field `{name}` in {type_name}\")))?, \
                 }},",
                name = f.name,
            ));
        }
    }
    out.push('}');
    out
}

fn gen_serialize(input: &Input) -> String {
    let (name, body) = match input {
        Input::Struct { name, shape } => {
            let body = match shape {
                Shape::Named(fields) => named_to_object(fields, &|f| format!("self.{f}")),
                Shape::Tuple(1) => format!("{S}(&self.0)"),
                Shape::Tuple(n) => {
                    let items: Vec<String> = (0..*n).map(|i| format!("{S}(&self.{i})")).collect();
                    format!(
                        "::serde::Value::Array(<[_]>::into_vec(::std::boxed::Box::new([{}])))",
                        items.join(",")
                    )
                }
                Shape::Unit => "::serde::Value::Null".to_string(),
            };
            (name, body)
        }
        Input::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(::std::string::String::from(\"{vn}\")),"
                    )),
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let payload = if *n == 1 {
                            format!("{S}(f0)")
                        } else {
                            let items: Vec<String> =
                                binds.iter().map(|b| format!("{S}({b})")).collect();
                            format!(
                                "::serde::Value::Array(<[_]>::into_vec(::std::boxed::Box::new([{}])))",
                                items.join(",")
                            )
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => ::serde::Value::Object(\
                               <[_]>::into_vec(::std::boxed::Box::new([\
                                 (::std::string::String::from(\"{vn}\"), {payload})]))),",
                            binds = binds.join(","),
                        ));
                    }
                    Shape::Named(fields) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| f.name.clone()).collect();
                        let payload = named_to_object(fields, &|f| f.to_string());
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(\
                               <[_]>::into_vec(::std::boxed::Box::new([\
                                 (::std::string::String::from(\"{vn}\"), {payload})]))),",
                            binds = binds.join(","),
                        ));
                    }
                }
            }
            (name, format!("match self {{ {arms} }}"))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{ \
           fn to_value(&self) -> ::serde::Value {{ {body} }} \
         }}"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let (name, body) = match input {
        Input::Struct { name, shape } => {
            let body = match shape {
                Shape::Named(fields) => {
                    let build = named_from_object(name, name, fields, "v");
                    format!(
                        "if !::std::matches!(v, ::serde::Value::Object(_)) {{ \
                           return ::std::result::Result::Err(\
                             ::serde::DeError::expected(\"struct {name}\", v)); \
                         }} \
                         ::std::result::Result::Ok({build})"
                    )
                }
                Shape::Tuple(1) => format!("::std::result::Result::Ok({name}({D}(v)?))"),
                Shape::Tuple(n) => {
                    let items: Vec<String> =
                        (0..*n).map(|i| format!("{D}(&items[{i}])?")).collect();
                    format!(
                        "let items = ::serde::Value::as_array(v).ok_or_else(|| \
                           ::serde::DeError::expected(\"tuple struct {name}\", v))?; \
                         if items.len() != {n} {{ \
                           return ::std::result::Result::Err(::serde::DeError(\
                             ::std::string::String::from(\
                               \"wrong arity for tuple struct {name}\"))); \
                         }} \
                         ::std::result::Result::Ok({name}({items}))",
                        items = items.join(",")
                    )
                }
                Shape::Unit => format!("::std::result::Result::Ok({name})"),
            };
            (name, body)
        }
        Input::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => unit_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),"
                    )),
                    Shape::Tuple(1) => data_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}({D}(payload)?)),"
                    )),
                    Shape::Tuple(n) => {
                        let items: Vec<String> =
                            (0..*n).map(|i| format!("{D}(&items[{i}])?")).collect();
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{ \
                               let items = ::serde::Value::as_array(payload).ok_or_else(|| \
                                 ::serde::DeError::expected(\"variant {name}::{vn}\", payload))?; \
                               if items.len() != {n} {{ \
                                 return ::std::result::Result::Err(::serde::DeError(\
                                   ::std::string::String::from(\
                                     \"wrong arity for variant {name}::{vn}\"))); \
                               }} \
                               ::std::result::Result::Ok({name}::{vn}({items})) \
                             }},",
                            items = items.join(",")
                        ));
                    }
                    Shape::Named(fields) => {
                        let build = named_from_object(
                            &format!("{name}::{vn}"),
                            &format!("{name}::{vn}"),
                            fields,
                            "payload",
                        );
                        data_arms
                            .push_str(&format!("\"{vn}\" => ::std::result::Result::Ok({build}),"));
                    }
                }
            }
            let body = format!(
                "match v {{ \
                   ::serde::Value::Str(s) => match s.as_str() {{ \
                     {unit_arms} \
                     other => ::std::result::Result::Err(::serde::DeError(::std::format!(\
                       \"unknown variant `{{other}}` for enum {name}\"))), \
                   }}, \
                   ::serde::Value::Object(entries) if entries.len() == 1 => {{ \
                     let (tag, payload) = &entries[0]; \
                     let _ = payload; \
                     match tag.as_str() {{ \
                       {data_arms} \
                       other => ::std::result::Result::Err(::serde::DeError(::std::format!(\
                         \"unknown variant `{{other}}` for enum {name}\"))), \
                     }} \
                   }}, \
                   _ => ::std::result::Result::Err(::serde::DeError::expected(\"enum {name}\", v)), \
                 }}"
            );
            (name, body)
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{ \
           fn from_value(v: &::serde::Value) \
             -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }} \
         }}"
    )
}
