//! Offline shim for `proptest`.
//!
//! Implements the subset this workspace's property tests use:
//! [`strategy::Strategy`] with `prop_map`/`prop_flat_map`/`boxed`,
//! range strategies over ints and floats, tuples, [`strategy::Just`],
//! `prop_oneof!`, [`collection::vec`], regex-subset string strategies
//! (`"[a-z ]{1,8}"` shapes), and the [`proptest!`]/`prop_assert!`
//! macros with `ProptestConfig::with_cases`. Cases are sampled from a
//! deterministic per-test-name RNG, so failures reproduce across runs.
//! There is no shrinking: a failing case reports its inputs via the
//! ordinary `assert!` panic message.

pub mod test_runner {
    /// Run-time configuration; only `cases` is honored.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Run each property `cases` times.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic SplitMix64 generator seeded from the test name and
    /// case index, so every run of a given test sees the same inputs.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a test identifier and case number.
        pub fn for_case(name: &str, case: u32) -> Self {
            // FNV-1a over the name, then fold in the case index
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            let mut rng = TestRng {
                state: h ^ ((case as u64) << 32 | 0x9e37_79b9),
            };
            // decorrelate nearby seeds
            rng.next_u64();
            rng
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform `usize` in `[lo, hi]` (inclusive).
        pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
            debug_assert!(lo <= hi);
            let span = (hi - lo) as u64 + 1;
            lo + (self.next_u64() % span) as usize
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform every generated value with `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Generate a value, then use it to build a second strategy and
        /// sample that (dependent generation).
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erase into a [`BoxedStrategy`].
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            self.0.sample(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Choose uniformly among `arms`. Panics if empty.
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            let i = rng.usize_in(0, self.arms.len() - 1);
            self.arms[i].sample(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + (rng.next_u64() % span) as i128) as $t
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u64 + 1;
                    (lo as i128 + (rng.next_u64() % span) as i128) as $t
                }
            }
        )*};
    }
    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }
        )*};
    }
    impl_float_range_strategy!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    }

    /// Strings matching a tiny regex subset: a sequence of character
    /// classes (`[a-z ]`, ranges and literals, no negation) or literal
    /// characters, each with an optional `{m}`, `{m,n}`, `?`, `*`, or
    /// `+` quantifier (`*`/`+` capped at 8 repeats).
    impl Strategy for &str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            crate::string::sample_pattern(self, rng)
        }
    }
}

pub mod string {
    use crate::test_runner::TestRng;

    struct Element {
        choices: Vec<char>,
        min: usize,
        max: usize,
    }

    fn parse(pattern: &str) -> Vec<Element> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0;
        let mut elems = Vec::new();
        while i < chars.len() {
            let choices = match chars[i] {
                '[' => {
                    i += 1;
                    assert!(
                        chars.get(i) != Some(&'^'),
                        "negated classes unsupported in proptest shim: {pattern}"
                    );
                    let mut set = Vec::new();
                    while i < chars.len() && chars[i] != ']' {
                        let lo = if chars[i] == '\\' {
                            i += 1;
                            chars[i]
                        } else {
                            chars[i]
                        };
                        if chars.get(i + 1) == Some(&'-') && chars.get(i + 2) != Some(&']') {
                            let hi = chars[i + 2];
                            for c in lo..=hi {
                                set.push(c);
                            }
                            i += 3;
                        } else {
                            set.push(lo);
                            i += 1;
                        }
                    }
                    assert!(
                        chars.get(i) == Some(&']'),
                        "unterminated class in pattern: {pattern}"
                    );
                    i += 1;
                    assert!(!set.is_empty(), "empty class in pattern: {pattern}");
                    set
                }
                '\\' => {
                    i += 1;
                    let c = chars[i];
                    i += 1;
                    vec![c]
                }
                c => {
                    assert!(
                        !matches!(c, '(' | ')' | '|' | '.' | '^' | '$'),
                        "regex feature `{c}` unsupported in proptest shim: {pattern}"
                    );
                    i += 1;
                    vec![c]
                }
            };
            let (min, max) = match chars.get(i) {
                Some('{') => {
                    i += 1;
                    let mut digits = String::new();
                    while chars[i].is_ascii_digit() {
                        digits.push(chars[i]);
                        i += 1;
                    }
                    let m: usize = digits.parse().unwrap();
                    let n = if chars[i] == ',' {
                        i += 1;
                        let mut digits = String::new();
                        while chars[i].is_ascii_digit() {
                            digits.push(chars[i]);
                            i += 1;
                        }
                        digits.parse().unwrap()
                    } else {
                        m
                    };
                    assert!(chars[i] == '}', "bad quantifier in pattern: {pattern}");
                    i += 1;
                    (m, n)
                }
                Some('?') => {
                    i += 1;
                    (0, 1)
                }
                Some('*') => {
                    i += 1;
                    (0, 8)
                }
                Some('+') => {
                    i += 1;
                    (1, 8)
                }
                _ => (1, 1),
            };
            elems.push(Element { choices, min, max });
        }
        elems
    }

    /// Sample a string matching `pattern` (see the subset caveats on
    /// the `&str` [`crate::strategy::Strategy`] impl).
    pub fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for elem in parse(pattern) {
            let n = rng.usize_in(elem.min, elem.max);
            for _ in 0..n {
                out.push(elem.choices[rng.usize_in(0, elem.choices.len() - 1)]);
            }
        }
        out
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive bounds on a generated collection's length.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of `elem`-generated values.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `Vec` strategy with length drawn from `size` (a `usize`, range,
    /// or inclusive range).
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.usize_in(self.size.min, self.size.max);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Define property tests. Each `fn` inside runs `cases` times with
/// freshly sampled inputs; write `#[test]` on each as usual.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let __strats = ($($strat,)+);
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    let ($($pat,)+) =
                        $crate::strategy::Strategy::sample(&__strats, &mut __rng);
                    $body
                }
            }
        )*
    };
}

/// Assert a property holds for the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Assert two expressions are equal for the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Assert two expressions differ for the current case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Uniform choice among several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

pub mod prelude {
    //! Glob-import surface matching upstream's `proptest::prelude::*`.
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("ranges", 0);
        for _ in 0..200 {
            let x = Strategy::sample(&(3usize..10), &mut rng);
            assert!((3..10).contains(&x));
            let y = Strategy::sample(&(1i32..=3), &mut rng);
            assert!((1..=3).contains(&y));
            let f = Strategy::sample(&(-2.0f32..2.0), &mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn string_patterns_match_shape() {
        let mut rng = TestRng::for_case("strings", 0);
        for _ in 0..100 {
            let s = Strategy::sample(&"[a-c ]{2,5}", &mut rng);
            assert!((2..=5).contains(&s.chars().count()));
            assert!(s.chars().all(|c| matches!(c, 'a'..='c' | ' ')));
            let t = Strategy::sample(&"[!-~]{1,8}", &mut rng);
            assert!((1..=8).contains(&t.chars().count()));
            assert!(t.chars().all(|c| ('!'..='~').contains(&c)));
        }
    }

    #[test]
    fn sampling_is_deterministic_per_name_and_case() {
        let strat = (0u64..1000, -1.0f64..1.0);
        let mut a = TestRng::for_case("det", 7);
        let mut b = TestRng::for_case("det", 7);
        assert_eq!(
            Strategy::sample(&strat, &mut a),
            Strategy::sample(&strat, &mut b)
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_patterns((a, b) in (0usize..5, 0usize..5), v in crate::collection::vec(0u8..10, 1..4)) {
            prop_assert!(a < 5 && b < 5);
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert_eq!(v.len(), v.iter().filter(|&&b| b < 10).count());
        }

        #[test]
        fn oneof_and_maps_compose(x in prop_oneof![Just(1u8), Just(2u8)], y in (0u8..4).prop_map(|n| n * 2)) {
            prop_assert!(x == 1 || x == 2);
            prop_assert!(y % 2 == 0 && y < 8);
        }
    }
}
