#![warn(missing_docs)]

//! Offline shim for `serde_json`: prints and parses JSON text against
//! the shim `serde`'s [`Value`] tree. Covers the subset this workspace
//! uses — `to_string`, `to_string_pretty`, `from_str`, and [`Value`]
//! itself. Non-finite numbers serialize as `null` (upstream errors
//! instead; callers here never hit that path with metrics data).

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// A JSON serialization or parse error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Result alias matching upstream's signature shapes.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize to human-indented JSON text (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parse JSON text into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Convert a [`Value`] tree into any deserializable type.
pub fn from_value<T: Deserialize>(v: Value) -> Result<T> {
    Ok(T::from_value(&v)?)
}

// ------------------------------------------------------------ printing

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => write_number(*n, out),
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        // shortest f64 text that parses back exactly
        out.push_str(&format!("{n}"));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(entries));
                        }
                        _ => return Err(Error(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(Error(format!("unexpected character at byte {}", self.pos))),
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid utf-8 in number".into()))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| Error(format!("invalid number `{text}` at byte {start}")))
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let Some(&b) = rest.first() else {
                return Err(Error("unterminated string".into()));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    let esc = rest
                        .get(1)
                        .copied()
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 2;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error("bad \\u escape".into()))?;
                            let mut code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("bad \\u escape".into()))?;
                            self.pos += 4;
                            // surrogate pair
                            if (0xd800..0xdc00).contains(&code) {
                                if self.bytes.get(self.pos..self.pos + 2) == Some(&b"\\u"[..]) {
                                    let hex2 = self
                                        .bytes
                                        .get(self.pos + 2..self.pos + 6)
                                        .and_then(|h| std::str::from_utf8(h).ok())
                                        .ok_or_else(|| Error("bad surrogate pair".into()))?;
                                    let low = u32::from_str_radix(hex2, 16)
                                        .map_err(|_| Error("bad surrogate pair".into()))?;
                                    self.pos += 6;
                                    code = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
                                } else {
                                    return Err(Error("lone surrogate".into()));
                                }
                            }
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("invalid \\u codepoint".into()))?,
                            );
                        }
                        other => return Err(Error(format!("bad escape `\\{}`", other as char))),
                    }
                }
                _ => {
                    // consume one UTF-8 scalar
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error("invalid utf-8 in string".into()))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_roundtrips_through_text() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("a\"b\\c\nd".into())),
            (
                "xs".into(),
                Value::Array(vec![Value::Num(1.0), Value::Num(-2.5)]),
            ),
            ("ok".into(), Value::Bool(true)),
            ("none".into(), Value::Null),
            ("empty".into(), Value::Array(vec![])),
        ]);
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);

        let pretty = to_string_pretty(&v).unwrap();
        let back2: Value = from_str(&pretty).unwrap();
        assert_eq!(back2, v);
    }

    #[test]
    fn unicode_escapes_parse() {
        let s: String = from_str(r#""é😀x""#).unwrap();
        assert_eq!(s, "é😀x");
    }

    #[test]
    fn typed_roundtrip() {
        let pairs: Vec<(u32, u32)> = vec![(1, 2), (3, 4)];
        let text = to_string(&pairs).unwrap();
        assert_eq!(text, "[[1,2],[3,4]]");
        let back: Vec<(u32, u32)> = from_str(&text).unwrap();
        assert_eq!(back, pairs);
    }

    #[test]
    fn float_precision_survives() {
        let x = 0.1f64 + 0.2f64;
        let text = to_string(&x).unwrap();
        let back: f64 = from_str(&text).unwrap();
        assert_eq!(back, x);
    }
}
