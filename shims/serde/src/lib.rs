#![warn(missing_docs)]

//! Offline shim for `serde`.
//!
//! Instead of upstream serde's serializer/deserializer visitor
//! machinery, this shim routes everything through one dynamic value
//! tree, [`Value`] (the only consumer in this workspace is JSON):
//! [`Serialize`] renders a value into the tree and [`Deserialize`]
//! rebuilds a value from it. The `derive` feature re-exports
//! `serde_derive`'s `#[derive(Serialize, Deserialize)]`, which supports
//! the shapes this workspace uses — named-field structs, tuple/unit
//! structs, and enums with unit, tuple, or struct variants — plus the
//! `#[serde(skip)]` field attribute (skipped on write, `Default`ed on
//! read).

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A dynamically typed serialization tree (JSON data model).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (all numbers are `f64`, as in JSON itself).
    Num(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object; insertion-ordered.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The entries of an object, if this is one.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The elements of an array, if this is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Look up a field of an object by name.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

/// A deserialization error with a human-readable path/description.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Build an error describing a type mismatch.
    pub fn expected(what: &str, got: &Value) -> Self {
        let kind = match got {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        };
        DeError(format!("expected {what}, got {kind}"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Render into a [`Value`] tree.
pub trait Serialize {
    /// Convert `self` into the dynamic tree.
    fn to_value(&self) -> Value;
}

/// Rebuild from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Convert the dynamic tree into `Self`.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------- primitives

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", v)),
        }
    }
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Num(n) if n.fract() == 0.0 => Ok(*n as $t),
                    _ => Err(DeError::expected(stringify!($t), v)),
                }
            }
        }
    )*};
}
impl_serde_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Num(n) => Ok(*n as $t),
                    // JSON cannot carry non-finite floats; we write null
                    Value::Null => Ok(<$t>::NAN),
                    _ => Err(DeError::expected(stringify!($t), v)),
                }
            }
        }
    )*};
}
impl_serde_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", v)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Deserialize for &'static str {
    /// Upstream serde borrows `&str` from the input; this shim's value
    /// tree owns its strings, so the bytes are leaked instead. Fine for
    /// the workspace's use (small registry-name fields in tests).
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            _ => Err(DeError::expected("string", v)),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(DeError::expected("single-char string", v)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::expected("array", v)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        let n = items.len();
        items
            .try_into()
            .map_err(|_| DeError(format!("expected array of {N}, got {n}")))
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v.as_array().ok_or_else(|| DeError::expected("tuple array", v))?;
                let expect = [$($idx),+].len();
                if items.len() != expect {
                    return Err(DeError(format!(
                        "expected {expect}-tuple, got array of {}", items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}
impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

impl<K: std::fmt::Display + Ord, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| DeError::expected("object", v))?;
        obj.iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

impl<K: std::fmt::Display, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // sort for deterministic output
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize
    for std::collections::HashMap<String, V, S>
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| DeError::expected("object", v))?;
        obj.iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_value(&42u32.to_value()), Ok(42));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
        assert_eq!(
            Vec::<(u32, u32)>::from_value(&vec![(1u32, 2u32)].to_value()),
            Ok(vec![(1, 2)])
        );
        assert_eq!(Option::<u8>::from_value(&Value::Null), Ok(None));
    }

    #[test]
    fn type_errors_are_reported() {
        assert!(bool::from_value(&Value::Num(1.0)).is_err());
        assert!(u32::from_value(&Value::Num(1.5)).is_err());
    }
}
