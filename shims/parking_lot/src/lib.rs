#![warn(missing_docs)]

//! Offline shim for `parking_lot`: [`Mutex`], [`RwLock`], and
//! [`Condvar`] with the upstream crate's poison-free API, implemented
//! over `std::sync`. A poisoned std lock (a panic while held) is
//! recovered rather than propagated, matching parking_lot's behaviour
//! of not poisoning at all.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard, WaitTimeoutResult};
use std::time::Duration;

/// A mutual-exclusion lock whose `lock` never returns an error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Exclusive access through an exclusive reference, lock-free.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A readers-writer lock whose acquisitions never return errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

/// A condition variable paired with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Create a condition variable.
    pub const fn new() -> Self {
        Self(sync::Condvar::new())
    }

    /// Block until notified; the guard is released while waiting.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.0.wait(guard).unwrap_or_else(|e| e.into_inner())
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: Duration,
    ) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
        self.0
            .wait_timeout(guard, timeout)
            .unwrap_or_else(|e| e.into_inner())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_counts_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2, 3]);
        assert_eq!(l.read().len(), 3);
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }
}
